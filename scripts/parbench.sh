#!/usr/bin/env bash
# Measure what the --jobs host worker pool buys in wall-clock on this
# machine, and record the honest numbers in the repo-root BENCH_par.json.
#
# The probe is the fig9 sweep (13 apps x 7 configs of independent
# simulations) at a pinned budget, run once per width after a warmup.
# The artifacts are byte-identical at every width (that is the pool's
# contract, see tests/pool_determinism.rs), so this measures time only.
# On an N-core host the jobs=4 sweep should approach min(4, N)x the
# jobs=1 sweep; on a single-core host the ratio is honestly ~1x and the
# recorded host_cpus says why.
#
#   scripts/parbench.sh
#   BULKSC_BUDGET=25000 scripts/parbench.sh   # longer probe
set -euo pipefail
cd "$(dirname "$0")/.."

budget="${BULKSC_BUDGET:-6000}"
widths=(1 2 4)

echo "==> cargo build --release --offline -p bulksc-bench"
cargo build --release --offline -p bulksc-bench -q

host_cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
bin=target/release/fig9

# Each measured run also records pool activity via --metrics. A long
# interval keeps the heartbeat thread asleep for the whole sweep, so the
# only metrics work inside the timed window is the per-job counter
# bumps (the <2% overhead ci.sh gates on); the final snapshot line in
# results/fig9.metrics.jsonl still carries the totals we want.
measure() { # measure <jobs> -> wall milliseconds on stdout
  local start end
  start="$(date +%s%N)"
  BULKSC_BUDGET="$budget" "$bin" --jobs "$1" --metrics=600000 > /dev/null 2>&1
  end="$(date +%s%N)"
  echo $(( (end - start) / 1000000 ))
}

last_metric() { # last_metric <field> -> value from the final snapshot line
  tail -n 1 results/fig9.metrics.jsonl | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"
}

echo "==> warmup (jobs 1)"
measure 1 > /dev/null

entries=""
declare -A wall
for j in "${widths[@]}"; do
  ms="$(measure "$j")"
  wall[$j]="$ms"
  done_jobs="$(last_metric done)"
  peak_queue="$(last_metric queue_peak)"
  echo "==> fig9 budget $budget --jobs $j: ${ms} ms," \
       "${done_jobs} jobs, peak queue ${peak_queue}"
  [ -n "$entries" ] && entries+=","
  entries+="{\"jobs\":$j,\"wall_ms\":$ms,\"jobs_completed\":$done_jobs,\"peak_queue_depth\":$peak_queue}"
done

speedup="$(awk -v a="${wall[1]}" -v b="${wall[4]}" 'BEGIN { printf "%.3f", a / b }')"

cat > BENCH_par.json <<EOF
{"schema":"bulksc-parbench","version":4,"experiment":"fig9","budget":$budget,"host_cpus":$host_cpus,"measurements":[$entries],"speedup_jobs4_over_jobs1":$speedup}
EOF

echo "==> speedup jobs=4 over jobs=1: ${speedup}x on a ${host_cpus}-cpu host"
echo "wrote BENCH_par.json"
