#!/usr/bin/env bash
# Measure what the --jobs host worker pool buys in wall-clock on this
# machine, and record the honest numbers in the repo-root BENCH_par.json.
#
# The probe is the fig9 sweep (13 apps x 7 configs of independent
# simulations) at a pinned budget, run once per width after a warmup.
# The artifacts are byte-identical at every width (that is the pool's
# contract, see tests/pool_determinism.rs), so this measures time only.
# On an N-core host the jobs=4 sweep should approach min(4, N)x the
# jobs=1 sweep; on a single-core host the ratio is honestly ~1x and the
# recorded host_cpus says why.
#
#   scripts/parbench.sh
#   BULKSC_BUDGET=25000 scripts/parbench.sh   # longer probe
set -euo pipefail
cd "$(dirname "$0")/.."

budget="${BULKSC_BUDGET:-6000}"
widths=(1 2 4)

echo "==> cargo build --release --offline -p bulksc-bench"
cargo build --release --offline -p bulksc-bench -q

host_cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
bin=target/release/fig9

measure() { # measure <jobs> -> wall milliseconds on stdout
  local start end
  start="$(date +%s%N)"
  BULKSC_BUDGET="$budget" "$bin" --jobs "$1" > /dev/null 2>&1
  end="$(date +%s%N)"
  echo $(( (end - start) / 1000000 ))
}

echo "==> warmup (jobs 1)"
measure 1 > /dev/null

entries=""
declare -A wall
for j in "${widths[@]}"; do
  ms="$(measure "$j")"
  wall[$j]="$ms"
  echo "==> fig9 budget $budget --jobs $j: ${ms} ms"
  [ -n "$entries" ] && entries+=","
  entries+="{\"jobs\":$j,\"wall_ms\":$ms}"
done

speedup="$(awk -v a="${wall[1]}" -v b="${wall[4]}" 'BEGIN { printf "%.3f", a / b }')"

cat > BENCH_par.json <<EOF
{"schema":"bulksc-parbench","version":3,"experiment":"fig9","budget":$budget,"host_cpus":$host_cpus,"measurements":[$entries],"speedup_jobs4_over_jobs1":$speedup}
EOF

echo "==> speedup jobs=4 over jobs=1: ${speedup}x on a ${host_cpus}-cpu host"
echo "wrote BENCH_par.json"
