#!/usr/bin/env bash
# Full offline CI gate for the workspace: formatting, lints, release
# build, and the complete test suite. No network access required — the
# workspace has zero external dependencies.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline

echo "CI gate passed."
