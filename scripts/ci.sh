#!/usr/bin/env bash
# Full offline CI gate for the workspace: formatting, lints, release
# build, and the complete test suite. No network access required — the
# workspace has zero external dependencies.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline

# Analyze smoke test: trace a short run, then make sure the analysis
# tooling accepts the artifacts this tree produces. `timeline` exits
# nonzero if any chunk_start never reached a commit, squash, or abandon;
# `report` exits nonzero if an artifact's schema version is stale or a
# core's cycle-loss total drifts from its run's cycle count; a self-`diff`
# must always be clean.
run cargo run -q --release --offline --example trace_demo
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  timeline results/trace_demo.jsonl
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  report results/fig9.json > /dev/null
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  diff results/fig9.json results/fig9.json > /dev/null

# SC conformance gate: the demo's value trace must certify under the
# bulksc-check oracle, and a time-boxed differential fuzz sweep (fixed
# seed list so failures reproduce; the box only trims the tail on slow
# machines) must find no violation across seeds × configurations.
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  check results/trace_demo.jsonl
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-fuzz -- \
  --seeds 6 --time-box 60 > /dev/null

echo "CI gate passed."
