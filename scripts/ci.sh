#!/usr/bin/env bash
# Full offline CI gate for the workspace: formatting, lints, release
# build, and the complete test suite. No network access required — the
# workspace has zero external dependencies.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline

# The regression layer, named explicitly so a failure is unmissable in
# the log: golden figures must match their committed fixtures
# (re-bless intentional changes with BULKSC_BLESS=1), and every artifact
# must be byte-identical at any --jobs width.
run cargo test -q --offline --test golden_figures --test pool_determinism

# Analyze smoke test: trace a short run, then make sure the analysis
# tooling accepts the artifacts this tree produces. `timeline` exits
# nonzero if any chunk_start never reached a commit, squash, or abandon;
# `report` exits nonzero if an artifact's schema version is stale or a
# core's cycle-loss total drifts from its run's cycle count; a self-`diff`
# must always be clean.
run cargo run -q --release --offline --example trace_demo
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  timeline results/trace_demo.jsonl
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  report results/fig9.json > /dev/null
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  diff results/fig9.json results/fig9.json > /dev/null

# SC conformance gate: the demo's value trace must certify under the
# bulksc-check oracle, and a time-boxed differential fuzz sweep (fixed
# seed list so failures reproduce; the box only trims the tail on slow
# machines) must find no violation across seeds × configurations.
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  check results/trace_demo.jsonl --jobs 2
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-fuzz -- \
  --seeds 6 --time-box 60 --jobs 2 --metrics > /dev/null

# Streaming-oracle gate (the unbounded-memory fix): a 4M-access
# synthetic trace is piped straight into the windowed checker — never
# touching disk or materializing the access vector — and must certify
# under a hard RSS ceiling the batch path could not meet at this size.
# The binaries were built by the release-build stage above, so the two
# halves of the pipe run without contending on cargo's build lock.
echo "==> synth-trace 4000000 | check - --stream (RSS-bounded)"
./target/release/bulksc-analyze synth-trace 4000000 |
  ./target/release/bulksc-analyze check - --stream --window 65536 --jobs 2 --max-rss-mb 192

# BTF gate: the binary trace format must be lossless and invisible to
# every consumer. The demo trace (regenerated above) converts to BTF;
# `check` sniffs the format and certifies through the native BTF decode
# path; an index-backed query smoke is diffed against a committed golden
# (tests/golden/query.txt — re-bless by re-running the query after an
# intentional change); and converting back must reproduce the original
# JSONL byte-for-byte.
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  convert results/trace_demo.jsonl results/trace_demo.btf
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  check results/trace_demo.btf --jobs 2
cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  query results/trace_demo.btf --kind squash --count-by cause --stats \
  > results/query.ci.txt
run diff -u tests/golden/query.txt results/query.ci.txt
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  convert results/trace_demo.btf results/trace_demo.ci.jsonl
run cmp results/trace_demo.jsonl results/trace_demo.ci.jsonl
rm -f results/query.ci.txt results/trace_demo.ci.jsonl

# BTF throughput gate: certifying the same synthetic trace end-to-end
# (generator | windowed checker) must be no slower through the BTF pipe
# than through the JSONL pipe — the binary decode path replaces JSON
# parsing, so it has no excuse. EXPERIMENTS.md records the measured
# ratio at 4M accesses on the reference host.
echo "==> synth-trace 2000000 [--format btf] | check - --stream (timed, btf <= jsonl)"
t0=$(date +%s%N)
./target/release/bulksc-analyze synth-trace 2000000 |
  ./target/release/bulksc-analyze check - --stream --window 65536 --jobs 2 > /dev/null
t1=$(date +%s%N)
./target/release/bulksc-analyze synth-trace 2000000 --format btf |
  ./target/release/bulksc-analyze check - --stream --window 65536 --jobs 2 > /dev/null
t2=$(date +%s%N)
jsonl_ms=$(((t1 - t0) / 1000000))
btf_ms=$(((t2 - t1) / 1000000))
echo "    jsonl pipe: ${jsonl_ms} ms, btf pipe: ${btf_ms} ms"
if [ "$btf_ms" -gt "$jsonl_ms" ]; then
  echo "BTF streaming certification (${btf_ms} ms) slower than JSONL (${jsonl_ms} ms)" >&2
  exit 1
fi

# Differential fuzz smoke: every generated trace is certified twice —
# batch and windowed streaming at two pool widths — and the verdicts,
# witnesses, and hashes must agree case by case.
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-fuzz -- \
  --seeds 2 --time-box 30 --jobs 2 --stream-check > /dev/null

# Metrics smoke: the fuzz sweep above ran with the live registry on, so
# it must have left a well-formed heartbeat stream and a text exposition
# behind. `bulksc-analyze metrics` re-parses the JSONL with the in-repo
# Json parser and exits nonzero on any malformed line or schema drift;
# the exposition must carry real simulated counters, not zeros.
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  metrics results/fuzz.metrics.jsonl > /dev/null
run grep -q '^bulksc_sim_chunks_committed [1-9]' results/fuzz.metrics.prom

# Host-performance smoke: a fast pass over the perf matrix (small budget,
# 2 reps — seconds, not minutes). `prof` re-reads the artifact and fails
# if the tracing tax (bsc8 KIPS over bsc8_trace KIPS) exceeds 3x — the
# zero-cost-when-off contract for the event-trace layer, with headroom
# for host noise at smoke budgets — or if the metrics tax (bsc8 KIPS
# over bsc8_metrics KIPS, both medians) exceeds 1.02x: live counters
# must cost under 2% of throughput or they are not cheap enough to
# leave on during sweeps. `perf-diff` against the committed
# baseline uses a deliberately loose 90% threshold: absolute KIPS varies
# wildly across hosts, so this only catches order-of-magnitude collapses
# and scenario-matrix drift, while the self-diff must always be clean.
# results/ is a gitignored run output, so on a fresh checkout the
# baseline is seeded from a fast pass first (repro.sh replaces it with a
# full-budget one).
if [ ! -f results/perf.json ]; then
  run cargo run -q --release --offline -p bulksc-bench --bin bulksc-perf -- \
    --fast --out results/perf.json --no-trajectory --jobs 2 > /dev/null
fi
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-perf -- \
  --fast --out results/perf.ci.json --no-trajectory --jobs 2 > /dev/null
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  prof results/perf.ci.json --max-trace-overhead 3.0 --max-metrics-overhead 1.02 \
  --max-xray-overhead 1.10 > /dev/null
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  perf-diff results/perf.json results/perf.ci.json --threshold 90 > /dev/null
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  perf-diff results/perf.ci.json results/perf.ci.json --threshold 0 > /dev/null
rm -f results/perf.ci.json

# Xray forensics smoke: an experiment binary run with --xray must leave
# a conflict-forensics artifact behind, and `bulksc-analyze xray` must
# render it (with a --dot causality graph) without complaint. The
# report's *content* is pinned by the golden-figure layer
# (tests/golden/xray.txt); this exercises the real CLI path on the real
# artifact file at the same pinned budget and seed.
run env BULKSC_BUDGET=25000 cargo run -q --release --offline -p bulksc-bench --bin table3 -- \
  --xray --jobs 2 > /dev/null
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  xray results/table3.xray.jsonl --dot results/table3.xray.dot > /dev/null
run grep -q 'digraph xray' results/table3.xray.dot

echo "CI gate passed."
