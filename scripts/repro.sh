#!/usr/bin/env bash
# Regenerate every results/ artifact from scratch, then run
# `bulksc-analyze` over each one as a validity gate: the report pass
# checks schema versions and the per-core cycle-loss invariant, and the
# timeline pass checks that every traced chunk terminates.
#
#   scripts/repro.sh                # default budget (~minutes)
#   BULKSC_BUDGET=5000 scripts/repro.sh   # faster, coarser
#
# Every sweep runs on the bulksc_bench::pool host worker pool; set
# BULKSC_JOBS=N to pick the width (default: available parallelism).
# The artifacts are byte-identical at any width, so this only changes
# wall-clock time.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo build --workspace --release --offline

# Text tables + JSON RunLogs for every figure/table of the evaluation.
for bin in fig9 fig10 fig11 table3 table4 ablations; do
  run cargo run -q --release --offline -p bulksc-bench --bin "$bin" -- --json \
    > "results/$bin.txt"
done

# The tracing demo writes the JSONL event stream, the Chrome trace, and
# the interval-sample series.
run cargo run -q --release --offline --example trace_demo > /dev/null

# Host-performance suite: results/perf.json plus the BENCH_seed.json
# trajectory (absolute numbers are host-specific; the per-phase shares
# and scenario ratios are the comparable part).
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-perf -- \
  --label seed > /dev/null

# Validate everything we just wrote.
for artifact in results/*.json; do
  case "$artifact" in
    *.trace.json | *.samples.json | *perf*.json) continue ;; # not RunLogs
  esac
  run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
    report "$artifact" > /dev/null
done
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  timeline results/trace_demo.jsonl
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  prof results/perf.json > /dev/null

# The demo run was recorded with value tracing on, so its event stream
# must also pass the SC conformance oracle — once through the batch
# path and once through the streaming/windowed path (the two must
# agree; tests/stream_equivalence.rs pins that, this exercises the CLI).
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  check results/trace_demo.jsonl
run cargo run -q --release --offline -p bulksc-bench --bin bulksc-analyze -- \
  check results/trace_demo.jsonl --stream --window 4096 --jobs 2

echo "results/ regenerated and validated."
