//! Unified metrics registry for the whole workspace: what is the
//! simulator — and the sweep driving it — *doing right now*, and what did
//! it do in total?
//!
//! `SimReport` aggregates one run after the fact; `bulksc-prof` attributes
//! host time; this crate is the third leg: named counters, high-water
//! gauges, and histograms that any layer (simulator core, worker pool,
//! experiment binaries) can increment cheaply, collected per thread and
//! merged into one process-wide [`MetricsSnapshot`] for live heartbeats
//! and a Prometheus-style text exposition.
//!
//! # Design constraints
//!
//! * **Off by default, and cheap when off.** Every increment first reads
//!   one `const`-initialized thread-local flag ([`is_enabled`]) and
//!   returns immediately when metrics are disabled — the same zero-cost
//!   discipline as `bulksc-prof::scope`. Enabling metrics cannot change a
//!   single simulated cycle, event, or artifact byte (enforced by
//!   `tests/metrics_determinism.rs` at the workspace root).
//! * **Sharded per thread, merged deterministically.** All registry state
//!   is thread-local. Each `bulksc_bench::pool` worker brackets its jobs
//!   with [`enable`]/[`disable`] and [`publish`]es the resulting snapshot
//!   into the process-global accumulator after the join. Counters merge by
//!   summation, gauges by maximum, histograms by bucket-wise addition —
//!   all commutative — so the merged snapshot is identical at any worker
//!   width and any completion order.
//! * **Deterministic and host-time surfaces are separate.** Counters,
//!   gauges, and simulated-quantity histograms are pure functions of the
//!   simulated work and therefore byte-stable across runs and widths
//!   ([`MetricsSnapshot::deterministic_text`]). Host-time histograms
//!   (per-job wall nanoseconds) are real measurements and inherently
//!   noisy; they appear in the full exposition
//!   ([`MetricsSnapshot::to_text_exposition`]) but never in the
//!   deterministic surface.
//!
//! The [`live`] module is the one intentional exception to thread-local
//! sharding: a handful of process-global relaxed atomics (jobs done /
//! total / in flight, queue depth and its peak) that the sweep heartbeat
//! thread reads while workers are still running. Live state carries
//! progress only — never simulated results.

use std::cell::{Cell, RefCell};
use std::sync::Mutex;

use bulksc_stats::Histogram;

/// The static registry of workspace counters (monotonic event totals).
///
/// Fixed IDs so an increment is an array index, not a hash lookup; the
/// names below are the stable strings the text exposition carries
/// (prefixed `bulksc_`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Counter {
    /// Chunks committed across all cores.
    ChunksCommitted,
    /// Instructions inside committed chunks.
    InstrsCommitted,
    /// Squashes caused by true sharing.
    SquashesTrueSharing,
    /// Squashes caused by signature aliasing (false positives).
    SquashesAlias,
    /// Squashes caused by speculative-state overflow.
    SquashesOverflow,
    /// Instructions discarded by squashes.
    InstrsSquashed,
    /// Extra cache-line invalidations caused by signature aliasing.
    SigFpExtraInvs,
    /// Commit requests received by the (central or distributed) arbiters.
    ArbRequests,
    /// Commit requests denied by the arbiters.
    ArbDenials,
    /// Commit requests granted by the arbiters.
    ArbGrants,
    /// Proposals received by the G-arbiter (distributed mode).
    GarbRequests,
    /// G-arbiter fast-path denials (conflict known without a vote).
    GarbFastDenials,
    /// G-arbiter full denials after a vote.
    GarbDenials,
    /// W signatures received by the directories for expansion.
    DirWsigsReceived,
    /// Directory tag lookups driven by signature expansion.
    DirLookups,
    /// Lookups that hit no real line (signature false positives).
    DirLookupsUnnecessary,
    /// Directory state updates driven by signature expansion.
    DirUpdates,
    /// Updates to lines the chunk never wrote (false positives).
    DirUpdatesUnnecessary,
    /// Sharer cores targeted by commit invalidations.
    DirInvTargets,
    /// Messages sent on the interconnect (hops).
    FabricMessages,
    /// Bytes moved on the interconnect.
    FabricBytes,
    /// Simulated runs driven to completion.
    RunsCompleted,
    /// Pool jobs completed.
    PoolJobsCompleted,
    /// Pool jobs that panicked.
    PoolJobsPanicked,
}

/// Number of registered counters.
pub const COUNTER_COUNT: usize = 24;

impl Counter {
    /// Every counter, in registry order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::ChunksCommitted,
        Counter::InstrsCommitted,
        Counter::SquashesTrueSharing,
        Counter::SquashesAlias,
        Counter::SquashesOverflow,
        Counter::InstrsSquashed,
        Counter::SigFpExtraInvs,
        Counter::ArbRequests,
        Counter::ArbDenials,
        Counter::ArbGrants,
        Counter::GarbRequests,
        Counter::GarbFastDenials,
        Counter::GarbDenials,
        Counter::DirWsigsReceived,
        Counter::DirLookups,
        Counter::DirLookupsUnnecessary,
        Counter::DirUpdates,
        Counter::DirUpdatesUnnecessary,
        Counter::DirInvTargets,
        Counter::FabricMessages,
        Counter::FabricBytes,
        Counter::RunsCompleted,
        Counter::PoolJobsCompleted,
        Counter::PoolJobsPanicked,
    ];

    /// The stable name the exposition carries (without the `bulksc_`
    /// prefix).
    pub fn name(self) -> &'static str {
        match self {
            Counter::ChunksCommitted => "sim_chunks_committed",
            Counter::InstrsCommitted => "sim_instrs_committed",
            Counter::SquashesTrueSharing => "sim_squashes_true_sharing",
            Counter::SquashesAlias => "sim_squashes_alias",
            Counter::SquashesOverflow => "sim_squashes_overflow",
            Counter::InstrsSquashed => "sim_instrs_squashed",
            Counter::SigFpExtraInvs => "sim_sig_fp_extra_invs",
            Counter::ArbRequests => "sim_arb_requests",
            Counter::ArbDenials => "sim_arb_denials",
            Counter::ArbGrants => "sim_arb_grants",
            Counter::GarbRequests => "sim_garb_requests",
            Counter::GarbFastDenials => "sim_garb_fast_denials",
            Counter::GarbDenials => "sim_garb_denials",
            Counter::DirWsigsReceived => "sim_dir_wsigs_received",
            Counter::DirLookups => "sim_dir_lookups",
            Counter::DirLookupsUnnecessary => "sim_dir_lookups_unnecessary",
            Counter::DirUpdates => "sim_dir_updates",
            Counter::DirUpdatesUnnecessary => "sim_dir_updates_unnecessary",
            Counter::DirInvTargets => "sim_dir_inv_targets",
            Counter::FabricMessages => "sim_fabric_messages",
            Counter::FabricBytes => "sim_fabric_bytes",
            Counter::RunsCompleted => "sim_runs_completed",
            Counter::PoolJobsCompleted => "pool_jobs_completed",
            Counter::PoolJobsPanicked => "pool_jobs_panicked",
        }
    }

    /// The counter that tallies squashes of `cause`. This is the single
    /// source of truth binding the trace vocabulary to the metrics
    /// registry: the simulator core increments squash counters through
    /// this mapping, and a test below pins each mapped counter's
    /// exposition name to the cause's trace label so the two surfaces can
    /// never drift.
    pub fn for_squash_cause(cause: bulksc_trace::SquashCause) -> Counter {
        use bulksc_trace::SquashCause;
        match cause {
            SquashCause::TrueSharing => Counter::SquashesTrueSharing,
            SquashCause::Alias => Counter::SquashesAlias,
            SquashCause::Overflow => Counter::SquashesOverflow,
        }
    }
}

/// Registered gauges. Gauges here are *high-water marks*: [`gauge_peak`]
/// keeps the maximum observed value, and shards merge by maximum — the
/// only gauge semantic whose merge is order- and width-independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Gauge {
    /// Peak messages simultaneously in flight in one fabric.
    FabricDepthPeak,
    /// Peak W signatures simultaneously held by one arbiter.
    ArbPendingWPeak,
    /// Peak depth of the pool's pending-job queue.
    PoolQueueDepthPeak,
}

/// Number of registered gauges.
pub const GAUGE_COUNT: usize = 3;

impl Gauge {
    /// Every gauge, in registry order.
    pub const ALL: [Gauge; GAUGE_COUNT] = [
        Gauge::FabricDepthPeak,
        Gauge::ArbPendingWPeak,
        Gauge::PoolQueueDepthPeak,
    ];

    /// The stable exposition name (without the `bulksc_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::FabricDepthPeak => "sim_fabric_depth_peak",
            Gauge::ArbPendingWPeak => "sim_arb_pending_w_peak",
            Gauge::PoolQueueDepthPeak => "pool_queue_depth_peak",
        }
    }

    /// True if the gauge tracks host-side state (excluded from the
    /// deterministic surface: it depends on wall-clock scheduling).
    pub fn host_side(self) -> bool {
        matches!(self, Gauge::PoolQueueDepthPeak)
    }
}

/// Registered histograms (backed by [`bulksc_stats::Histogram`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Hist {
    /// Instructions per committed chunk (simulated; deterministic).
    ChunkInstrs,
    /// Wall nanoseconds per completed pool job (host time; noisy).
    JobWallNs,
}

/// Number of registered histograms.
pub const HIST_COUNT: usize = 2;

impl Hist {
    /// Every histogram, in registry order.
    pub const ALL: [Hist; HIST_COUNT] = [Hist::ChunkInstrs, Hist::JobWallNs];

    /// The stable exposition name (without the `bulksc_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            Hist::ChunkInstrs => "sim_chunk_instrs",
            Hist::JobWallNs => "pool_job_wall_ns",
        }
    }

    /// True if the histogram measures host time (excluded from the
    /// deterministic surface).
    pub fn host_time(self) -> bool {
        matches!(self, Hist::JobWallNs)
    }
}

/// One thread's registry shard.
struct Shard {
    counters: [u64; COUNTER_COUNT],
    gauges: [u64; GAUGE_COUNT],
    hists: [Histogram; HIST_COUNT],
}

impl Default for Shard {
    fn default() -> Shard {
        Shard {
            counters: [0; COUNTER_COUNT],
            gauges: [0; GAUGE_COUNT],
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SHARD: RefCell<Shard> = RefCell::new(Shard::default());
}

/// Start collecting on this thread, discarding any previous shard.
pub fn enable() {
    SHARD.with(|s| *s.borrow_mut() = Shard::default());
    ENABLED.with(|e| e.set(true));
}

/// True if [`enable`] is active on this thread.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Stop collecting and return this thread's shard as a snapshot.
pub fn disable() -> MetricsSnapshot {
    ENABLED.with(|e| e.set(false));
    SHARD.with(|s| {
        let shard = std::mem::take(&mut *s.borrow_mut());
        MetricsSnapshot {
            counters: shard.counters,
            gauges: shard.gauges,
            hists: shard.hists.to_vec(),
        }
    })
}

/// Add 1 to `c`. Disabled (the default), this reads one thread-local
/// flag and returns.
#[inline]
pub fn inc(c: Counter) {
    add(c, 1);
}

/// Add `n` to `c`.
#[inline]
pub fn add(c: Counter, n: u64) {
    if !ENABLED.with(|e| e.get()) {
        return;
    }
    SHARD.with(|s| s.borrow_mut().counters[c as usize] += n);
}

/// Raise `g` to `v` if `v` exceeds the current high-water mark.
#[inline]
pub fn gauge_peak(g: Gauge, v: u64) {
    if !ENABLED.with(|e| e.get()) {
        return;
    }
    SHARD.with(|s| {
        let slot = &mut s.borrow_mut().gauges[g as usize];
        if v > *slot {
            *slot = v;
        }
    });
}

/// Record `v` into histogram `h`.
#[inline]
pub fn observe(h: Hist, v: u64) {
    if !ENABLED.with(|e| e.get()) {
        return;
    }
    SHARD.with(|s| s.borrow_mut().hists[h as usize].record(v));
}

/// A merged (or single-shard) view of the registry.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    counters: [u64; COUNTER_COUNT],
    gauges: [u64; GAUGE_COUNT],
    hists: Vec<Histogram>,
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: [0; COUNTER_COUNT],
            gauges: [0; GAUGE_COUNT],
            hists: (0..HIST_COUNT).map(|_| Histogram::new()).collect(),
        }
    }
}

impl MetricsSnapshot {
    /// The value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The high-water mark of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// One histogram.
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hists[h as usize]
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.hists.iter().all(Histogram::is_empty)
    }

    /// Merge another snapshot into this one. Counters sum, gauges take
    /// the maximum, histograms merge bucket-wise — every operation is
    /// commutative and associative, so any merge order over any shard
    /// partition yields the identical snapshot.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// The deterministic surface: counters, simulated gauges, and
    /// simulated histograms, one `name value` line each in registry
    /// order. Byte-identical across runs, hosts, and pool widths for the
    /// same simulated work; host-time metrics are excluded.
    pub fn deterministic_text(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            out.push_str(&format!("{} {}\n", c.name(), self.counter(c)));
        }
        for g in Gauge::ALL {
            if g.host_side() {
                continue;
            }
            out.push_str(&format!("{} {}\n", g.name(), self.gauge(g)));
        }
        for h in Hist::ALL {
            if h.host_time() {
                continue;
            }
            let hist = self.hist(h);
            out.push_str(&format!(
                "{} count={} sum={} min={} max={}\n",
                h.name(),
                hist.count(),
                hist.sum(),
                hist.min(),
                hist.max()
            ));
        }
        out
    }

    /// Prometheus-style text exposition of the full snapshot (counters,
    /// gauges, and histograms rendered as summaries), every family
    /// prefixed `bulksc_`. This is the format a future `bulksc-serve`
    /// scrape endpoint would return verbatim.
    pub fn to_text_exposition(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            out.push_str(&format!("# TYPE bulksc_{} counter\n", c.name()));
            out.push_str(&format!("bulksc_{} {}\n", c.name(), self.counter(c)));
        }
        for g in Gauge::ALL {
            out.push_str(&format!("# TYPE bulksc_{} gauge\n", g.name()));
            out.push_str(&format!("bulksc_{} {}\n", g.name(), self.gauge(g)));
        }
        for h in Hist::ALL {
            let hist = self.hist(h);
            out.push_str(&format!("# TYPE bulksc_{} summary\n", h.name()));
            for (q, p) in [(0.5, 50.0), (0.9, 90.0), (0.99, 99.0)] {
                out.push_str(&format!(
                    "bulksc_{}{{quantile=\"{q}\"}} {}\n",
                    h.name(),
                    hist.percentile(p)
                ));
            }
            out.push_str(&format!("bulksc_{}_sum {}\n", h.name(), hist.sum()));
            out.push_str(&format!("bulksc_{}_count {}\n", h.name(), hist.count()));
        }
        out
    }
}

static GLOBAL: Mutex<Option<MetricsSnapshot>> = Mutex::new(None);

/// Merge a thread's snapshot into the process-global accumulator (called
/// by pool workers after [`disable`]).
pub fn publish(snap: MetricsSnapshot) {
    let mut global = GLOBAL.lock().unwrap();
    match global.as_mut() {
        Some(g) => g.merge(&snap),
        None => *global = Some(snap),
    }
}

/// Take (and clear) the process-global accumulator.
pub fn take_global() -> MetricsSnapshot {
    GLOBAL.lock().unwrap().take().unwrap_or_default()
}

/// Clear the process-global accumulator (start of a metered sweep).
pub fn reset_global() {
    *GLOBAL.lock().unwrap() = None;
}

pub mod live {
    //! Process-global live progress for sweep heartbeats.
    //!
    //! Unlike the sharded registry, these are relaxed atomics a heartbeat
    //! thread can read while pool workers are mid-job. They carry *host
    //! progress only* (job counts, queue depth); simulated quantities
    //! never pass through here. Activation is process-wide: the pool
    //! only spends atomic operations on live state when a `--metrics`
    //! sweep turned it on.

    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static TOTAL: AtomicU64 = AtomicU64::new(0);
    static DONE: AtomicU64 = AtomicU64::new(0);
    static IN_FLIGHT: AtomicU64 = AtomicU64::new(0);
    static QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
    static QUEUE_PEAK: AtomicU64 = AtomicU64::new(0);
    static PANICKED: AtomicU64 = AtomicU64::new(0);
    static SQUASHES_TRUE: AtomicU64 = AtomicU64::new(0);
    static SQUASHES_ALIAS: AtomicU64 = AtomicU64::new(0);
    static SQUASHES_OVERFLOW: AtomicU64 = AtomicU64::new(0);

    /// Turn live collection on and zero all progress state.
    pub fn activate() {
        reset();
        ACTIVE.store(true, Ordering::SeqCst);
    }

    /// Turn live collection off (progress state keeps its last values so
    /// a final snapshot can still be taken).
    pub fn deactivate() {
        ACTIVE.store(false, Ordering::SeqCst);
    }

    /// True while a `--metrics` sweep is running.
    #[inline]
    pub fn is_active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Zero all progress state.
    pub fn reset() {
        for a in [
            &TOTAL,
            &DONE,
            &IN_FLIGHT,
            &QUEUE_DEPTH,
            &QUEUE_PEAK,
            &PANICKED,
            &SQUASHES_TRUE,
            &SQUASHES_ALIAS,
            &SQUASHES_OVERFLOW,
        ] {
            a.store(0, Ordering::SeqCst);
        }
    }

    /// A simulated chunk was squashed for `cause`. Unlike job progress
    /// (which the pool tracks unconditionally while active), this is
    /// called from the simulator's squash path, so it pays one relaxed
    /// load and returns when no `--metrics` sweep is live — the same
    /// off-is-free discipline as the sharded registry. Counts here feed
    /// heartbeat lines only; the authoritative totals are the registry
    /// counters.
    #[inline]
    pub fn squash(cause: bulksc_trace::SquashCause) {
        if !is_active() {
            return;
        }
        use bulksc_trace::SquashCause;
        let slot = match cause {
            SquashCause::TrueSharing => &SQUASHES_TRUE,
            SquashCause::Alias => &SQUASHES_ALIAS,
            SquashCause::Overflow => &SQUASHES_OVERFLOW,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// A sweep enqueued `n` more jobs.
    pub fn add_total(n: u64) {
        TOTAL.fetch_add(n, Ordering::Relaxed);
        let depth = QUEUE_DEPTH.fetch_add(n, Ordering::Relaxed) + n;
        QUEUE_PEAK.fetch_max(depth, Ordering::Relaxed);
    }

    /// A worker pulled a job off the queue.
    pub fn job_started() {
        QUEUE_DEPTH.fetch_sub(1, Ordering::Relaxed);
        IN_FLIGHT.fetch_add(1, Ordering::Relaxed);
    }

    /// A job ran to completion.
    pub fn job_finished() {
        IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
        DONE.fetch_add(1, Ordering::Relaxed);
    }

    /// A job panicked.
    pub fn job_panicked() {
        IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
        PANICKED.fetch_add(1, Ordering::Relaxed);
    }

    /// One coherent-enough view of the progress state (fields are read
    /// independently; a heartbeat tolerates a job moving between reads).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct LiveSnapshot {
        /// Jobs enqueued so far.
        pub total: u64,
        /// Jobs completed.
        pub done: u64,
        /// Jobs currently executing.
        pub in_flight: u64,
        /// Jobs waiting in the queue.
        pub queue_depth: u64,
        /// Highest queue depth observed.
        pub queue_peak: u64,
        /// Jobs that panicked.
        pub panicked: u64,
        /// Squashes caused by true sharing (simulated, live tally).
        pub squashes_true: u64,
        /// Squashes caused by signature aliasing.
        pub squashes_alias: u64,
        /// Squashes caused by speculative-state overflow.
        pub squashes_overflow: u64,
    }

    /// Read the current progress state.
    pub fn snapshot() -> LiveSnapshot {
        LiveSnapshot {
            total: TOTAL.load(Ordering::Relaxed),
            done: DONE.load(Ordering::Relaxed),
            in_flight: IN_FLIGHT.load(Ordering::Relaxed),
            queue_depth: QUEUE_DEPTH.load(Ordering::Relaxed),
            queue_peak: QUEUE_PEAK.load(Ordering::Relaxed),
            panicked: PANICKED.load(Ordering::Relaxed),
            squashes_true: SQUASHES_TRUE.load(Ordering::Relaxed),
            squashes_alias: SQUASHES_ALIAS.load(Ordering::Relaxed),
            squashes_overflow: SQUASHES_OVERFLOW.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_consistent() {
        assert_eq!(Counter::ALL.len(), COUNTER_COUNT);
        assert_eq!(Gauge::ALL.len(), GAUGE_COUNT);
        assert_eq!(Hist::ALL.len(), HIST_COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "counter order matches discriminants");
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
        // Names are unique across all three families (they key the
        // exposition).
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn squash_cause_names_cannot_drift_from_trace_labels() {
        // One source of truth: for every trace-level squash cause, the
        // mapped counter's exposition name must be exactly
        // `sim_squashes_<label>` with the label's dashes folded to
        // underscores. Renaming either side breaks this test.
        for cause in bulksc_trace::SquashCause::ALL {
            let expected = format!("sim_squashes_{}", cause.label().replace('-', "_"));
            assert_eq!(
                Counter::for_squash_cause(cause).name(),
                expected,
                "metric name drifted from trace label for {:?}",
                cause
            );
        }
        // The mapping is injective: three causes, three distinct counters.
        let mut mapped: Vec<Counter> = bulksc_trace::SquashCause::ALL
            .iter()
            .map(|&c| Counter::for_squash_cause(c))
            .collect();
        mapped.dedup();
        assert_eq!(mapped.len(), 3);
    }

    /// Serializes tests that touch the process-global live atomics (the
    /// cargo harness runs `#[test]`s concurrently).
    static LIVE_SLOT: Mutex<()> = Mutex::new(());

    #[test]
    fn live_squash_tallies_per_cause_only_while_active() {
        use bulksc_trace::SquashCause;
        let _g = LIVE_SLOT.lock().unwrap_or_else(|p| p.into_inner());
        live::reset();
        assert!(!live::is_active());
        live::squash(SquashCause::Alias); // inactive: dropped
        live::activate();
        live::squash(SquashCause::TrueSharing);
        live::squash(SquashCause::Alias);
        live::squash(SquashCause::Alias);
        live::squash(SquashCause::Overflow);
        let s = live::snapshot();
        assert_eq!(s.squashes_true, 1);
        assert_eq!(s.squashes_alias, 2);
        assert_eq!(s.squashes_overflow, 1);
        live::deactivate();
        live::reset();
        assert_eq!(live::snapshot().squashes_alias, 0);
    }

    #[test]
    fn disabled_increments_collect_nothing() {
        assert!(!is_enabled());
        inc(Counter::ChunksCommitted);
        gauge_peak(Gauge::FabricDepthPeak, 9);
        observe(Hist::ChunkInstrs, 100);
        enable();
        let snap = disable();
        assert!(snap.is_empty(), "increments before enable must not count");
    }

    #[test]
    fn enabled_shard_collects_and_resets() {
        enable();
        inc(Counter::ChunksCommitted);
        add(Counter::InstrsCommitted, 500);
        gauge_peak(Gauge::ArbPendingWPeak, 3);
        gauge_peak(Gauge::ArbPendingWPeak, 2); // below peak: ignored
        observe(Hist::ChunkInstrs, 500);
        let snap = disable();
        assert_eq!(snap.counter(Counter::ChunksCommitted), 1);
        assert_eq!(snap.counter(Counter::InstrsCommitted), 500);
        assert_eq!(snap.gauge(Gauge::ArbPendingWPeak), 3);
        assert_eq!(snap.hist(Hist::ChunkInstrs).count(), 1);
        // Re-enabling starts from a clean shard.
        enable();
        assert!(disable().is_empty());
    }

    #[test]
    fn merge_is_commutative() {
        let shard = |n: u64, peak: u64, obs: u64| {
            enable();
            add(Counter::ArbRequests, n);
            gauge_peak(Gauge::FabricDepthPeak, peak);
            observe(Hist::ChunkInstrs, obs);
            disable()
        };
        let a = shard(10, 4, 100);
        let b = shard(3, 9, 200);
        let c = shard(7, 1, 50);
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc.deterministic_text(), cba.deterministic_text());
        assert_eq!(abc.counter(Counter::ArbRequests), 20);
        assert_eq!(abc.gauge(Gauge::FabricDepthPeak), 9);
        assert_eq!(abc.hist(Hist::ChunkInstrs).count(), 3);
    }

    #[test]
    fn exposition_is_prometheus_shaped() {
        enable();
        inc(Counter::FabricMessages);
        add(Counter::FabricBytes, 64);
        observe(Hist::JobWallNs, 1_000_000);
        let snap = disable();
        let text = snap.to_text_exposition();
        assert!(text.contains("# TYPE bulksc_sim_fabric_messages counter"));
        assert!(text.contains("bulksc_sim_fabric_bytes 64"));
        assert!(text.contains("bulksc_pool_job_wall_ns_count 1"));
        assert!(text.contains("quantile=\"0.5\""));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            assert!(name.starts_with("bulksc_"), "{line}");
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
        // Host-time metrics stay out of the deterministic surface.
        let det = snap.deterministic_text();
        assert!(!det.contains("pool_job_wall_ns"), "{det}");
        assert!(det.contains("sim_fabric_bytes 64"), "{det}");
    }

    #[test]
    fn publish_accumulates_into_the_global() {
        reset_global();
        enable();
        inc(Counter::RunsCompleted);
        publish(disable());
        enable();
        add(Counter::RunsCompleted, 2);
        publish(disable());
        let merged = take_global();
        assert_eq!(merged.counter(Counter::RunsCompleted), 3);
        // take_global drains.
        assert!(take_global().is_empty());
    }

    #[test]
    fn live_progress_tracks_jobs() {
        let _g = LIVE_SLOT.lock().unwrap_or_else(|p| p.into_inner());
        live::activate();
        assert!(live::is_active());
        live::add_total(4);
        live::job_started();
        live::job_started();
        live::job_finished();
        live::job_panicked();
        let s = live::snapshot();
        assert_eq!(s.total, 4);
        assert_eq!(s.done, 1);
        assert_eq!(s.panicked, 1);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_peak, 4);
        live::deactivate();
        assert!(!live::is_active());
        live::reset();
        assert_eq!(live::snapshot().total, 0);
    }
}
