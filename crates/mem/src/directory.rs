//! The directory module: demand coherence plus the BulkSC commit side
//! (paper §4.3).
//!
//! One [`Directory`] instance is one directory module of Figure 5. It owns
//! a slice of the physical address space, a [`DirStore`] of sharing state,
//! and a slice of the shared L2 (modelled as a presence filter that decides
//! whether a data response pays the L2 or the memory round trip).
//!
//! The same module serves both protocol families:
//!
//! * **Baselines (SC, RC, SC++)** use the full MESI vocabulary:
//!   `ReadShared`, `ReadExcl`, `Upgrade`, with invalidations, owner
//!   fetches, and writebacks.
//! * **BulkSC** uses only `ReadShared` (§4.3: every demand miss is a read
//!   request because a speculative accessor cannot be marked owner) plus
//!   the commit-side messages `WSigToDir`/`WSigInvAck`/`PrivSigToDir`,
//!   which drive DirBDM signature expansion (Table 1) and the conservative
//!   access disabling of §4.3.2.

use std::collections::HashMap;

use bulksc_metrics as metrics;
use bulksc_net::{ChunkTag, Cycle, Envelope, Fabric, Message, NodeId};
use bulksc_sig::{LineAddr, SigMode, SignatureConfig, TrackedSig};

use crate::cache::{CacheConfig, LineState, SetAssocCache};
use crate::dirbdm::expand_commit;
use crate::store::{DirOrganization, DirStore, Displaced};
use crate::values::ValueStore;

/// Directory timing and structure parameters.
#[derive(Clone, Debug)]
pub struct DirConfig {
    /// Entry store organization (directory cache by default, §4.3.3).
    pub organization: DirOrganization,
    /// Geometry of this module's slice of the shared L2.
    pub l2: CacheConfig,
    /// Extra response latency when the L2 holds the line (with the two
    /// network hops this approximates Table 2's 13-cycle L2 round trip).
    pub l2_extra: Cycle,
    /// Extra response latency when main memory must be accessed
    /// (approximates Table 2's 300-cycle memory round trip).
    pub mem_extra: Cycle,
    /// Signature geometry used when the directory builds signatures itself
    /// (directory-cache displacement, §4.3.3).
    pub sig: SignatureConfig,
    /// Signature mode for directory-built signatures.
    pub sig_mode: SigMode,
    /// Grant E state (and record ownership) to sole readers. Required for
    /// the baselines' silent E→M upgrades; must be false for BulkSC, where
    /// a speculative accessor can never be marked owner (§4.3) — and where
    /// clean sharer entries are exactly what commit expansion acts on.
    pub grant_exclusive: bool,
}

impl Default for DirConfig {
    fn default() -> Self {
        DirConfig {
            organization: DirOrganization::Cache {
                sets: 8192,
                assoc: 8,
            },
            l2: CacheConfig::l2_default(),
            l2_extra: 3,
            mem_extra: 290,
            sig: SignatureConfig::default(),
            sig_mode: SigMode::Bloom,
            grant_exclusive: true,
        }
    }
}

/// Event counters for Table 4 and general characterization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Demand read requests served (shared).
    pub reads: u64,
    /// Demand exclusive reads served (baselines).
    pub read_excls: u64,
    /// Upgrades served (baselines).
    pub upgrades: u64,
    /// Writebacks received.
    pub writebacks: u64,
    /// Requests bounced (busy line or committing line, §4.3.2).
    pub nacks: u64,
    /// W signatures received for commit expansion.
    pub wsigs_received: u64,
    /// Entries looked up during expansion (membership-positive).
    pub lookups: u64,
    /// Lookups caused by signature aliasing (Table 4).
    pub unnecessary_lookups: u64,
    /// Entries updated during expansion.
    pub updates: u64,
    /// Updates caused by aliasing — safe but counted (Table 4).
    pub unnecessary_updates: u64,
    /// Total cores put on invalidation lists ("Nodes per W Sig").
    pub inv_targets: u64,
    /// Wpriv signatures received (statically-private commits, §5.1).
    pub priv_sigs: u64,
    /// Directory-cache entry displacements (§4.3.3).
    pub dir_displacements: u64,
    /// L2 presence-filter hits.
    pub l2_hits: u64,
    /// L2 presence-filter misses (paid the memory latency).
    pub l2_misses: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxKind {
    Shared,
    Excl,
    Upgrade,
}

#[derive(Clone, Copy, Debug)]
struct PendingTx {
    kind: TxKind,
    requester: u32,
    acks_left: u32,
}

#[derive(Clone, Debug)]
struct CommitTx {
    arbiter: NodeId,
    acks_left: u32,
    w: TrackedSig,
}

/// A directory module with its DirBDM.
#[derive(Debug)]
pub struct Directory {
    id: NodeId,
    cfg: DirConfig,
    store: DirStore,
    l2: SetAssocCache,
    pending: HashMap<LineAddr, PendingTx>,
    commits: HashMap<ChunkTag, CommitTx>,
    stats: DirStats,
    trace: bulksc_trace::TraceHandle,
}

impl Directory {
    /// A directory module answering as network node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a [`NodeId::Dir`].
    pub fn new(id: NodeId, cfg: DirConfig) -> Self {
        assert!(
            matches!(id, NodeId::Dir(_)),
            "directory id must be NodeId::Dir"
        );
        Directory {
            id,
            store: DirStore::new(cfg.organization),
            l2: SetAssocCache::new(cfg.l2),
            cfg,
            pending: HashMap::new(),
            commits: HashMap::new(),
            stats: DirStats::default(),
            trace: bulksc_trace::TraceHandle::off(),
        }
    }

    /// Route this directory's trace events to `trace`'s sinks.
    pub fn set_tracer(&mut self, trace: bulksc_trace::TraceHandle) {
        self.trace = trace;
    }

    /// This directory's index (the `i` of `NodeId::Dir(i)`).
    fn dir_index(&self) -> u32 {
        match self.id {
            NodeId::Dir(i) => i,
            _ => unreachable!("checked in new()"),
        }
    }

    /// This module's network id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Event counters.
    pub fn stats(&self) -> &DirStats {
        &self.stats
    }

    /// The sharing-state store (tests and diagnostics).
    pub fn store(&self) -> &DirStore {
        &self.store
    }

    /// One-line diagnostic snapshot (for debugging stuck systems).
    pub fn debug_state(&self) -> String {
        format!(
            "dir pending={:?} commits={}",
            self.pending
                .iter()
                .map(|(l, tx)| format!("{l}:{:?}req{}acks{}", tx.kind, tx.requester, tx.acks_left))
                .collect::<Vec<_>>(),
            self.commits.len(),
        )
    }

    /// Number of commits currently holding lines disabled.
    pub fn committing_count(&self) -> usize {
        self.commits.len()
    }

    /// True if an incoming read for `line` must bounce because the line may
    /// have been updated by a still-committing chunk (§4.3.2).
    fn commit_disabled(&self, line: LineAddr) -> bool {
        self.commits.values().any(|c| c.w.contains(line))
    }

    /// Latency of producing data for `line`: L2 round trip if present,
    /// memory otherwise (and the line is installed in the L2).
    fn data_latency(&mut self, line: LineAddr) -> Cycle {
        if self.l2.touch(line) {
            self.stats.l2_hits += 1;
            self.cfg.l2_extra
        } else {
            self.stats.l2_misses += 1;
            self.l2.insert(line, LineState::Shared, |_| false);
            self.cfg.mem_extra
        }
    }

    /// Process one incoming message at time `now`, sending any responses
    /// through `fab`. `values` is the committed memory state, snapshotted
    /// into data responses at their serving (linearization) point.
    ///
    /// # Panics
    ///
    /// Panics on messages a directory can never receive (they indicate a
    /// routing bug in the surrounding system).
    pub fn handle(&mut self, now: Cycle, env: Envelope, fab: &mut Fabric, values: &ValueStore) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Directory);
        match env.msg {
            Message::ReadShared { line } => {
                self.demand_read(now, env.src, line, false, fab, values)
            }
            Message::ReadExcl { line } => self.demand_read(now, env.src, line, true, fab, values),
            Message::Upgrade { line } => self.upgrade(now, env.src, line, fab),
            Message::Writeback { line, keep_shared } => self.writeback(env.src, line, keep_shared),
            Message::InvAck { line, dirty } => self.inv_ack(now, env.src, line, dirty, fab, values),
            Message::FetchResp {
                line,
                dirty,
                had_line,
            } => self.fetch_resp(now, line, dirty, had_line, fab, values),
            Message::WSigToDir { chunk, w } => self.wsig(now, env.src, chunk, *w, fab),
            Message::WSigInvAck { chunk } => self.wsig_ack(now, chunk, fab),
            Message::PrivSigToDir { chunk, w } => self.priv_sig(now, chunk, *w, fab),
            other => panic!("directory received unexpected message {other:?}"),
        }
    }

    fn core_index(src: NodeId) -> u32 {
        match src {
            NodeId::Core(c) => c,
            other => panic!("expected a core requester, got {other:?}"),
        }
    }

    fn nack(&mut self, now: Cycle, dst: NodeId, line: LineAddr, fab: &mut Fabric) {
        self.stats.nacks += 1;
        fab.send(now, self.id, dst, Message::Nack { line });
    }

    fn demand_read(
        &mut self,
        now: Cycle,
        src: NodeId,
        line: LineAddr,
        excl: bool,
        fab: &mut Fabric,
        values: &ValueStore,
    ) {
        let p = Self::core_index(src);
        if self.pending.contains_key(&line) || self.commit_disabled(line) {
            self.nack(now, src, line, fab);
            return;
        }
        let pending = &self.pending;
        let alloc = self
            .store
            .entry_mut_with_veto(line, |l| pending.contains_key(&l));
        let Some((entry, displaced)) = alloc else {
            self.nack(now, src, line, fab);
            return;
        };
        let mut snapshot = *entry;
        if snapshot.dirty && snapshot.sharers == 0 {
            // Orphaned dirty bit (owner vanished through a displacement
            // race): memory is authoritative again.
            entry.dirty = false;
            snapshot.dirty = false;
        }
        if excl {
            self.stats.read_excls += 1;
        } else {
            self.stats.reads += 1;
        }

        if let Some(d) = displaced {
            self.displace_entry(now, d, fab);
        }

        if snapshot.dirty && !snapshot.has_sharer(p) {
            // Owned elsewhere: fetch from the owner first.
            let owner = snapshot.sharer_list()[0];
            self.pending.insert(
                line,
                PendingTx {
                    kind: if excl { TxKind::Excl } else { TxKind::Shared },
                    requester: p,
                    acks_left: 0,
                },
            );
            fab.send(
                now,
                self.id,
                NodeId::Core(owner),
                Message::Fetch {
                    line,
                    for_excl: excl,
                },
            );
            return;
        }

        if snapshot.dirty {
            // The requester itself is recorded as owner but missed: the
            // "false owner" self case of §4.3.1 (or a post-squash refetch).
            // Serve from memory and clear the stale dirty bit.
            let e = self.store.get_mut(line).expect("entry just allocated");
            e.dirty = false;
            e.add_sharer(p);
            let exclusive = excl && e.sharer_count() == 1;
            if exclusive {
                e.dirty = true;
            }
            let extra = self.cfg.mem_extra;
            self.stats.l2_misses += 1;
            let data = values.read_line(line);
            fab.send_delayed(
                now,
                extra,
                self.id,
                src,
                Message::Data {
                    line,
                    exclusive,
                    data,
                },
            );
            return;
        }

        if excl {
            let others: Vec<u32> = snapshot
                .sharer_list()
                .into_iter()
                .filter(|&s| s != p)
                .collect();
            if others.is_empty() {
                let e = self.store.get_mut(line).expect("entry just allocated");
                e.sharers = 1 << p;
                e.dirty = true;
                let extra = self.data_latency(line);
                let data = values.read_line(line);
                fab.send_delayed(
                    now,
                    extra,
                    self.id,
                    src,
                    Message::Data {
                        line,
                        exclusive: true,
                        data,
                    },
                );
            } else {
                self.pending.insert(
                    line,
                    PendingTx {
                        kind: TxKind::Excl,
                        requester: p,
                        acks_left: others.len() as u32,
                    },
                );
                for s in others {
                    fab.send(now, self.id, NodeId::Core(s), Message::Inv { line });
                }
            }
            return;
        }

        // Plain shared read. Under the baselines a first reader gets the
        // line in E state and the directory records it as owner (E holders
        // upgrade to M silently); under BulkSC every reader is a plain
        // sharer (§4.3).
        let e = self.store.get_mut(line).expect("entry just allocated");
        let exclusive = self.cfg.grant_exclusive && e.sharers == 0;
        e.add_sharer(p);
        if exclusive {
            e.dirty = true;
        }
        let extra = self.data_latency(line);
        let data = values.read_line(line);
        fab.send_delayed(
            now,
            extra,
            self.id,
            src,
            Message::Data {
                line,
                exclusive,
                data,
            },
        );
    }

    fn upgrade(&mut self, now: Cycle, src: NodeId, line: LineAddr, fab: &mut Fabric) {
        let p = Self::core_index(src);
        if self.pending.contains_key(&line) || self.commit_disabled(line) {
            self.nack(now, src, line, fab);
            return;
        }
        let Some(entry) = self.store.get(line).copied() else {
            // Entry displaced since the requester read the line: its copy
            // was invalidated in flight. Make it retry with a full miss.
            self.nack(now, src, line, fab);
            return;
        };
        if entry.dirty || !entry.has_sharer(p) {
            self.nack(now, src, line, fab);
            return;
        }
        self.stats.upgrades += 1;
        let others: Vec<u32> = entry
            .sharer_list()
            .into_iter()
            .filter(|&s| s != p)
            .collect();
        if others.is_empty() {
            let e = self.store.get_mut(line).expect("entry exists");
            e.sharers = 1 << p;
            e.dirty = true;
            fab.send(now, self.id, src, Message::UpgradeAck { line });
        } else {
            self.pending.insert(
                line,
                PendingTx {
                    kind: TxKind::Upgrade,
                    requester: p,
                    acks_left: others.len() as u32,
                },
            );
            for s in others {
                fab.send(now, self.id, NodeId::Core(s), Message::Inv { line });
            }
        }
    }

    fn writeback(&mut self, src: NodeId, line: LineAddr, keep_shared: bool) {
        let p = Self::core_index(src);
        self.stats.writebacks += 1;
        self.l2.insert(line, LineState::Shared, |_| false);
        if let Some(e) = self.store.get_mut(line) {
            if e.dirty && e.has_sharer(p) {
                e.dirty = false;
                if !keep_shared {
                    e.remove_sharer(p);
                }
            }
        }
        // Entries with an in-flight transaction must survive even if the
        // writeback made them idle (the transaction finisher needs them).
        if !self.pending.contains_key(&line) {
            self.store.drop_if_idle(line);
        }
    }

    fn inv_ack(
        &mut self,
        now: Cycle,
        src: NodeId,
        line: LineAddr,
        dirty: bool,
        fab: &mut Fabric,
        values: &ValueStore,
    ) {
        let p = Self::core_index(src);
        if dirty {
            self.l2.insert(line, LineState::Shared, |_| false);
        }
        if let Some(e) = self.store.get_mut(line) {
            let was_owner = e.dirty && e.has_sharer(p);
            e.remove_sharer(p);
            if was_owner {
                // The (former) owner invalidated its copy — with the data
                // written back above if it was modified.
                e.dirty = false;
            }
        }
        let Some(tx) = self.pending.get_mut(&line) else {
            return; // displacement ack or stale: sharing state updated above
        };
        tx.acks_left -= 1;
        if tx.acks_left > 0 {
            return;
        }
        let tx = self.pending.remove(&line).expect("checked above");
        let req = NodeId::Core(tx.requester);
        let e = self
            .store
            .entry_mut(line)
            .expect("no displacement possible: entry exists")
            .0;
        e.sharers = 1 << tx.requester;
        e.dirty = true;
        match tx.kind {
            TxKind::Upgrade => fab.send(now, self.id, req, Message::UpgradeAck { line }),
            TxKind::Excl => {
                let extra = self.data_latency(line);
                let data = values.read_line(line);
                fab.send_delayed(
                    now,
                    extra,
                    self.id,
                    req,
                    Message::Data {
                        line,
                        exclusive: true,
                        data,
                    },
                );
            }
            TxKind::Shared => unreachable!("shared reads never collect inv acks"),
        }
    }

    fn fetch_resp(
        &mut self,
        now: Cycle,
        line: LineAddr,
        dirty: bool,
        had_line: bool,
        fab: &mut Fabric,
        values: &ValueStore,
    ) {
        if dirty {
            self.l2.insert(line, LineState::Shared, |_| false);
        }
        let Some(tx) = self.pending.remove(&line) else {
            return; // stale (e.g. raced with a writeback)
        };
        let req = NodeId::Core(tx.requester);
        let e = self
            .store
            .entry_mut(line)
            .expect("allocation always succeeds without a veto")
            .0;
        // The old owner keeps a shared copy only if it actually had the
        // line and the requester wanted a shared copy.
        let owner = e.sharer_list().first().copied();
        match tx.kind {
            TxKind::Shared => {
                e.dirty = false;
                if !had_line {
                    if let Some(o) = owner {
                        e.remove_sharer(o);
                    }
                }
                e.add_sharer(tx.requester);
                let extra = if had_line {
                    self.cfg.l2_extra
                } else {
                    self.cfg.mem_extra
                };
                if had_line {
                    self.l2.insert(line, LineState::Shared, |_| false);
                }
                let data = values.read_line(line);
                fab.send_delayed(
                    now,
                    extra,
                    self.id,
                    req,
                    Message::Data {
                        line,
                        exclusive: false,
                        data,
                    },
                );
            }
            TxKind::Excl => {
                e.sharers = 1 << tx.requester;
                e.dirty = true;
                let extra = if had_line {
                    self.cfg.l2_extra
                } else {
                    self.cfg.mem_extra
                };
                let data = values.read_line(line);
                fab.send_delayed(
                    now,
                    extra,
                    self.id,
                    req,
                    Message::Data {
                        line,
                        exclusive: true,
                        data,
                    },
                );
            }
            TxKind::Upgrade => unreachable!("upgrades never fetch"),
        }
    }

    fn displace_entry(&mut self, now: Cycle, d: Displaced, fab: &mut Fabric) {
        if d.entry.is_idle() {
            return;
        }
        self.stats.dir_displacements += 1;
        self.trace
            .emit(now, || bulksc_trace::Event::DirDisplacement {
                dir: self.dir_index(),
                line: d.line.0,
            });
        // §4.3.3: build the displaced address into a signature and send it
        // to all sharer caches for bulk disambiguation; copies are
        // invalidated (cores answer InvAck, with data if dirty).
        let mut sig = TrackedSig::new(&self.cfg.sig, self.cfg.sig_mode);
        sig.insert(d.line);
        for s in d.entry.sharer_list() {
            fab.send(
                now,
                self.id,
                NodeId::Core(s),
                Message::DisplaceSig {
                    line: d.line,
                    sig: Box::new(sig.clone()),
                },
            );
        }
    }

    fn wsig(&mut self, now: Cycle, src: NodeId, chunk: ChunkTag, w: TrackedSig, fab: &mut Fabric) {
        self.stats.wsigs_received += 1;
        let r = expand_commit(&mut self.store, chunk.core, &w);
        self.stats.lookups += r.lookups;
        self.stats.unnecessary_lookups += r.unnecessary_lookups;
        self.stats.updates += r.updates;
        self.stats.unnecessary_updates += r.unnecessary_updates;
        self.stats.inv_targets += r.invalidation_list.len() as u64;
        metrics::inc(metrics::Counter::DirWsigsReceived);
        metrics::add(metrics::Counter::DirLookups, r.lookups);
        metrics::add(
            metrics::Counter::DirLookupsUnnecessary,
            r.unnecessary_lookups,
        );
        metrics::add(metrics::Counter::DirUpdates, r.updates);
        metrics::add(
            metrics::Counter::DirUpdatesUnnecessary,
            r.unnecessary_updates,
        );
        metrics::add(
            metrics::Counter::DirInvTargets,
            r.invalidation_list.len() as u64,
        );
        self.trace.emit(now, || bulksc_trace::Event::SigExpand {
            dir: self.dir_index(),
            core: chunk.core,
            seq: chunk.seq,
            lookups: r.lookups,
            updates: r.updates,
            inv_targets: r.invalidation_list.len() as u64,
        });
        if r.invalidation_list.is_empty() {
            // Nothing to invalidate: the new values are visible immediately.
            fab.send(now, self.id, src, Message::DirDone { chunk });
            return;
        }
        self.commits.insert(
            chunk,
            CommitTx {
                arbiter: src,
                acks_left: r.invalidation_list.len() as u32,
                w: w.clone(),
            },
        );
        for c in r.invalidation_list {
            fab.send(
                now,
                self.id,
                NodeId::Core(c),
                Message::WSigInv {
                    chunk,
                    w: Box::new(w.clone()),
                    needs_ack: true,
                },
            );
        }
    }

    fn wsig_ack(&mut self, now: Cycle, chunk: ChunkTag, fab: &mut Fabric) {
        let Some(tx) = self.commits.get_mut(&chunk) else {
            return;
        };
        tx.acks_left -= 1;
        if tx.acks_left == 0 {
            let tx = self.commits.remove(&chunk).expect("checked above");
            fab.send(now, self.id, tx.arbiter, Message::DirDone { chunk });
        }
    }

    fn priv_sig(&mut self, now: Cycle, chunk: ChunkTag, w: TrackedSig, fab: &mut Fabric) {
        self.stats.priv_sigs += 1;
        // Same Table 1 expansion; keeps migrated private data coherent
        // (§5.1). No access disabling and no completion tracking: private
        // data is not subject to consistency arbitration.
        let r = expand_commit(&mut self.store, chunk.core, &w);
        self.trace.emit(now, || bulksc_trace::Event::SigExpand {
            dir: self.dir_index(),
            core: chunk.core,
            seq: chunk.seq,
            lookups: r.lookups,
            updates: r.updates,
            inv_targets: r.invalidation_list.len() as u64,
        });
        for c in r.invalidation_list {
            fab.send(
                now,
                self.id,
                NodeId::Core(c),
                Message::WSigInv {
                    chunk,
                    w: Box::new(w.clone()),
                    needs_ack: false,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulksc_net::FabricConfig;

    fn setup() -> (Directory, Fabric) {
        let cfg = DirConfig {
            organization: DirOrganization::FullMap { sets: 64 },
            mem_extra: 100,
            l2_extra: 2,
            ..DirConfig::default()
        };
        (
            Directory::new(NodeId::Dir(0), cfg),
            Fabric::new(FabricConfig { hop_latency: 1 }),
        )
    }

    fn env(src: NodeId, msg: Message) -> Envelope {
        Envelope {
            src,
            dst: NodeId::Dir(0),
            msg,
        }
    }

    fn handle(d: &mut Directory, now: Cycle, e: Envelope, fab: &mut Fabric) {
        let values = ValueStore::new();
        d.handle(now, e, fab, &values);
    }

    fn drain(fab: &mut Fabric) -> Vec<Envelope> {
        fab.deliver_due(u64::MAX / 2)
    }

    /// Make `cores` sharers of `line` with the dirty bit clear: the first
    /// core reads (becoming the E-state owner), each later core's read
    /// triggers the owner fetch, which we answer clean.
    fn share(d: &mut Directory, fab: &mut Fabric, cores: &[u32], line: LineAddr) {
        handle(
            d,
            0,
            env(NodeId::Core(cores[0]), Message::ReadShared { line }),
            fab,
        );
        drain(fab);
        for &c in &cores[1..] {
            handle(
                d,
                0,
                env(NodeId::Core(c), Message::ReadShared { line }),
                fab,
            );
            let out = drain(fab);
            if let Some(f) = out.iter().find(|e| matches!(e.msg, Message::Fetch { .. })) {
                let owner = f.dst;
                handle(
                    d,
                    0,
                    env(
                        owner,
                        Message::FetchResp {
                            line,
                            dirty: false,
                            had_line: true,
                        },
                    ),
                    fab,
                );
                drain(fab);
            }
        }
    }

    #[test]
    fn first_read_is_exclusive_and_pays_memory() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        assert_eq!(fab.next_delivery(), Some(101)); // mem_extra + hop
        let out = drain(&mut fab);
        assert_eq!(out.len(), 1);
        match &out[0].msg {
            Message::Data {
                line, exclusive, ..
            } => {
                assert_eq!(*line, LineAddr(4));
                assert!(*exclusive, "first reader gets E state");
            }
            m => panic!("unexpected {m:?}"),
        }
        assert!(d.store().get(LineAddr(4)).unwrap().has_sharer(1));
        assert_eq!(d.stats().l2_misses, 1);
    }

    #[test]
    fn second_read_downgrades_owner_and_shares() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        // First reader became the E-state owner.
        assert!(d.store().get(LineAddr(4)).unwrap().dirty);
        handle(
            &mut d,
            200,
            env(NodeId::Core(2), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(
            out[0].msg,
            Message::Fetch {
                for_excl: false,
                ..
            }
        ));
        assert_eq!(out[0].dst, NodeId::Core(1));
        handle(
            &mut d,
            210,
            env(
                NodeId::Core(1),
                Message::FetchResp {
                    line: LineAddr(4),
                    dirty: false,
                    had_line: true,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        match &out[0].msg {
            Message::Data { exclusive, .. } => assert!(!*exclusive),
            m => panic!("unexpected {m:?}"),
        }
        let e = d.store().get(LineAddr(4)).unwrap();
        assert!(!e.dirty, "downgraded");
        assert!(e.has_sharer(1) && e.has_sharer(2));
    }

    #[test]
    fn read_excl_invalidates_sharers_then_grants() {
        let (mut d, mut fab) = setup();
        share(&mut d, &mut fab, &[1, 2], LineAddr(4));
        handle(
            &mut d,
            10,
            env(NodeId::Core(3), Message::ReadExcl { line: LineAddr(4) }),
            &mut fab,
        );
        let invs = drain(&mut fab);
        let inv_dsts: Vec<NodeId> = invs
            .iter()
            .filter(|e| matches!(e.msg, Message::Inv { .. }))
            .map(|e| e.dst)
            .collect();
        assert_eq!(inv_dsts, vec![NodeId::Core(1), NodeId::Core(2)]);
        // Acks arrive; data goes to requester with M rights.
        handle(
            &mut d,
            20,
            env(
                NodeId::Core(1),
                Message::InvAck {
                    line: LineAddr(4),
                    dirty: false,
                },
            ),
            &mut fab,
        );
        assert!(drain(&mut fab).is_empty(), "still one ack outstanding");
        handle(
            &mut d,
            21,
            env(
                NodeId::Core(2),
                Message::InvAck {
                    line: LineAddr(4),
                    dirty: false,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(
            out[0].msg,
            Message::Data {
                exclusive: true,
                ..
            }
        ));
        let e = d.store().get(LineAddr(4)).unwrap();
        assert!(e.dirty);
        assert_eq!(e.sharer_list(), vec![3]);
    }

    #[test]
    fn read_to_dirty_line_fetches_from_owner() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadExcl { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        handle(
            &mut d,
            10,
            env(NodeId::Core(2), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(
            out[0].msg,
            Message::Fetch {
                for_excl: false,
                ..
            }
        ));
        assert_eq!(out[0].dst, NodeId::Core(1));
        handle(
            &mut d,
            20,
            env(
                NodeId::Core(1),
                Message::FetchResp {
                    line: LineAddr(4),
                    dirty: true,
                    had_line: true,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(
            out[0].msg,
            Message::Data {
                exclusive: false,
                ..
            }
        ));
        let e = d.store().get(LineAddr(4)).unwrap();
        assert!(!e.dirty, "downgraded after sharing");
        assert!(e.has_sharer(1) && e.has_sharer(2));
    }

    #[test]
    fn false_owner_fetch_served_from_memory() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadExcl { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        handle(
            &mut d,
            10,
            env(NodeId::Core(2), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        // Owner silently lost the line (§4.3.1's graceful case).
        handle(
            &mut d,
            20,
            env(
                NodeId::Core(1),
                Message::FetchResp {
                    line: LineAddr(4),
                    dirty: false,
                    had_line: false,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(
            out[0].msg,
            Message::Data {
                exclusive: false,
                ..
            }
        ));
        let e = d.store().get(LineAddr(4)).unwrap();
        assert!(!e.has_sharer(1), "false owner dropped");
        assert!(e.has_sharer(2));
    }

    #[test]
    fn busy_line_nacks() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadExcl { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        handle(
            &mut d,
            5,
            env(NodeId::Core(2), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab); // fetch to owner in flight
        handle(
            &mut d,
            6,
            env(NodeId::Core(3), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::Nack { .. }));
        assert_eq!(d.stats().nacks, 1);
    }

    #[test]
    fn upgrade_with_no_other_sharers_is_immediate() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        // Clear the E-owner bit as a writeback does, leaving a plain
        // shared copy at core 1.
        handle(
            &mut d,
            5,
            env(
                NodeId::Core(1),
                Message::Writeback {
                    line: LineAddr(4),
                    keep_shared: true,
                },
            ),
            &mut fab,
        );
        handle(
            &mut d,
            10,
            env(NodeId::Core(1), Message::Upgrade { line: LineAddr(4) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::UpgradeAck { .. }));
        assert!(d.store().get(LineAddr(4)).unwrap().dirty);
    }

    #[test]
    fn upgrade_when_not_sharer_nacks() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::Upgrade { line: LineAddr(4) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::Nack { .. }));
    }

    #[test]
    fn writeback_clears_dirty_and_keeps_sharer_when_asked() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadExcl { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        handle(
            &mut d,
            10,
            env(
                NodeId::Core(1),
                Message::Writeback {
                    line: LineAddr(4),
                    keep_shared: true,
                },
            ),
            &mut fab,
        );
        let e = d.store().get(LineAddr(4)).unwrap();
        assert!(!e.dirty);
        assert!(e.has_sharer(1));
        // Eviction variant drops the sharer and the idle entry.
        handle(
            &mut d,
            20,
            env(
                NodeId::Core(1),
                Message::Writeback {
                    line: LineAddr(4),
                    keep_shared: false,
                },
            ),
            &mut fab,
        );
        // Not dirty anymore so the second writeback is stale; force dirty
        // again to exercise the eviction path.
        handle(
            &mut d,
            30,
            env(NodeId::Core(1), Message::ReadExcl { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        handle(
            &mut d,
            40,
            env(
                NodeId::Core(1),
                Message::Writeback {
                    line: LineAddr(4),
                    keep_shared: false,
                },
            ),
            &mut fab,
        );
        assert!(d.store().get(LineAddr(4)).is_none(), "idle entry dropped");
    }

    fn wsig_of(lines: &[u64]) -> Box<TrackedSig> {
        let mut s = TrackedSig::new(&SignatureConfig::default(), SigMode::Bloom);
        for &l in lines {
            s.insert(LineAddr(l));
        }
        Box::new(s)
    }

    #[test]
    fn commit_with_no_sharers_is_done_immediately() {
        let (mut d, mut fab) = setup();
        let chunk = ChunkTag { core: 0, seq: 1 };
        handle(
            &mut d,
            0,
            env(
                NodeId::Arbiter(0),
                Message::WSigToDir {
                    chunk,
                    w: wsig_of(&[4]),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::DirDone { .. }));
        assert_eq!(out[0].dst, NodeId::Arbiter(0));
        assert_eq!(d.committing_count(), 0);
    }

    #[test]
    fn commit_invalidates_sharers_and_disables_reads_until_acked() {
        let (mut d, mut fab) = setup();
        // Cores 0 (committer) and 1 both read line 4.
        share(&mut d, &mut fab, &[0, 1], LineAddr(4));
        let chunk = ChunkTag { core: 0, seq: 1 };
        handle(
            &mut d,
            10,
            env(
                NodeId::Arbiter(0),
                Message::WSigToDir {
                    chunk,
                    w: wsig_of(&[4]),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        let wsiginv: Vec<&Envelope> = out
            .iter()
            .filter(|e| {
                matches!(
                    e.msg,
                    Message::WSigInv {
                        needs_ack: true,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(wsiginv.len(), 1);
        assert_eq!(wsiginv[0].dst, NodeId::Core(1));
        assert_eq!(d.committing_count(), 1);

        // While committing, reads to line 4 bounce (§4.3.2).
        handle(
            &mut d,
            15,
            env(NodeId::Core(2), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::Nack { .. }));

        // Ack re-enables and completes.
        handle(
            &mut d,
            20,
            env(NodeId::Core(1), Message::WSigInvAck { chunk }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::DirDone { .. }));
        assert_eq!(d.committing_count(), 0);

        // Directory state: committer owns the line.
        let e = d.store().get(LineAddr(4)).unwrap();
        assert!(e.dirty);
        assert_eq!(e.sharer_list(), vec![0]);

        // And reads now succeed again.
        handle(
            &mut d,
            30,
            env(NodeId::Core(2), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(
            matches!(out[0].msg, Message::Fetch { .. }),
            "fetched from new owner"
        );
    }

    #[test]
    fn priv_sig_invalidates_stale_copies_without_disabling() {
        let (mut d, mut fab) = setup();
        share(&mut d, &mut fab, &[0, 1], LineAddr(4));
        let chunk = ChunkTag { core: 0, seq: 1 };
        handle(
            &mut d,
            10,
            env(
                NodeId::Core(0),
                Message::PrivSigToDir {
                    chunk,
                    w: wsig_of(&[4]),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(
            out[0].msg,
            Message::WSigInv {
                needs_ack: false,
                ..
            }
        ));
        assert_eq!(
            d.committing_count(),
            0,
            "no access disabling for private data"
        );
        assert_eq!(d.stats().priv_sigs, 1);
    }

    #[test]
    fn dir_cache_displacement_notifies_sharers() {
        let cfg = DirConfig {
            organization: DirOrganization::Cache { sets: 1, assoc: 1 },
            ..DirConfig::default()
        };
        let mut d = Directory::new(NodeId::Dir(0), cfg);
        let mut fab = Fabric::new(FabricConfig { hop_latency: 1 });
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        drain(&mut fab);
        handle(
            &mut d,
            10,
            env(NodeId::Core(2), Message::ReadShared { line: LineAddr(8) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        let disp: Vec<&Envelope> = out
            .iter()
            .filter(|e| matches!(e.msg, Message::DisplaceSig { .. }))
            .collect();
        assert_eq!(disp.len(), 1);
        assert_eq!(disp[0].dst, NodeId::Core(1));
        match &disp[0].msg {
            Message::DisplaceSig { line, sig } => {
                assert_eq!(*line, LineAddr(4));
                assert!(sig.contains(LineAddr(4)));
            }
            _ => unreachable!(),
        }
        assert_eq!(d.stats().dir_displacements, 1);
    }

    #[test]
    fn stats_accumulate() {
        let (mut d, mut fab) = setup();
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadShared { line: LineAddr(4) }),
            &mut fab,
        );
        handle(
            &mut d,
            0,
            env(NodeId::Core(1), Message::ReadExcl { line: LineAddr(8) }),
            &mut fab,
        );
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().read_excls, 1);
    }
}
