//! Set-associative cache tag stores.
//!
//! A [`SetAssocCache`] models the tag/state array of a cache. Two BulkSC
//! properties shape the API:
//!
//! * **Tags are consistency-oblivious** (paper §4.1.1): nothing in the line
//!   state says "speculative". The BDM owns that knowledge and expresses it
//!   through a *displacement veto* — [`SetAssocCache::insert`] takes a
//!   predicate naming the lines that must not be displaced (the
//!   speculatively-written lines recorded in W signatures). If a set is full
//!   of vetoed lines, the insert reports [`InsertOutcome::SetOverflow`],
//!   which is exactly the "chunk finishes when its data is about to overflow
//!   a cache set" boundary of §4.1.2.
//! * **Values live elsewhere.** The simulator keeps data values in a global
//!   value store and per-chunk store buffers; the cache tracks only
//!   presence and coherence state, which is all the timing model needs.

use bulksc_sig::LineAddr;

/// Coherence state of a cached line (MESI, with M spelled `Dirty`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Valid, read-only, possibly shared with other caches.
    Shared,
    /// Valid, exclusive to this cache, clean.
    Exclusive,
    /// Valid, exclusive to this cache, modified (dirty non-speculative in
    /// the paper's vocabulary — speculative modification is invisible to
    /// the cache).
    Dirty,
}

impl LineState {
    /// True for states that grant write permission in the baseline MESI
    /// protocol.
    pub fn is_exclusive(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Dirty)
    }
}

/// Geometry of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: u32,
}

impl CacheConfig {
    /// The 32 KB 4-way private D-L1 of Table 2.
    pub fn l1_default() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 4,
        }
    }

    /// The 8 MB 8-way shared L2 of Table 2.
    pub fn l2_default() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            assoc: 8,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    pub fn num_sets(&self) -> u32 {
        let lines = self.size_bytes / bulksc_sig::LINE_BYTES;
        let sets = lines / self.assoc as u64;
        assert!(
            sets > 0 && (sets as u32).is_power_of_two(),
            "cache must have a power-of-two number of sets, got {sets}"
        );
        sets as u32
    }
}

#[derive(Clone, Debug)]
struct Way {
    line: LineAddr,
    state: LineState,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

/// The result of inserting a line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Inserted into an empty or freed way; nothing displaced.
    Placed,
    /// Inserted; the named victim (with its state) was displaced.
    Evicted {
        /// The displaced line.
        line: LineAddr,
        /// Its state at displacement (a `Dirty` victim needs a writeback).
        state: LineState,
    },
    /// Every way in the set is vetoed (speculatively written): the line
    /// cannot be inserted. Under BulkSC this ends the current chunk.
    SetOverflow,
}

/// A set-associative tag/state store with LRU replacement and displacement
/// vetoes.
///
/// # Example
///
/// ```
/// use bulksc_mem::{CacheConfig, InsertOutcome, LineState, SetAssocCache};
/// use bulksc_sig::LineAddr;
///
/// let mut c = SetAssocCache::new(CacheConfig { size_bytes: 1024, assoc: 2 });
/// assert_eq!(c.insert(LineAddr(1), LineState::Shared, |_| false), InsertOutcome::Placed);
/// assert_eq!(c.state(LineAddr(1)), Some(LineState::Shared));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    num_sets: u32,
    sets: Vec<Vec<Way>>,
    tick: u64,
}

impl SetAssocCache {
    /// An empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        SetAssocCache {
            cfg,
            num_sets,
            sets: vec![Vec::new(); num_sets as usize],
            tick: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Number of sets (needed by signature δ-expansion).
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 % self.num_sets as u64) as usize
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The state of `line`, if present.
    pub fn state(&self, line: LineAddr) -> Option<LineState> {
        self.sets[self.set_index(line)]
            .iter()
            .find(|w| w.line == line)
            .map(|w| w.state)
    }

    /// True if the line is present in any state.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.state(line).is_some()
    }

    /// Mark `line` most recently used. Returns true if present.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let stamp = self.bump();
        let set = self.set_index(line);
        match self.sets[set].iter_mut().find(|w| w.line == line) {
            Some(w) => {
                w.stamp = stamp;
                true
            }
            None => false,
        }
    }

    /// Change the state of a present line. Returns false if absent.
    pub fn set_state(&mut self, line: LineAddr, state: LineState) -> bool {
        let set = self.set_index(line);
        match self.sets[set].iter_mut().find(|w| w.line == line) {
            Some(w) => {
                w.state = state;
                true
            }
            None => false,
        }
    }

    /// Remove `line`, returning its state if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineState> {
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        let pos = ways.iter().position(|w| w.line == line)?;
        Some(ways.swap_remove(pos).state)
    }

    /// Insert `line` with `state`. `veto(addr)` returns true for lines that
    /// must not be displaced (the BDM's speculatively-written lines).
    ///
    /// If the line is already present its state and LRU stamp are updated
    /// and the outcome is [`InsertOutcome::Placed`]. Otherwise the LRU
    /// non-vetoed way of the set is the victim; if every way is vetoed the
    /// insert fails with [`InsertOutcome::SetOverflow`].
    pub fn insert(
        &mut self,
        line: LineAddr,
        state: LineState,
        veto: impl Fn(LineAddr) -> bool,
    ) -> InsertOutcome {
        let stamp = self.bump();
        let assoc = self.cfg.assoc as usize;
        let set = self.set_index(line);
        let ways = &mut self.sets[set];

        if let Some(w) = ways.iter_mut().find(|w| w.line == line) {
            w.state = state;
            w.stamp = stamp;
            return InsertOutcome::Placed;
        }
        if ways.len() < assoc {
            ways.push(Way { line, state, stamp });
            return InsertOutcome::Placed;
        }
        // Victim: least recently used way that is not vetoed.
        let victim = ways
            .iter()
            .enumerate()
            .filter(|(_, w)| !veto(w.line))
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = std::mem::replace(&mut ways[i], Way { line, state, stamp });
                InsertOutcome::Evicted {
                    line: old.line,
                    state: old.state,
                }
            }
            None => InsertOutcome::SetOverflow,
        }
    }

    /// Would inserting `line` displace a vetoed-only set? True exactly when
    /// [`SetAssocCache::insert`] would return `SetOverflow`.
    pub fn would_overflow(&self, line: LineAddr, veto: impl Fn(LineAddr) -> bool) -> bool {
        let set = &self.sets[self.set_index(line)];
        set.len() == self.cfg.assoc as usize
            && !set.iter().any(|w| w.line == line)
            && set.iter().all(|w| veto(w.line))
    }

    /// The valid lines in set `set_index` (for δ-driven bulk operations).
    ///
    /// # Panics
    ///
    /// Panics if `set_index >= num_sets()`.
    pub fn lines_in_set(&self, set_index: u32) -> Vec<LineAddr> {
        self.sets[set_index as usize]
            .iter()
            .map(|w| w.line)
            .collect()
    }

    /// All valid lines (test/diagnostic use).
    pub fn lines(&self) -> Vec<LineAddr> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|w| w.line))
            .collect()
    }

    /// Number of valid lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1_default().num_sets(), 256);
        assert_eq!(CacheConfig::l2_default().num_sets(), 32 * 1024);
        assert_eq!(tiny().num_sets(), 2);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 96,
            assoc: 1,
        }
        .num_sets();
    }

    #[test]
    fn insert_lookup_invalidate() {
        let mut c = tiny();
        assert_eq!(
            c.insert(LineAddr(0), LineState::Shared, |_| false),
            InsertOutcome::Placed
        );
        assert_eq!(c.state(LineAddr(0)), Some(LineState::Shared));
        assert!(c.contains(LineAddr(0)));
        assert_eq!(c.invalidate(LineAddr(0)), Some(LineState::Shared));
        assert_eq!(c.invalidate(LineAddr(0)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_state_in_place() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Shared, |_| false);
        assert_eq!(
            c.insert(LineAddr(0), LineState::Dirty, |_| false),
            InsertOutcome::Placed
        );
        assert_eq!(c.state(LineAddr(0)), Some(LineState::Dirty));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_picks_oldest() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0.
        c.insert(LineAddr(0), LineState::Shared, |_| false);
        c.insert(LineAddr(2), LineState::Shared, |_| false);
        c.touch(LineAddr(0)); // 2 is now LRU
        match c.insert(LineAddr(4), LineState::Shared, |_| false) {
            InsertOutcome::Evicted { line, .. } => assert_eq!(line, LineAddr(2)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(LineAddr(0)) && c.contains(LineAddr(4)));
    }

    #[test]
    fn veto_redirects_eviction() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Shared, |_| false);
        c.insert(LineAddr(2), LineState::Shared, |_| false);
        // LRU is 0, but it is vetoed: 2 must be displaced instead.
        match c.insert(LineAddr(4), LineState::Shared, |l| l == LineAddr(0)) {
            InsertOutcome::Evicted { line, .. } => assert_eq!(line, LineAddr(2)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn full_veto_means_overflow() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Dirty, |_| false);
        c.insert(LineAddr(2), LineState::Dirty, |_| false);
        assert!(c.would_overflow(LineAddr(4), |_| true));
        assert_eq!(
            c.insert(LineAddr(4), LineState::Shared, |_| true),
            InsertOutcome::SetOverflow
        );
        // The set is untouched by the failed insert.
        assert!(c.contains(LineAddr(0)) && c.contains(LineAddr(2)));
        assert!(!c.contains(LineAddr(4)));
    }

    #[test]
    fn would_overflow_false_when_line_present() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Dirty, |_| false);
        c.insert(LineAddr(2), LineState::Dirty, |_| false);
        assert!(!c.would_overflow(LineAddr(0), |_| true));
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Dirty, |_| false);
        c.insert(LineAddr(2), LineState::Shared, |_| false);
        c.touch(LineAddr(2));
        match c.insert(LineAddr(4), LineState::Shared, |_| false) {
            InsertOutcome::Evicted { line, state } => {
                assert_eq!(line, LineAddr(0));
                assert_eq!(state, LineState::Dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn lines_in_set_reports_members() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Shared, |_| false);
        c.insert(LineAddr(1), LineState::Shared, |_| false);
        c.insert(LineAddr(2), LineState::Shared, |_| false);
        let mut set0 = c.lines_in_set(0);
        set0.sort();
        assert_eq!(set0, vec![LineAddr(0), LineAddr(2)]);
        assert_eq!(c.lines_in_set(1), vec![LineAddr(1)]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn exclusive_states() {
        assert!(LineState::Dirty.is_exclusive());
        assert!(LineState::Exclusive.is_exclusive());
        assert!(!LineState::Shared.is_exclusive());
    }

    #[test]
    fn touch_and_set_state_miss_on_absent_lines() {
        let mut c = tiny();
        assert!(!c.touch(LineAddr(0)));
        assert!(!c.set_state(LineAddr(0), LineState::Dirty));
        c.insert(LineAddr(0), LineState::Shared, |_| false);
        assert!(c.touch(LineAddr(0)));
        assert!(c.set_state(LineAddr(0), LineState::Exclusive));
        assert_eq!(c.state(LineAddr(0)), Some(LineState::Exclusive));
        // Same set, different line: still a miss.
        assert!(!c.touch(LineAddr(2)));
        assert!(!c.set_state(LineAddr(2), LineState::Dirty));
    }

    #[test]
    fn reinsert_into_a_full_set_displaces_nothing() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Shared, |_| false);
        c.insert(LineAddr(2), LineState::Shared, |_| false);
        // Set 0 is full; re-inserting a resident line must hit in place
        // even when every way (including its own) is vetoed.
        assert_eq!(
            c.insert(LineAddr(0), LineState::Dirty, |_| true),
            InsertOutcome::Placed
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.state(LineAddr(0)), Some(LineState::Dirty));
    }

    #[test]
    fn invalidate_frees_the_way_for_the_next_insert() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Dirty, |_| false);
        c.insert(LineAddr(2), LineState::Shared, |_| false);
        assert_eq!(c.invalidate(LineAddr(0)), Some(LineState::Dirty));
        // The freed way absorbs the next insert without a displacement.
        assert_eq!(
            c.insert(LineAddr(4), LineState::Shared, |_| false),
            InsertOutcome::Placed
        );
        assert!(c.contains(LineAddr(2)) && c.contains(LineAddr(4)));
    }

    #[test]
    fn touch_refreshes_lru_order() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Shared, |_| false);
        c.insert(LineAddr(2), LineState::Shared, |_| false);
        // Without the touch, 0 would be the LRU victim.
        c.touch(LineAddr(0));
        c.touch(LineAddr(2));
        c.touch(LineAddr(0));
        match c.insert(LineAddr(4), LineState::Shared, |_| false) {
            InsertOutcome::Evicted { line, .. } => assert_eq!(line, LineAddr(2)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn veto_picks_oldest_among_the_unvetoed() {
        // 1 set x 4 ways: victim must be the LRU of the non-vetoed subset,
        // not the global LRU and not an arbitrary unvetoed way.
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 128,
            assoc: 4,
        });
        for l in [0u64, 1, 2, 3] {
            c.insert(LineAddr(l), LineState::Shared, |_| false);
        }
        // Age order now 0 < 1 < 2 < 3; veto the two globally oldest.
        let veto = |l: LineAddr| l == LineAddr(0) || l == LineAddr(1);
        match c.insert(LineAddr(4), LineState::Shared, veto) {
            InsertOutcome::Evicted { line, .. } => assert_eq!(line, LineAddr(2)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(LineAddr(0)) && c.contains(LineAddr(1)));
    }

    #[test]
    fn would_overflow_needs_a_full_set() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Dirty, |_| false);
        // One free way left: a universal veto still cannot overflow.
        assert!(!c.would_overflow(LineAddr(2), |_| true));
        assert_eq!(
            c.insert(LineAddr(2), LineState::Shared, |_| true),
            InsertOutcome::Placed
        );
        // Now the set is full of vetoed lines: overflow, and the
        // predicate agrees with the insert outcome.
        assert!(c.would_overflow(LineAddr(4), |_| true));
        assert_eq!(
            c.insert(LineAddr(4), LineState::Shared, |_| true),
            InsertOutcome::SetOverflow
        );
    }

    #[test]
    fn failed_insert_leaves_lru_order_intact() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Dirty, |_| false);
        c.insert(LineAddr(2), LineState::Dirty, |_| false);
        // A SetOverflow must not disturb the set: lifting the veto
        // afterwards evicts the line that was LRU all along.
        assert_eq!(
            c.insert(LineAddr(4), LineState::Shared, |_| true),
            InsertOutcome::SetOverflow
        );
        match c.insert(LineAddr(4), LineState::Shared, |_| false) {
            InsertOutcome::Evicted { line, state } => {
                assert_eq!(line, LineAddr(0));
                assert_eq!(state, LineState::Dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }
}
