//! The directory's entry store.
//!
//! The paper prefers directory *caches* over full-mapped directories
//! because they bound the number of signature-expansion false positives by
//! construction (§4.3.3). [`DirStore`] models both with one structure: a
//! set-indexed array of entries with either bounded associativity (a
//! directory cache, entries can be displaced) or unbounded associativity (a
//! full-map directory that never displaces).

use bulksc_sig::LineAddr;

/// One directory entry: the full bit-vector sharing state of a line
//  (Dash-style, as cited by the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// The Dirty bit: exactly one sharer owns the line with write
    /// permission.
    pub dirty: bool,
    /// Bit-vector of cores holding the line.
    pub sharers: u64,
}

impl DirEntry {
    /// An entry with no sharers.
    pub fn empty() -> Self {
        DirEntry {
            dirty: false,
            sharers: 0,
        }
    }

    /// True if core `c` is recorded as holding the line.
    pub fn has_sharer(&self, c: u32) -> bool {
        self.sharers & (1 << c) != 0
    }

    /// Record core `c` as a sharer.
    pub fn add_sharer(&mut self, c: u32) {
        self.sharers |= 1 << c;
    }

    /// Remove core `c` from the sharers.
    pub fn remove_sharer(&mut self, c: u32) {
        self.sharers &= !(1 << c);
    }

    /// The sharers as core indices.
    pub fn sharer_list(&self) -> Vec<u32> {
        (0..64).filter(|&c| self.has_sharer(c)).collect()
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// True when the entry carries no information and can be dropped.
    pub fn is_idle(&self) -> bool {
        !self.dirty && self.sharers == 0
    }
}

/// Organization of the directory store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirOrganization {
    /// Full-map: entries are never displaced (associativity unbounded).
    FullMap {
        /// Buckets used for signature expansion (power of two). More
        /// buckets = fewer expansion false positives.
        sets: u32,
    },
    /// A directory cache with `sets × assoc` entries; LRU displacement.
    Cache {
        /// Number of sets (power of two).
        sets: u32,
        /// Ways per set.
        assoc: u32,
    },
}

impl DirOrganization {
    /// Number of sets used for indexing and signature expansion.
    pub fn sets(self) -> u32 {
        match self {
            DirOrganization::FullMap { sets } | DirOrganization::Cache { sets, .. } => sets,
        }
    }
}

#[derive(Clone, Debug)]
struct StoredEntry {
    line: LineAddr,
    entry: DirEntry,
    stamp: u64,
}

/// The set-indexed entry store.
///
/// # Example
///
/// ```
/// use bulksc_mem::{DirEntry, DirOrganization, DirStore};
/// use bulksc_sig::LineAddr;
///
/// let mut s = DirStore::new(DirOrganization::FullMap { sets: 256 });
/// let e = s.entry_mut(LineAddr(7)).expect("full map never displaces").0;
/// e.add_sharer(3);
/// assert!(s.get(LineAddr(7)).unwrap().has_sharer(3));
/// ```
#[derive(Clone, Debug)]
pub struct DirStore {
    org: DirOrganization,
    sets: Vec<Vec<StoredEntry>>,
    tick: u64,
}

/// A directory entry displaced to make room for a new one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Displaced {
    /// The line whose entry was displaced.
    pub line: LineAddr,
    /// Its sharing state at displacement.
    pub entry: DirEntry,
}

impl DirStore {
    /// An empty store.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two.
    pub fn new(org: DirOrganization) -> Self {
        assert!(
            org.sets().is_power_of_two(),
            "set count must be a power of two"
        );
        DirStore {
            org,
            sets: vec![Vec::new(); org.sets() as usize],
            tick: 0,
        }
    }

    /// The organization.
    pub fn organization(&self) -> DirOrganization {
        self.org
    }

    /// Number of sets (for δ expansion).
    pub fn num_sets(&self) -> u32 {
        self.org.sets()
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 % self.org.sets() as u64) as usize
    }

    /// Read the entry for `line`, if present.
    pub fn get(&self, line: LineAddr) -> Option<&DirEntry> {
        self.sets[self.set_index(line)]
            .iter()
            .find(|s| s.line == line)
            .map(|s| &s.entry)
    }

    /// Mutable access to an existing entry (no allocation).
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut DirEntry> {
        let set = self.set_index(line);
        self.sets[set]
            .iter_mut()
            .find(|s| s.line == line)
            .map(|s| &mut s.entry)
    }

    /// Get-or-allocate the entry for `line`, returning it together with any
    /// entry displaced to make room. Equivalent to
    /// [`DirStore::entry_mut_with_veto`] with no veto, so it never fails.
    pub fn entry_mut(&mut self, line: LineAddr) -> Option<(&mut DirEntry, Option<Displaced>)> {
        self.entry_mut_with_veto(line, |_| false)
    }

    /// Get-or-allocate the entry for `line`. `veto(addr)` names lines whose
    /// entries must not be displaced (e.g. lines with an in-flight
    /// transaction). Returns `None` if allocation would require displacing
    /// a vetoed entry — the caller should Nack the triggering request.
    pub fn entry_mut_with_veto(
        &mut self,
        line: LineAddr,
        veto: impl Fn(LineAddr) -> bool,
    ) -> Option<(&mut DirEntry, Option<Displaced>)> {
        self.tick += 1;
        let stamp = self.tick;
        let set = self.set_index(line);
        let max_ways = match self.org {
            DirOrganization::FullMap { .. } => usize::MAX,
            DirOrganization::Cache { assoc, .. } => assoc as usize,
        };

        if let Some(pos) = self.sets[set].iter().position(|s| s.line == line) {
            self.sets[set][pos].stamp = stamp;
            return Some((&mut self.sets[set][pos].entry, None));
        }

        let mut displaced = None;
        if self.sets[set].len() >= max_ways {
            let victim = self.sets[set]
                .iter()
                .enumerate()
                .filter(|(_, s)| !veto(s.line))
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)?;
            let old = self.sets[set].swap_remove(victim);
            displaced = Some(Displaced {
                line: old.line,
                entry: old.entry,
            });
        }
        self.sets[set].push(StoredEntry {
            line,
            entry: DirEntry::empty(),
            stamp,
        });
        let last = self.sets[set].len() - 1;
        Some((&mut self.sets[set][last].entry, displaced))
    }

    /// Drop the entry for `line` if it carries no information.
    pub fn drop_if_idle(&mut self, line: LineAddr) {
        let set = self.set_index(line);
        if let Some(pos) = self.sets[set]
            .iter()
            .position(|s| s.line == line && s.entry.is_idle())
        {
            self.sets[set].swap_remove(pos);
        }
    }

    /// The `(line, entry)` pairs stored in set `set_index`, for signature
    /// expansion.
    pub fn entries_in_set(&self, set_index: u32) -> impl Iterator<Item = (LineAddr, &DirEntry)> {
        self.sets[set_index as usize]
            .iter()
            .map(|s| (s.line, &s.entry))
    }

    /// Total entries stored.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_bit_vector_ops() {
        let mut e = DirEntry::empty();
        assert!(e.is_idle());
        e.add_sharer(0);
        e.add_sharer(5);
        assert!(e.has_sharer(5) && !e.has_sharer(1));
        assert_eq!(e.sharer_list(), vec![0, 5]);
        assert_eq!(e.sharer_count(), 2);
        e.remove_sharer(0);
        assert_eq!(e.sharer_list(), vec![5]);
        assert!(!e.is_idle());
    }

    #[test]
    fn full_map_never_displaces() {
        let mut s = DirStore::new(DirOrganization::FullMap { sets: 4 });
        for i in 0..100 {
            let (e, disp) = s.entry_mut(LineAddr(i)).unwrap();
            e.add_sharer(0);
            assert!(disp.is_none());
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn cache_mode_displaces_lru() {
        let mut s = DirStore::new(DirOrganization::Cache { sets: 1, assoc: 2 });
        s.entry_mut(LineAddr(1)).unwrap().0.add_sharer(1);
        s.entry_mut(LineAddr(2)).unwrap().0.add_sharer(2);
        // Touch 1 so 2 becomes LRU.
        let _ = s.entry_mut(LineAddr(1));
        let (_, disp) = s.entry_mut(LineAddr(3)).unwrap();
        let disp = disp.expect("set was full");
        assert_eq!(disp.line, LineAddr(2));
        assert!(disp.entry.has_sharer(2));
        assert!(s.get(LineAddr(2)).is_none());
        assert!(s.get(LineAddr(1)).is_some());
    }

    #[test]
    fn drop_if_idle_only_drops_idle() {
        let mut s = DirStore::new(DirOrganization::FullMap { sets: 4 });
        s.entry_mut(LineAddr(1)).unwrap().0.add_sharer(0);
        s.drop_if_idle(LineAddr(1));
        assert_eq!(s.len(), 1, "non-idle entry must stay");
        s.get_mut(LineAddr(1)).unwrap().remove_sharer(0);
        s.drop_if_idle(LineAddr(1));
        assert!(s.is_empty());
    }

    #[test]
    fn entries_in_set_partitions_by_index() {
        let mut s = DirStore::new(DirOrganization::FullMap { sets: 2 });
        for i in 0..6 {
            s.entry_mut(LineAddr(i)).unwrap().0.add_sharer(0);
        }
        let set0: Vec<u64> = s.entries_in_set(0).map(|(l, _)| l.0).collect();
        assert!(set0.iter().all(|l| l % 2 == 0));
        assert_eq!(set0.len(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_set_count() {
        DirStore::new(DirOrganization::FullMap { sets: 3 });
    }
}
