//! The global value store.
//!
//! The timing substrate (caches, directory) tracks *presence and state*;
//! actual data values live here, in one word-granular map that represents
//! the committed architectural memory state. Keeping values centralized is
//! a simulation shortcut that preserves outcomes as long as each model
//! applies stores at the instant they become globally visible:
//!
//! * baselines apply a store when it *performs* (ownership held, value
//!   exposed) — by MESI construction that is after all other copies are
//!   invalidated;
//! * BulkSC applies a chunk's stores en bloc when the arbiter grants the
//!   commit — chunks that read overlapping stale data are squashed by the
//!   W-signature broadcast before they can commit.

use std::collections::HashMap;

use bulksc_sig::{Addr, LineAddr, LineData, LINE_WORDS};

/// Committed memory values; absent words read as zero.
///
/// # Example
///
/// ```
/// use bulksc_mem::ValueStore;
/// use bulksc_sig::{Addr, LineAddr, LineData, LINE_WORDS};
/// let mut v = ValueStore::new();
/// assert_eq!(v.read(Addr(8)), 0);
/// v.write(Addr(8), 7);
/// assert_eq!(v.read(Addr(8)), 7);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ValueStore {
    words: HashMap<Addr, u64>,
}

impl ValueStore {
    /// An all-zero memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The committed value of `addr`.
    pub fn read(&self, addr: Addr) -> u64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Overwrite the committed value of `addr`.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr, value);
    }

    /// Number of words ever written.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if nothing was ever written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Snapshot the words of `line` (the payload of a data response).
    pub fn read_line(&self, line: LineAddr) -> LineData {
        let mut out = [0u64; LINE_WORDS as usize];
        for (i, w) in line.words().enumerate() {
            out[i] = self.read(w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_words_read_zero() {
        let v = ValueStore::new();
        assert_eq!(v.read(Addr(123)), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn read_line_snapshots_all_words() {
        let mut v = ValueStore::new();
        let line = LineAddr(3);
        let words: Vec<Addr> = line.words().collect();
        v.write(words[0], 10);
        v.write(words[2], 30);
        assert_eq!(v.read_line(line), [10, 0, 30, 0]);
        assert_eq!(v.read_line(LineAddr(9)), [0; 4], "untouched lines are zero");
    }

    #[test]
    fn writes_are_visible_and_overwrite() {
        let mut v = ValueStore::new();
        v.write(Addr(1), 10);
        v.write(Addr(1), 20);
        v.write(Addr(2), 30);
        assert_eq!(v.read(Addr(1)), 20);
        assert_eq!(v.read(Addr(2)), 30);
        assert_eq!(v.len(), 2);
    }
}
