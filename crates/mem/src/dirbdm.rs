//! The DirBDM: signature expansion at the directory (paper §4.3.1).
//!
//! When a directory module receives the W signature of a committing chunk,
//! it must (i) find the directory entries whose lines may be encoded in the
//! signature, (ii) update their sharing state, and (iii) compile the
//! *Invalidation List* — the set of processors that must receive W for bulk
//! disambiguation.
//!
//! Because the signature is a superset encoding, expansion may select lines
//! the chunk never wrote. Table 1 of the paper enumerates the four possible
//! entry states and proves the action taken in each is safe even for false
//! positives; [`expand_commit`] implements that table and reports, per
//! entry, whether the lookup/update was *necessary* (the line really is in
//! the chunk's exact write set) so Table 4's aliasing columns can be
//! measured.

use bulksc_sig::TrackedSig;

use crate::store::DirStore;

/// Outcome of expanding one W signature against a directory store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpansionResult {
    /// Cores (other than the committer) that must receive W for bulk
    /// disambiguation and invalidation — the paper's Invalidation List.
    pub invalidation_list: Vec<u32>,
    /// Entries examined whose address passed the membership test.
    pub lookups: u64,
    /// Lookups for lines *not* in the chunk's exact write set (aliasing).
    pub unnecessary_lookups: u64,
    /// Entries whose state was updated (Table 1, row 2).
    pub updates: u64,
    /// Updates applied to lines not in the exact write set. Safe (§4.3.1)
    /// but counted for Table 4's "Unnecessary Updates" column.
    pub unnecessary_updates: u64,
}

/// Expand the W signature of a committing chunk from core `committer` over
/// `store`, applying the Table 1 actions.
///
/// | dirty | committer in vector | action |
/// |---|---|---|
/// | no  | no  | false positive — do nothing |
/// | no  | yes | committer becomes owner: invalidate other sharers, reset vector, set Dirty |
/// | yes | no  | false positive — do nothing |
/// | yes | yes | committer already owner — do nothing |
///
/// The same expansion serves the statically-private Wpriv path (§5.1): the
/// action table is identical; only the surrounding protocol (no access
/// disabling, no ack collection) differs.
pub fn expand_commit(store: &mut DirStore, committer: u32, w: &TrackedSig) -> ExpansionResult {
    let mut result = ExpansionResult::default();
    if w.is_empty() {
        return result;
    }
    let mut invalidate: Vec<u32> = Vec::new();
    for set in w.decode_sets(store.num_sets()) {
        // Collect candidates first: mutation must not disturb iteration.
        let candidates: Vec<_> = store
            .entries_in_set(set)
            .filter(|(line, _)| w.contains(*line))
            .map(|(line, entry)| (line, *entry))
            .collect();
        for (line, entry) in candidates {
            if std::env::var_os("BULKSC_TRACE_EXPAND").is_some() {
                eprintln!(
                    "EXPAND line={line} dirty={} sharers={:?} committer={committer} exact={}",
                    entry.dirty,
                    entry.sharer_list(),
                    w.contains_exact(line)
                );
            }
            result.lookups += 1;
            let necessary = w.contains_exact(line);
            if !necessary {
                result.unnecessary_lookups += 1;
            }
            if !entry.dirty && entry.has_sharer(committer) {
                // Row 2: committing processor becomes the owner.
                result.updates += 1;
                if !necessary {
                    result.unnecessary_updates += 1;
                }
                for s in entry.sharer_list() {
                    if s != committer {
                        invalidate.push(s);
                    }
                }
                let e = store.get_mut(line).expect("candidate entry exists");
                e.sharers = 1 << committer;
                e.dirty = true;
            }
            // Rows 1, 3, 4: no action.
        }
    }
    invalidate.sort_unstable();
    invalidate.dedup();
    result.invalidation_list = invalidate;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DirOrganization;
    use bulksc_sig::{LineAddr, SigMode, SignatureConfig, TrackedSig};

    fn store() -> DirStore {
        DirStore::new(DirOrganization::FullMap { sets: 64 })
    }

    fn wsig(lines: &[u64]) -> TrackedSig {
        let mut s = TrackedSig::new(&SignatureConfig::default(), SigMode::Bloom);
        for &l in lines {
            s.insert(LineAddr(l));
        }
        s
    }

    #[test]
    fn row2_committer_becomes_owner() {
        let mut st = store();
        {
            let e = st.entry_mut(LineAddr(5)).unwrap().0;
            e.add_sharer(0); // committer
            e.add_sharer(1);
            e.add_sharer(3);
        }
        let r = expand_commit(&mut st, 0, &wsig(&[5]));
        assert_eq!(r.invalidation_list, vec![1, 3]);
        assert_eq!(r.lookups, 1);
        assert_eq!(r.unnecessary_lookups, 0);
        assert_eq!(r.updates, 1);
        let e = st.get(LineAddr(5)).unwrap();
        assert!(e.dirty);
        assert_eq!(e.sharer_list(), vec![0]);
    }

    #[test]
    fn row1_false_positive_no_action() {
        let mut st = store();
        {
            let e = st.entry_mut(LineAddr(5)).unwrap().0;
            e.add_sharer(1); // committer NOT a sharer
        }
        let r = expand_commit(&mut st, 0, &wsig(&[5]));
        assert!(r.invalidation_list.is_empty());
        assert_eq!(r.updates, 0);
        let e = st.get(LineAddr(5)).unwrap();
        assert!(!e.dirty);
        assert_eq!(e.sharer_list(), vec![1]);
    }

    #[test]
    fn row3_dirty_elsewhere_no_action() {
        let mut st = store();
        {
            let e = st.entry_mut(LineAddr(5)).unwrap().0;
            e.add_sharer(2);
            e.dirty = true;
        }
        let r = expand_commit(&mut st, 0, &wsig(&[5]));
        assert!(r.invalidation_list.is_empty());
        assert_eq!(r.updates, 0);
        assert!(st.get(LineAddr(5)).unwrap().dirty);
    }

    #[test]
    fn row4_already_owner_no_action() {
        let mut st = store();
        {
            let e = st.entry_mut(LineAddr(5)).unwrap().0;
            e.add_sharer(0);
            e.dirty = true;
        }
        let r = expand_commit(&mut st, 0, &wsig(&[5]));
        assert!(r.invalidation_list.is_empty());
        assert_eq!(r.updates, 0);
        assert_eq!(st.get(LineAddr(5)).unwrap().sharer_list(), vec![0]);
    }

    #[test]
    fn empty_signature_touches_nothing() {
        let mut st = store();
        st.entry_mut(LineAddr(5)).unwrap().0.add_sharer(0);
        let r = expand_commit(&mut st, 0, &wsig(&[]));
        assert_eq!(r, ExpansionResult::default());
    }

    #[test]
    fn invalidation_list_deduped_across_lines() {
        let mut st = store();
        for l in [5u64, 9] {
            let e = st.entry_mut(LineAddr(l)).unwrap().0;
            e.add_sharer(0);
            e.add_sharer(2);
        }
        let r = expand_commit(&mut st, 0, &wsig(&[5, 9]));
        assert_eq!(r.invalidation_list, vec![2]);
        assert_eq!(r.updates, 2);
    }

    #[test]
    fn exact_mode_has_no_unnecessary_lookups() {
        let mut st = store();
        for l in 0..32u64 {
            st.entry_mut(LineAddr(l)).unwrap().0.add_sharer(0);
        }
        let mut w = TrackedSig::new(&SignatureConfig::default(), SigMode::Exact);
        w.insert(LineAddr(3));
        let r = expand_commit(&mut st, 0, &w);
        assert_eq!(r.lookups, 1);
        assert_eq!(r.unnecessary_lookups, 0);
    }

    #[test]
    fn aliased_lookup_is_counted_as_unnecessary_but_safe() {
        // Build a dense write signature over even lines only, then find an
        // odd line that aliases (bloom-positive, exact-negative). Install a
        // directory entry for it with a non-committer sharer: the expansion
        // must count the lookup as unnecessary and take no harmful action
        // (Table 1 row 1).
        // Dense pseudo-random write set: each 512-bit bank is ~98% full,
        // so most never-written lines pass the membership test.
        let written: Vec<u64> = (0..3000u64)
            .map(|i| (i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) >> 40)
            .collect();
        let w = wsig(&written);
        let alias =
            (0..1_000_000u64).find(|&l| w.contains(LineAddr(l)) && !w.contains_exact(LineAddr(l)));
        let Some(alias) = alias else {
            panic!("expected an alias at this signature density");
        };
        let mut st = store();
        {
            let e = st.entry_mut(LineAddr(alias)).unwrap().0;
            e.add_sharer(1); // committer (core 0) is NOT a sharer
        }
        let r = expand_commit(&mut st, 0, &w);
        assert!(r.unnecessary_lookups >= 1);
        assert_eq!(r.updates, 0, "row 1 is a no-op");
        let e = st.get(LineAddr(alias)).unwrap();
        assert!(!e.dirty);
        assert_eq!(e.sharer_list(), vec![1]);
    }
}
