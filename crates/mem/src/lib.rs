//! The memory substrate of the BulkSC machine: caches, the distributed
//! directory, and the DirBDM.
//!
//! This crate provides the structures of Figure 5 of *BulkSC: Bulk
//! Enforcement of Sequential Consistency* (ISCA 2007) that live below the
//! processor:
//!
//! * [`SetAssocCache`] — consistency-oblivious tag stores used for the
//!   private L1s and the shared L2, with the BDM displacement veto that
//!   pins speculatively-written lines in place (§4.1.1);
//! * [`DirStore`] — the directory's sharing-state store, configurable as a
//!   full-map directory or (the paper's preference, §4.3.3) a directory
//!   cache;
//! * [`dirbdm`] — signature expansion over the directory with the
//!   false-positive-safe action table (Table 1);
//! * [`Directory`] — the protocol engine: MESI demand coherence for the
//!   baseline consistency models plus the BulkSC commit side (W-signature
//!   expansion, invalidation lists, conservative access disabling of
//!   committing lines, directory-cache displacement disambiguation).
//!
//! Data *values* are deliberately not stored here: the simulator keeps them
//! in a global value store so that test programs (litmus tests) can check
//! execution outcomes. The memory substrate models presence, state, and
//! timing.

pub mod cache;
pub mod dirbdm;
pub mod directory;
pub mod store;
pub mod values;

pub use bulksc_sig::LineData;
pub use cache::{CacheConfig, InsertOutcome, LineState, SetAssocCache};
pub use dirbdm::{expand_commit, ExpansionResult};
pub use directory::{DirConfig, DirStats, Directory};
pub use store::{DirEntry, DirOrganization, DirStore, Displaced};
pub use values::ValueStore;
