//! Deterministic host-side worker pool for experiment sweeps.
//!
//! Every experiment driver in this workspace runs a matrix of *independent*
//! simulations (apps × configs, seeds × configs, perf scenarios, trace
//! files). This module parallelizes those sweeps across host threads
//! without giving up the repo's byte-determinism guarantees:
//!
//! * Jobs are `(index, closure)` pairs. [`run_all`] hands them to a fixed
//!   number of scoped workers, but collects results into an *index-ordered*
//!   vector — callers assemble tables, artifacts, and summaries in exactly
//!   the order a serial loop would have produced, so `--jobs 1` and
//!   `--jobs 8` emit byte-identical output.
//! * Each job must be self-contained: it builds its own `System`,
//!   `TraceHandle`, and (if profiling) per-thread `bulksc-prof` state
//!   inside the closure. `TraceHandle` is deliberately `!Send`
//!   (`Rc`-shared sinks), which the compiler enforces — a job that tried
//!   to smuggle one across threads will not build.
//! * Worker panics are caught and re-raised *on the caller* naming the
//!   failed job, and a failing job makes the pool stop pulling new work
//!   (fail-fast) so a broken sweep aborts quickly instead of burning the
//!   rest of the matrix.
//!
//! The pool is hermetic `std`: `thread::scope` + a mutexed deque. Scoped
//! threads let jobs borrow the caller's data (scenario tables, sweep
//! entries) without `'static` gymnastics.
//!
//! Width selection: `--jobs N` on a binary's command line, else the
//! `BULKSC_JOBS` environment variable, else
//! [`std::thread::available_parallelism`]. Simulated results never depend
//! on the width — only wall-clock time does.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use bulksc_metrics::{self as metrics, Counter, Gauge, Hist};

/// One unit of work: a display name (used in panic messages) plus the
/// closure that performs it.
pub struct Job<'a, T> {
    name: String,
    run: Box<dyn FnOnce() -> T + Send + 'a>,
}

impl<'a, T> Job<'a, T> {
    /// A job named `name` running `run`. The name appears verbatim in the
    /// panic message if the job fails, so make it identify the scenario
    /// ("fig9 ocean", "BSCdypvt seed 3", ...).
    pub fn new(name: impl Into<String>, run: impl FnOnce() -> T + Send + 'a) -> Self {
        Job {
            name: name.into(),
            run: Box::new(run),
        }
    }
}

/// What one executed job left behind.
enum Outcome<T> {
    Done(T),
    /// The job panicked; holds the job name and the rendered payload.
    Panicked(String, String),
    /// Never ran: the pool aborted first (fail-fast after another job's
    /// panic).
    Skipped,
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run every job and return their results in *job order*, regardless of
/// completion order, using `width` worker threads (clamped to at least 1
/// and at most the job count).
///
/// Results are deterministic in the job closures: if each closure is a
/// pure function of its inputs, the returned vector — and anything
/// assembled from it in order — is identical at any width.
///
/// # Panics
///
/// If a job panics, `run_all` panics on the calling thread with a message
/// naming that job (`job 'NAME' panicked: ...`). When several jobs fail
/// concurrently, the lowest-indexed recorded failure is reported. Jobs
/// that had not started when the first failure was observed are skipped.
pub fn run_all<'a, T: Send>(width: usize, jobs: Vec<Job<'a, T>>) -> Vec<T> {
    let n = jobs.len();
    let width = width.max(1).min(n.max(1));
    // Two independent metrics hooks, both off unless a `--metrics` sweep
    // (or a test) turned them on before calling in:
    // * `collect` — the caller's thread-local registry is enabled, so each
    //   worker opens its own shard and publishes it post-join. The merged
    //   snapshot is a commutative sum, identical at any width.
    // * `live` — the process-global progress atomics a heartbeat thread
    //   reads mid-sweep. Host progress only; never simulated results.
    let collect = metrics::is_enabled();
    let live = metrics::live::is_active();
    if live {
        metrics::live::add_total(n as u64);
    }
    let queue: Mutex<VecDeque<(usize, Job<'a, T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Mutex<Vec<Outcome<T>>> = Mutex::new((0..n).map(|_| Outcome::Skipped).collect());
    let failed = AtomicBool::new(false);

    let worker = || {
        // On a spawned worker thread the registry starts disabled, so open
        // a shard for the jobs this worker will run; on the serial path the
        // caller's own (already-enabled) shard is reused and must survive.
        let opened_shard = collect && !metrics::is_enabled();
        if opened_shard {
            metrics::enable();
        }
        loop {
            if failed.load(Ordering::SeqCst) {
                break;
            }
            let (popped, depth) = {
                let mut q = queue.lock().unwrap();
                let depth = q.len() as u64;
                (q.pop_front(), depth)
            };
            let Some((idx, job)) = popped else {
                break;
            };
            if collect {
                metrics::gauge_peak(Gauge::PoolQueueDepthPeak, depth);
            }
            if live {
                metrics::live::job_started();
            }
            let started_ns = bulksc_prof::clock::now_ns();
            let name = job.name;
            let run = job.run;
            let outcome = match catch_unwind(AssertUnwindSafe(run)) {
                Ok(value) => {
                    if collect {
                        metrics::inc(Counter::PoolJobsCompleted);
                        let wall = bulksc_prof::clock::now_ns().saturating_sub(started_ns);
                        metrics::observe(Hist::JobWallNs, wall);
                    }
                    if live {
                        metrics::live::job_finished();
                    }
                    Outcome::Done(value)
                }
                Err(payload) => {
                    if collect {
                        metrics::inc(Counter::PoolJobsPanicked);
                    }
                    if live {
                        metrics::live::job_panicked();
                    }
                    failed.store(true, Ordering::SeqCst);
                    Outcome::Panicked(name, payload_text(payload.as_ref()))
                }
            };
            slots.lock().unwrap()[idx] = outcome;
        }
        if opened_shard {
            metrics::publish(metrics::disable());
        }
    };

    if width == 1 {
        // Serial fast path: same caught-panic semantics, no thread spawn.
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..width {
                s.spawn(worker);
            }
        });
    }

    let slots = slots.into_inner().unwrap();
    // Report the lowest-indexed failure (deterministic at width 1, and the
    // canonical choice when several jobs fail concurrently).
    for slot in &slots {
        if let Outcome::Panicked(name, msg) = slot {
            panic!("job '{name}' panicked: {msg}");
        }
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Outcome::Done(v) => v,
            // Unreachable: no recorded failure means every job was pulled
            // from the queue and completed.
            _ => unreachable!("job skipped without a recorded failure"),
        })
        .collect()
}

/// The default pool width: `BULKSC_JOBS` if set to a positive integer,
/// else the host's available parallelism, else 1.
pub fn default_width() -> usize {
    if let Ok(v) = std::env::var("BULKSC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid BULKSC_JOBS={v:?} (want a positive integer)");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse a `--jobs N` / `--jobs=N` flag out of an argument list.
/// `Ok(None)` means the flag was absent; `Err` carries a usage message.
pub fn parse_jobs_flag<I: IntoIterator<Item = String>>(args: I) -> Result<Option<usize>, String> {
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--jobs" {
            it.next().ok_or("--jobs needs a value")?
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            v.to_string()
        } else {
            continue;
        };
        return match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!("--jobs wants a positive integer, got {value:?}")),
        };
    }
    Ok(None)
}

/// Pool width for a binary: the `--jobs` flag from the process arguments,
/// else [`default_width`]. Exits with status 2 on a malformed flag.
pub fn jobs_from_cli() -> usize {
    match parse_jobs_flag(std::env::args().skip(1)) {
        Ok(Some(n)) => n,
        Ok(None) => default_width(),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn results_come_back_in_job_order_at_any_width() {
        for width in [1, 2, 3, 8, 64] {
            let jobs: Vec<Job<usize>> = (0..17)
                .map(|i| {
                    Job::new(format!("square {i}"), move || {
                        // Stagger completion so later jobs can finish first.
                        if i % 3 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        i * i
                    })
                })
                .collect();
            let got = run_all(width, jobs);
            let want: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "width {width}");
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let got: Vec<u32> = run_all(4, Vec::new());
        assert!(got.is_empty());
    }

    #[test]
    fn jobs_can_borrow_caller_data() {
        let inputs = [10u64, 20, 30];
        let jobs: Vec<Job<u64>> = inputs
            .iter()
            .map(|v| Job::new("borrow", move || v + 1))
            .collect();
        assert_eq!(run_all(2, jobs), vec![11, 21, 31]);
    }

    #[test]
    #[should_panic(expected = "job 'fig9 ocean' panicked: boom")]
    fn panic_names_the_failed_job() {
        let jobs = vec![
            Job::new("fig9 barnes", || 1),
            Job::new("fig9 ocean", || -> i32 { panic!("boom") }),
        ];
        let _ = run_all(2, jobs);
    }

    #[test]
    fn failure_aborts_the_sweep_before_remaining_jobs_run() {
        // Serial width: job 0 panics, so jobs 1.. must never start.
        let started = AtomicUsize::new(0);
        let jobs: Vec<Job<()>> = (0..10)
            .map(|i| {
                let started = &started;
                Job::new(format!("case {i}"), move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    if i == 0 {
                        panic!("first job fails");
                    }
                })
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| run_all(1, jobs))).unwrap_err();
        let msg = payload_text(err.as_ref());
        assert!(msg.contains("case 0"), "{msg}");
        assert_eq!(started.load(Ordering::SeqCst), 1, "fail-fast");
    }

    #[test]
    fn width_is_clamped() {
        // Zero width still runs everything (clamped to 1).
        let jobs: Vec<Job<u8>> = (0..3).map(|i| Job::new("j", move || i)).collect();
        assert_eq!(run_all(0, jobs), vec![0, 1, 2]);
    }

    #[test]
    fn jobs_flag_parses_both_spellings() {
        assert_eq!(parse_jobs_flag(args(&["--jobs", "4"])), Ok(Some(4)));
        assert_eq!(parse_jobs_flag(args(&["--jobs=8"])), Ok(Some(8)));
        assert_eq!(parse_jobs_flag(args(&["fast", "--json"])), Ok(None));
        assert_eq!(
            parse_jobs_flag(args(&["--json", "--jobs", "2", "fast"])),
            Ok(Some(2))
        );
    }

    #[test]
    fn jobs_flag_rejects_garbage() {
        assert!(parse_jobs_flag(args(&["--jobs"])).is_err());
        assert!(parse_jobs_flag(args(&["--jobs", "zero"])).is_err());
        assert!(parse_jobs_flag(args(&["--jobs", "0"])).is_err());
        assert!(parse_jobs_flag(args(&["--jobs=-1"])).is_err());
    }
}
