//! Statistics plumbing for the BulkSC reproduction.
//!
//! Every quantity the paper reports in Tables 3–4 and Figures 9–11 is one of
//! a handful of statistical shapes:
//!
//! * plain event counts (squashes, commits, messages) — plain `u64` fields,
//!   with the rate helpers in [`rates`];
//! * means over a population (average read-set size per chunk) —
//!   [`RunningMean`];
//! * time-weighted averages and occupancy (pending W signatures in the
//!   arbiter, % of time the W list is non-empty) — [`TimeWeighted`];
//! * geometric means across applications (the `SP2-G.M.` column) —
//!   [`geomean`];
//! * latency distributions (per-phase commit latency percentiles) —
//!   [`hist::Histogram`];
//! * cycle-loss attribution (where each core's cycles went) —
//!   [`hist::CycleLoss`];
//! * aligned text tables mirroring the paper's layout — [`table::Table`].

pub mod hist;
pub mod rates;
pub mod rng;
pub mod table;

pub use hist::{CycleLoss, Histogram};
pub use rates::{per_100k, per_1k, percent};
pub use rng::SplitMix64;
pub use table::Table;

/// Arithmetic mean accumulated one sample at a time.
///
/// # Example
///
/// ```
/// use bulksc_stats::RunningMean;
/// let mut m = RunningMean::new();
/// m.add(2.0);
/// m.add(4.0);
/// assert_eq!(m.mean(), 3.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn add(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// The mean of the samples so far, or 0 if none were added.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &RunningMean) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Time-weighted average of a piecewise-constant quantity.
///
/// Feed it level changes with [`TimeWeighted::set`] and close the window
/// with [`TimeWeighted::finish`]; it reports the average level and the
/// fraction of time the level was non-zero. This is how the paper's
/// "# of Pend. W Sigs." and "Non-Empty W List (% Time)" columns (Table 4)
/// are measured.
///
/// # Example
///
/// ```
/// use bulksc_stats::TimeWeighted;
/// let mut t = TimeWeighted::new();
/// t.set(0, 2.0); // level 2 from cycle 0
/// t.set(10, 0.0); // level 0 from cycle 10
/// t.finish(20);
/// assert_eq!(t.average(), 1.0);
/// assert_eq!(t.nonzero_fraction(), 0.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeWeighted {
    weighted_sum: f64,
    nonzero_time: u64,
    total_time: u64,
    last_change: u64,
    level: f64,
    finished: bool,
}

impl TimeWeighted {
    /// A fresh accumulator with level 0 at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the quantity changed to `level` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous change or if the window was
    /// already [`finish`](Self::finish)ed.
    pub fn set(&mut self, now: u64, level: f64) {
        assert!(!self.finished, "window already finished");
        assert!(now >= self.last_change, "time went backwards");
        self.account(now);
        self.level = level;
    }

    fn account(&mut self, now: u64) {
        let dt = now - self.last_change;
        self.weighted_sum += self.level * dt as f64;
        if self.level != 0.0 {
            self.nonzero_time += dt;
        }
        self.total_time += dt;
        self.last_change = now;
    }

    /// Close the measurement window at time `end`.
    ///
    /// # Panics
    ///
    /// Panics if called twice or if `end` precedes the last change.
    pub fn finish(&mut self, end: u64) {
        assert!(!self.finished, "window already finished");
        assert!(end >= self.last_change, "time went backwards");
        self.account(end);
        self.finished = true;
    }

    /// Time-weighted average level over the window.
    pub fn average(&self) -> f64 {
        if self.total_time == 0 {
            0.0
        } else {
            self.weighted_sum / self.total_time as f64
        }
    }

    /// Fraction of the window during which the level was non-zero.
    pub fn nonzero_fraction(&self) -> f64 {
        if self.total_time == 0 {
            0.0
        } else {
            self.nonzero_time as f64 / self.total_time as f64
        }
    }
}

/// Geometric mean of a slice of positive values; 0 if empty.
///
/// Used for the paper's `SP2-G.M.` speedup column.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Example
///
/// ```
/// let g = bulksc_stats::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_basics() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(1.0);
        m.add(2.0);
        m.add(3.0);
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 6.0);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::new();
        a.add(1.0);
        let mut b = RunningMean::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn time_weighted_tracks_levels() {
        let mut t = TimeWeighted::new();
        t.set(0, 1.0);
        t.set(4, 3.0);
        t.finish(8);
        // 4 cycles at 1 + 4 cycles at 3 = 16 over 8 cycles.
        assert_eq!(t.average(), 2.0);
        assert_eq!(t.nonzero_fraction(), 1.0);
    }

    #[test]
    fn time_weighted_zero_time() {
        let mut t = TimeWeighted::new();
        t.finish(0);
        assert_eq!(t.average(), 0.0);
        assert_eq!(t.nonzero_fraction(), 0.0);
    }

    #[test]
    fn time_weighted_partial_occupancy() {
        let mut t = TimeWeighted::new();
        t.set(10, 4.0);
        t.finish(40);
        // 10 cycles at 0, 30 at 4 => avg 3, nonzero 75%.
        assert_eq!(t.average(), 3.0);
        assert_eq!(t.nonzero_fraction(), 0.75);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_backwards_time() {
        let mut t = TimeWeighted::new();
        t.set(5, 1.0);
        t.set(4, 0.0);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn time_weighted_rejects_use_after_finish() {
        let mut t = TimeWeighted::new();
        t.finish(1);
        t.set(2, 1.0);
    }

    #[test]
    fn geomean_values() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
