//! Latency distributions and cycle-loss attribution.
//!
//! Scalar counters and means (the rest of this crate) answer "how much on
//! average"; the evaluation questions of the paper — where do commit
//! cycles go, what does the arbitration tail look like — need
//! distributions. [`Histogram`] is a log-bucketed HDR-style histogram:
//! exact below 2^6, ~1.6% relative error (64 sub-buckets per octave,
//! ≈2.5 significant figures) up to 2^40 cycles, constant-time recording,
//! mergeable across cores, and serializable to the sparse JSON form the
//! `bulksc-analyze` tooling reads back.
//!
//! [`CycleLoss`] is the companion accumulator for *attribution*: a small
//! labelled table of cycle counts (useful work, squash causes, arbitration
//! denials, end-of-run tail) whose per-core totals are constructed to sum
//! exactly to the simulated cycle count.

use crate::table::Table;

/// Sub-bucket resolution: 2^6 = 64 sub-buckets per power of two.
const SUB_BITS: u32 = 6;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Largest distinguishable value (~10^12 cycles); larger values clamp.
const MAX_VALUE: u64 = 1 << 40;

/// A log-bucketed histogram of `u64` samples (cycle counts).
///
/// Values in `0..64` get exact unit buckets; every higher octave is split
/// into 64 sub-buckets, so any recorded value is represented with at most
/// ~1.6% error. Values above 2^40 are clamped into the top bucket.
///
/// # Example
///
/// ```
/// use bulksc_stats::Histogram;
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 40] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.percentile(50.0), 20);
/// assert_eq!(h.max(), 40);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Sparse-in-practice dense bucket array, allocated on first record.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index of `value` (monotone in `value`).
fn bucket_index(value: u64) -> usize {
    let v = value.min(MAX_VALUE);
    if v < SUB_COUNT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) & (SUB_COUNT - 1);
    (((exp - SUB_BITS + 1) as u64 * SUB_COUNT) + sub) as usize
}

/// Largest value that maps to bucket `index` (the reported quantile value,
/// so percentiles never under-state a latency).
fn bucket_high(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_COUNT {
        return i;
    }
    let exp = i / SUB_COUNT - 1 + SUB_BITS as u64;
    let sub = i % SUB_COUNT;
    let low = (1u64 << exp) + (sub << (exp - SUB_BITS as u64));
    low + (1u64 << (exp - SUB_BITS as u64)) - 1
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at percentile `p` (0..=100): the upper edge of the bucket
    /// holding the sample of rank `ceil(p/100 · count)`, clamped to the
    /// exact observed min/max so `percentile(0)` and `percentile(100)` are
    /// exact. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (e.g. per-core → machine).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The non-empty `(bucket_index, count)` pairs, ascending by index.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuild a histogram from sparse `(index, count)` pairs plus the
    /// exact summary fields (the inverse of the JSON encoding). Returns
    /// `None` if the parts are inconsistent: bucket counts that do not
    /// sum to `count`, an out-of-range bucket index, `min > max`, or a
    /// `min`/`max` that does not land in the first/last occupied bucket.
    /// (An unvalidated `min > max` would poison [`Histogram::percentile`],
    /// whose final clamp requires an ordered range.)
    pub fn from_parts(
        pairs: &[(usize, u64)],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Option<Histogram> {
        let mut h = Histogram {
            buckets: Vec::new(),
            count,
            sum,
            min,
            max,
        };
        let mut total = 0u64;
        for &(idx, c) in pairs {
            if idx > bucket_index(MAX_VALUE) {
                return None;
            }
            if h.buckets.len() <= idx {
                h.buckets.resize(idx + 1, 0);
            }
            h.buckets[idx] += c;
            total = total.checked_add(c)?;
        }
        if total != count {
            return None;
        }
        if count == 0 {
            // An empty histogram has zeroed summary fields, nothing else.
            return (sum == 0 && min == 0 && max == 0).then_some(h);
        }
        if min > max {
            return None;
        }
        let first = h.buckets.iter().position(|&c| c > 0)?;
        let last = h.buckets.iter().rposition(|&c| c > 0)?;
        (bucket_index(min) == first && bucket_index(max) == last).then_some(h)
    }
}

/// Labelled cycle-loss attribution table.
///
/// Each entry charges some cycles to a fixed cause label. The simulator
/// partitions every core's timeline into consecutive intervals and charges
/// each interval to the event that ended it (commit, squash by cause,
/// arbitration denial), with the end-of-run remainder charged to a tail
/// label — so [`CycleLoss::total`] equals the simulated cycle count
/// exactly, by construction.
///
/// # Example
///
/// ```
/// use bulksc_stats::CycleLoss;
/// let mut l = CycleLoss::new();
/// l.charge("committed", 90);
/// l.charge("w_sig_conflict", 10);
/// assert_eq!(l.total(), 100);
/// assert_eq!(l.get("committed"), 90);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleLoss {
    /// `(label, cycles)` in first-charge order (deterministic).
    entries: Vec<(&'static str, u64)>,
}

impl CycleLoss {
    /// An empty table.
    pub fn new() -> CycleLoss {
        CycleLoss::default()
    }

    /// Charge `cycles` to `label` (creating the entry on first use).
    pub fn charge(&mut self, label: &'static str, cycles: u64) {
        match self.entries.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += cycles,
            None => self.entries.push((label, cycles)),
        }
    }

    /// Cycles charged to `label` so far (0 if never charged).
    pub fn get(&self, label: &str) -> u64 {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// All `(label, cycles)` entries, in first-charge order.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }

    /// Total cycles charged across all labels.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// Merge another table into this one.
    pub fn merge(&mut self, other: &CycleLoss) {
        for &(label, cycles) in &other.entries {
            self.charge(label, cycles);
        }
    }

    /// Render a two-column table (label, cycles, % of total).
    pub fn render(&self, title: &str) -> String {
        let total = self.total().max(1);
        let mut t = Table::new(vec![
            title.to_string(),
            "cycles".to_string(),
            "%".to_string(),
        ]);
        for &(label, cycles) in &self.entries {
            t.row(vec![
                label.to_string(),
                cycles.to_string(),
                format!("{:.2}", 100.0 * cycles as f64 / total as f64),
            ]);
        }
        t.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // Unit buckets below 64: every percentile lands on a real value.
        assert_eq!(h.percentile(50.0), 31);
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // At every power-of-two boundary the index must be monotone and
        // the reported bucket edge within 1/32 of the value.
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..=40u32 {
            values.extend([(1u64 << exp), (1u64 << exp) + 1, (3u64 << exp) / 2]);
        }
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
            let hi = bucket_high(idx);
            assert!(hi >= v.min(MAX_VALUE), "bucket high {hi} < value {v}");
            let err = (hi - v.min(MAX_VALUE)) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0, "error {err} too large at {v}");
        }
    }

    #[test]
    fn percentile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for v in (1..=100_000u64).step_by(7) {
            h.record(v);
        }
        for p in [50.0, 90.0, 99.0] {
            let exact = ((p / 100.0) * h.count() as f64).ceil() as u64 * 7 - 6;
            let got = h.percentile(p);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.02, "p{p}: got {got}, exact ~{exact}, err {err}");
        }
        assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [1u64, 5, 100, 1_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 70, 12_345, 1 << 39] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Merging an empty histogram changes nothing.
        a.merge(&Histogram::new());
        assert_eq!(a, both);
        let mut empty = Histogram::new();
        empty.merge(&both);
        assert_eq!(empty, both);
    }

    #[test]
    fn clamps_above_max_value() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 1);
        // The clamped sample still lands in the top bucket.
        assert_eq!(h.nonzero_buckets().count(), 1);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 63, 64, 65, 4096, 123_456_789] {
            h.record(v);
        }
        let pairs: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(&pairs, h.count(), h.sum(), h.min(), h.max())
            .expect("consistent parts");
        assert_eq!(back, h);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
        // Inconsistent count is rejected.
        assert!(Histogram::from_parts(&pairs, h.count() + 1, 0, 0, 0).is_none());
    }

    #[test]
    fn percentile_rank_on_a_bucket_boundary() {
        // Two samples: p=50 has rank ceil(0.5·2)=1, landing exactly on
        // the cumulative-count boundary of the first bucket — it must
        // report the first sample, not fall through to the second.
        let mut h = Histogram::new();
        h.record(10);
        h.record(40);
        assert_eq!(h.percentile(50.0), 10);
        assert_eq!(h.percentile(50.1), 40);
        // Degenerate ranks clamp into 1..=count.
        assert_eq!(h.percentile(0.0), 10);
        assert_eq!(h.percentile(100.0), 40);
        assert_eq!(h.percentile(-5.0), 10);
        assert_eq!(h.percentile(250.0), 40);
    }

    #[test]
    fn merge_shorter_into_longer_bucket_array() {
        // merge() must also be correct when *self* has the longer bucket
        // array (the resize branch is skipped and the zip must not drop
        // self's tail).
        let mut long = Histogram::new();
        long.record(1 << 30);
        long.record(3);
        let mut short = Histogram::new();
        short.record(5);
        let mut both = Histogram::new();
        for v in [1u64 << 30, 3, 5] {
            both.record(v);
        }
        long.merge(&short);
        assert_eq!(long, both);
        assert_eq!(long.max(), 1 << 30);
        assert_eq!(long.min(), 3);
    }

    #[test]
    fn from_parts_rejects_corrupt_summaries() {
        let mut h = Histogram::new();
        for v in [10u64, 500, 9_999] {
            h.record(v);
        }
        let pairs: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let (count, sum) = (h.count(), h.sum());
        // min > max used to slip through and make percentile() panic on
        // its min..max clamp.
        assert!(Histogram::from_parts(&pairs, count, sum, 9_999, 10).is_none());
        // min/max outside the occupied buckets.
        assert!(Histogram::from_parts(&pairs, count, sum, 1, 9_999).is_none());
        assert!(Histogram::from_parts(&pairs, count, sum, 10, 1 << 20).is_none());
        // Non-empty pairs with count 0, and nonzero summaries on an
        // empty histogram.
        assert!(Histogram::from_parts(&pairs, 0, 0, 0, 0).is_none());
        assert!(Histogram::from_parts(&[], 0, 1, 0, 0).is_none());
        assert!(Histogram::from_parts(&[], 0, 0, 0, 0).is_some());
        // Overflowing bucket counts must not wrap into a "consistent"
        // total.
        assert!(Histogram::from_parts(&[(1, u64::MAX), (2, 1)], 0, 0, 0, 0).is_none());
        // The honest parts still round-trip.
        let back =
            Histogram::from_parts(&pairs, count, sum, h.min(), h.max()).expect("valid parts");
        assert_eq!(back, h);
    }

    #[test]
    fn percentiles_track_an_exact_sorted_vector() {
        // Seeded property loop: histogram percentiles vs. the exact
        // nearest-rank percentile of the raw samples. The histogram
        // reports a bucket's upper edge, so it may only *over*-state, and
        // by at most one sub-bucket width (1/32 relative, ~2.5
        // significant figures).
        let mut rng = crate::SplitMix64::new(0x5ca1_ab1e ^ 20070609);
        for round in 0..20u64 {
            let n = 100 + (rng.gen_range(0..900)) as usize;
            let mut h = Histogram::new();
            let mut exact: Vec<u64> = Vec::with_capacity(n);
            for _ in 0..n {
                // Log-uniform magnitudes: every bucket regime gets hit.
                let bits = rng.gen_range(1..34);
                let v = rng.gen_range(0..(1u64 << bits)) + 1;
                h.record(v);
                exact.push(v);
            }
            exact.sort_unstable();
            for p in [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
                let rank = ((p / 100.0) * n as f64).ceil().clamp(1.0, n as f64) as usize;
                let want = exact[rank - 1];
                let got = h.percentile(p);
                assert!(
                    got >= want,
                    "round {round} p{p}: histogram under-states {got} < {want}"
                );
                assert!(
                    got as f64 <= want as f64 * (1.0 + 1.0 / 32.0),
                    "round {round} p{p}: {got} overshoots exact {want}"
                );
            }
        }
    }

    #[test]
    fn cycle_loss_accumulates_and_merges() {
        let mut l = CycleLoss::new();
        l.charge("committed", 10);
        l.charge("w_sig_conflict", 5);
        l.charge("committed", 10);
        assert_eq!(l.get("committed"), 20);
        assert_eq!(l.get("never"), 0);
        assert_eq!(l.total(), 25);
        let mut other = CycleLoss::new();
        other.charge("tail", 5);
        other.charge("committed", 1);
        l.merge(&other);
        assert_eq!(l.total(), 31);
        assert_eq!(l.get("committed"), 21);
        let rendered = l.render("core0");
        assert!(rendered.contains("w_sig_conflict"));
        assert!(rendered.contains("core0"));
    }
}
