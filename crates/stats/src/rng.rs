//! A small deterministic PRNG for workload generation.
//!
//! The simulator needs reproducible pseudo-randomness (same seed, same
//! execution, every time) but nothing cryptographic, so this is a plain
//! SplitMix64 — the 64-bit finalizer-based generator from Steele, Lea &
//! Flood's "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014),
//! also used to seed xoshiro/xorshift families. It keeps the workspace free
//! of external dependencies so the whole tree builds offline.
//!
//! `gen_range` maps `next_u64` into the interval by modulo; the bias is
//! at most `n / 2^64`, far below anything the synthetic workloads can
//! observe, and determinism — not exact uniformity — is the requirement.

/// SplitMix64: 64 bits of state, period 2^64, passes BigCrush.
///
/// # Example
///
/// ```
/// use bulksc_stats::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.gen_range(10..20) >= 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Distinct seeds give independent
    /// streams for every practical purpose (the finalizer decorrelates
    /// even consecutive seeds).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// Uniform index into a collection of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty collection");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream() {
        // First outputs for seed 0, from the reference implementation
        // (Vigna's splitmix64.c).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn determinism_and_independence() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_bounds() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let i = r.gen_index(7);
            assert!(i < 7);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SplitMix64::new(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
