//! Rate helpers matching the units the paper reports in.
//!
//! Table 3 reports "per 100k commits" and "per 1k commits" columns; several
//! tables report percentages. These helpers keep the unit conversions in one
//! place and handle zero denominators uniformly (a run with zero commits
//! reports zero, not NaN).

/// `events` per one thousand `denom` (e.g. private-buffer hits per 1k
/// commits, Table 3).
///
/// # Example
///
/// ```
/// assert_eq!(bulksc_stats::per_1k(5, 1000), 5.0);
/// assert_eq!(bulksc_stats::per_1k(5, 0), 0.0);
/// ```
pub fn per_1k(events: u64, denom: u64) -> f64 {
    scaled(events, denom, 1_000.0)
}

/// `events` per one hundred thousand `denom` (e.g. speculative line
/// displacements per 100k commits, Table 3).
///
/// # Example
///
/// ```
/// assert_eq!(bulksc_stats::per_100k(3, 100_000), 3.0);
/// ```
pub fn per_100k(events: u64, denom: u64) -> f64 {
    scaled(events, denom, 100_000.0)
}

/// `part` as a percentage of `whole`.
///
/// # Example
///
/// ```
/// assert_eq!(bulksc_stats::percent(1, 4), 25.0);
/// assert_eq!(bulksc_stats::percent(1, 0), 0.0);
/// ```
pub fn percent(part: u64, whole: u64) -> f64 {
    scaled(part, whole, 100.0)
}

fn scaled(events: u64, denom: u64, scale: f64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        events as f64 / denom as f64 * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_are_correct() {
        assert_eq!(per_1k(2, 4000), 0.5);
        assert_eq!(per_100k(2, 400_000), 0.5);
        assert_eq!(percent(3, 12), 25.0);
    }

    #[test]
    fn zero_denominator_is_zero() {
        assert_eq!(per_1k(7, 0), 0.0);
        assert_eq!(per_100k(7, 0), 0.0);
        assert_eq!(percent(7, 0), 0.0);
    }
}
