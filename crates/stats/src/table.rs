//! Minimal aligned text tables.
//!
//! The bench harness prints each reproduced paper table/figure as plain
//! text; this keeps rendering logic out of the harness binaries.

use std::fmt;

/// A column-aligned text table.
///
/// # Example
///
/// ```
/// use bulksc_stats::Table;
/// let mut t = Table::new(vec!["App".into(), "Speedup".into()]);
/// t.row(vec!["fft".into(), "0.98".into()]);
/// let s = t.to_string();
/// assert!(s.contains("fft"));
/// assert!(s.contains("Speedup"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: append a row whose first cell is a label and whose
    /// remaining cells are numbers formatted with `prec` decimals.
    pub fn num_row(&mut self, label: &str, values: &[f64], prec: usize) -> &mut Self {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        cells.extend(values.iter().map(|v| format!("{v:.prec$}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{cell:<width$}", width = widths[i])?;
                } else {
                    write!(f, "{cell:>width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["App".into(), "X".into()]);
        t.row(vec!["barnes".into(), "1.0".into()]);
        t.row(vec!["lu".into(), "10.25".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numeric column: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].starts_with("App"));
    }

    #[test]
    fn num_row_formats() {
        let mut t = Table::new(vec!["App".into(), "A".into(), "B".into()]);
        t.num_row("fft", &[0.5, 1.23456], 2);
        assert!(t.to_string().contains("1.23"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["A".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
