//! Witness-order construction: po ∪ rf ∪ co ∪ fr, its topological sort,
//! and the violation report when the union is cyclic.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use crate::{Access, LifecycleEvent};

/// Which relation an edge of the witness graph came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Program order (same core, consecutive `po`).
    Po,
    /// Reads-from (write → the read that observed its value).
    Rf,
    /// Coherence order (consecutive writes at one address).
    Co,
    /// From-reads (read → the co-successor of the write it read).
    Fr,
}

impl EdgeKind {
    fn label(self) -> &'static str {
        match self {
            EdgeKind::Po => "po",
            EdgeKind::Rf => "rf",
            EdgeKind::Co => "co",
            EdgeKind::Fr => "fr",
        }
    }
}

/// How an execution failed the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// po ∪ rf ∪ co ∪ fr is cyclic: no SC interleaving explains the
    /// observed values.
    Cycle,
    /// A read observed a value no write at that address ever published
    /// (and the address starts at 0, so it is not the initial value).
    UnsourcedRead,
    /// A read-modify-write was not atomic: another write intervened
    /// between its read and its write in coherence order.
    TornRmw,
    /// Streaming mode only: a read observed a value that was already
    /// overwritten inside the certified witness prefix — it is stale by
    /// more than a checking window, so no SC interleaving extending the
    /// prefix can satisfy it.
    StaleRead,
}

/// The oracle's finding when an execution is *not* SC.
#[derive(Clone, Debug)]
pub struct ScViolation {
    /// What kind of violation this is.
    pub kind: ViolationKind,
    /// The minimal offending access set. For [`ViolationKind::Cycle`]
    /// this is a simple cycle: access `i` has an edge to access
    /// `i + 1 (mod len)`.
    pub accesses: Vec<Access>,
    /// For cycles: the relation each edge came from (`edges[i]` connects
    /// `accesses[i]` to its successor). Empty otherwise.
    pub edges: Vec<EdgeKind>,
    /// Human-readable report with chunk-lifecycle context.
    pub report: String,
}

impl fmt::Display for ScViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report)
    }
}

/// Why the oracle could not run or could not certify.
#[derive(Clone, Debug)]
pub enum CheckError {
    /// The trace itself is ill-formed (duplicate program-order index,
    /// internal replay mismatch): the oracle's input invariants do not
    /// hold, so no verdict is possible.
    Malformed(String),
    /// The execution is not sequentially consistent.
    Violation(Box<ScViolation>),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Malformed(m) => write!(f, "malformed value trace: {m}"),
            CheckError::Violation(v) => f.write_str(&v.report),
        }
    }
}

impl std::error::Error for CheckError {}

/// Proof that an execution is SC: the witness interleaving and the final
/// memory it reaches.
#[derive(Clone, Debug)]
pub struct ScCertificate {
    /// Accesses verified.
    pub accesses: usize,
    /// Witness edges constructed (po + rf + co + fr).
    pub edges: usize,
    /// Reads whose rf source was ambiguous (several writes published the
    /// same value at that address): their rf/fr edges were skipped.
    pub ambiguous_reads: usize,
    /// A witness total order: indices into the access array, in an order
    /// under which every read sees the most recent write.
    pub witness: Vec<usize>,
    /// Memory after replaying the witness (traced addresses only;
    /// addresses never written stay at their initial 0 and are absent).
    pub final_memory: BTreeMap<u64, u64>,
}

impl ScCertificate {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "SC-certified: {} accesses, {} witness edges, {} ambiguous reads, \
             {} locations written",
            self.accesses,
            self.edges,
            self.ambiguous_reads,
            self.final_memory.len()
        )
    }
}

/// Verify that `accesses` (in trace-stream order) admit an SC witness.
/// `lifecycle` provides the chunk/squash context quoted in violation
/// reports; pass `&[]` when unavailable.
///
/// This is the batch entry point: a single-window run of the streaming
/// checker in [`crate::stream`], which resolves every read against the
/// complete write set and records the full witness. Certificates and
/// violation reports are identical to the historical all-in-memory
/// implementation; use [`crate::stream::check_stream`] with a bounded
/// [`crate::stream::StreamConfig`] when the trace does not fit.
pub fn check(
    accesses: &[Access],
    lifecycle: &[LifecycleEvent],
) -> Result<ScCertificate, CheckError> {
    Ok(
        crate::stream::check_stream(accesses, lifecycle, crate::stream::StreamConfig::batch())?
            .into_sc(),
    )
}

/// Extract a simple cycle from the leftover subgraph (`indeg[i] > 0`
/// after Kahn). Prefers the shortest cycle through the lowest-indexed
/// access that lies on one, so litmus-sized violations report the
/// textbook minimal set.
pub(crate) fn find_cycle(
    adj: &[Vec<(usize, EdgeKind)>],
    indeg: &[usize],
) -> (Vec<usize>, Vec<EdgeKind>) {
    let leftover: Vec<usize> = (0..adj.len()).filter(|&i| indeg[i] > 0).collect();
    // BFS from each candidate start until one closes back on itself.
    // Every leftover node has a predecessor among leftovers, so a cycle
    // exists and the scan terminates at the first start that is on one.
    for &s in &leftover {
        let mut parent: HashMap<usize, (usize, EdgeKind)> = HashMap::new();
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &(v, kind) in &adj[u] {
                if indeg[v] == 0 {
                    continue; // edge into the already-sorted region
                }
                if v == s {
                    // Close the loop: walk parents back from u to s.
                    let mut nodes = vec![u];
                    let mut kinds = vec![kind];
                    let mut cur = u;
                    while cur != s {
                        let (p, k) = parent[&cur];
                        nodes.push(p);
                        kinds.push(k);
                        cur = p;
                    }
                    nodes.reverse();
                    kinds.reverse();
                    // kinds[i] now labels the edge nodes[i] -> nodes[i+1
                    // mod len]: the parent-edge list reversed starts with
                    // the edge out of s and ends with the edge back into
                    // it, matching the reversed node order.
                    return (nodes, kinds);
                }
                if !parent.contains_key(&v) && v != s {
                    parent.insert(v, (u, kind));
                    queue.push_back(v);
                }
            }
        }
    }
    unreachable!("leftover subgraph of a failed toposort always contains a cycle");
}

/// Build a violation with its rendered report. `offenders` is the
/// minimal offending access set, already resolved to accesses (the
/// streaming checker has no global access array to index into).
pub(crate) fn violation(
    offenders: Vec<Access>,
    lifecycle: &[LifecycleEvent],
    kind: ViolationKind,
    edge_kinds: Vec<EdgeKind>,
    headline: String,
) -> CheckError {
    let mut report = format!(
        "SC violation ({}): {headline}\n",
        match kind {
            ViolationKind::Cycle => "cycle",
            ViolationKind::UnsourcedRead => "unsourced read",
            ViolationKind::TornRmw => "torn rmw",
            ViolationKind::StaleRead => "stale read",
        }
    );
    for (i, a) in offenders.iter().enumerate() {
        report.push_str(&format!("  [{i}] {}\n", a.describe()));
        if let Some(k) = edge_kinds.get(i) {
            let next = (i + 1) % offenders.len();
            report.push_str(&format!("       --{}-> [{next}]\n", k.label()));
        }
    }

    // Chunk-lifecycle context: what the offending cores were doing in a
    // window around the offending accesses.
    let lo = offenders
        .iter()
        .map(|a| a.retired_at.min(a.emitted_at))
        .min()
        .unwrap_or(0)
        .saturating_sub(200);
    let hi = offenders
        .iter()
        .map(|a| a.retired_at.max(a.emitted_at))
        .max()
        .unwrap_or(u64::MAX)
        .saturating_add(200);
    let cores: Vec<u32> = offenders.iter().map(|a| a.core).collect();
    let context: Vec<&LifecycleEvent> = lifecycle
        .iter()
        .filter(|e| e.t >= lo && e.t <= hi && cores.contains(&e.core))
        .collect();
    if !context.is_empty() {
        report.push_str(&format!(
            "  chunk lifecycle on the offending cores, cycles {lo}..{hi}:\n"
        ));
        for e in context.iter().take(24) {
            report.push_str(&format!(
                "    @{} core{} {} seq={}\n",
                e.t, e.core, e.what, e.seq
            ));
        }
        if context.len() > 24 {
            report.push_str(&format!("    ... and {} more\n", context.len() - 24));
        }
    }

    CheckError::Violation(Box::new(ScViolation {
        kind,
        accesses: offenders,
        edges: edge_kinds,
        report,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;

    /// Shorthand access builder for tests.
    fn acc(idx: usize, core: u32, po: u64, addr: u64, kind: AccessKind) -> Access {
        Access {
            idx,
            core,
            seq: 0,
            po,
            addr,
            kind,
            retired_at: 10 + idx as u64,
            emitted_at: 20 + idx as u64,
        }
    }
    fn ld(idx: usize, core: u32, po: u64, addr: u64, value: u64) -> Access {
        acc(idx, core, po, addr, AccessKind::Load { value })
    }
    fn st(idx: usize, core: u32, po: u64, addr: u64, value: u64) -> Access {
        acc(idx, core, po, addr, AccessKind::Store { value })
    }

    #[test]
    fn empty_and_single_traces_certify() {
        let cert = check(&[], &[]).expect("empty trace is SC");
        assert_eq!(cert.accesses, 0);
        let cert = check(&[st(0, 0, 0, 8, 1)], &[]).expect("one store is SC");
        assert_eq!(cert.witness, vec![0]);
        assert_eq!(cert.final_memory, BTreeMap::from([(8, 1)]));
    }

    #[test]
    fn sequential_interleaving_certifies_with_full_edges() {
        // core0: st a=1; ld b -> 2.  core1: st b=2; ld a -> 1.
        // A valid SC outcome (both stores first).
        let t = [
            st(0, 0, 0, 0xa, 1),
            st(1, 1, 0, 0xb, 2),
            ld(2, 0, 1, 0xb, 2),
            ld(3, 1, 1, 0xa, 1),
        ];
        let cert = check(&t, &[]).expect("valid SB outcome");
        assert_eq!(cert.accesses, 4);
        assert_eq!(cert.ambiguous_reads, 0);
        // 2 po + 2 rf edges; no co (one write per address), no fr (reads
        // saw the last write).
        assert_eq!(cert.edges, 4);
        let pos = |i: usize| cert.witness.iter().position(|&w| w == i).unwrap();
        assert!(pos(0) < pos(2) && pos(1) < pos(3), "po respected");
        assert_eq!(cert.final_memory, BTreeMap::from([(0xa, 1), (0xb, 2)]));
    }

    #[test]
    fn store_buffering_outcome_is_a_cycle() {
        // The forbidden SB outcome: both loads read 0 past the other
        // core's store. po + fr forms a 4-cycle.
        let t = [
            st(0, 0, 0, 0xa, 1),
            ld(1, 0, 1, 0xb, 0),
            st(2, 1, 0, 0xb, 2),
            ld(3, 1, 1, 0xa, 0),
        ];
        let err = check(&t, &[]).expect_err("forbidden SB outcome");
        let CheckError::Violation(v) = err else {
            panic!("expected a violation, got {err:?}");
        };
        assert_eq!(v.kind, ViolationKind::Cycle);
        assert_eq!(v.accesses.len(), 4, "minimal SB cycle has 4 accesses");
        assert_eq!(v.edges.len(), 4);
        let mut kinds = v.edges.clone();
        kinds.sort_by_key(|k| k.label());
        assert_eq!(
            kinds,
            vec![EdgeKind::Fr, EdgeKind::Fr, EdgeKind::Po, EdgeKind::Po]
        );
        assert!(v.report.contains("po ∪ rf ∪ co ∪ fr"));
        assert!(v.report.contains("load  0xb -> 0"));
    }

    #[test]
    fn coherence_read_reordering_is_a_cycle() {
        // CoRR: writer publishes 1 then 2; reader sees 2 then 1.
        // rf + fr + po + co forms a cycle.
        let t = [
            st(0, 0, 0, 0xc, 1),
            st(1, 0, 1, 0xc, 2),
            ld(2, 1, 0, 0xc, 2),
            ld(3, 1, 1, 0xc, 1),
        ];
        let err = check(&t, &[]).expect_err("CoRR violation");
        let CheckError::Violation(v) = err else {
            panic!("expected violation, got {err:?}");
        };
        assert_eq!(v.kind, ViolationKind::Cycle);
        assert!(v.accesses.len() >= 2);
    }

    #[test]
    fn violation_report_quotes_lifecycle_context() {
        let t = [
            st(0, 0, 0, 0xa, 1),
            ld(1, 0, 1, 0xb, 0),
            st(2, 1, 0, 0xb, 2),
            ld(3, 1, 1, 0xa, 0),
        ];
        let life = [
            LifecycleEvent {
                t: 15,
                core: 0,
                seq: 2,
                what: "commit_grant",
            },
            LifecycleEvent {
                t: 16,
                core: 1,
                seq: 1,
                what: "squash(alias)",
            },
            LifecycleEvent {
                t: 9_999_999,
                core: 0,
                seq: 3,
                what: "chunk_commit",
            },
            LifecycleEvent {
                t: 17,
                core: 7,
                seq: 0,
                what: "chunk_start",
            },
        ];
        let err = check(&t, &life).expect_err("violation");
        let report = err.to_string();
        assert!(report.contains("commit_grant"));
        assert!(report.contains("squash(alias)"));
        assert!(!report.contains("9999999"), "far-away events filtered");
        assert!(!report.contains("core7"), "unrelated cores filtered");
    }

    #[test]
    fn unsourced_read_is_flagged() {
        let t = [st(0, 0, 0, 0xa, 1), ld(1, 1, 0, 0xa, 7)];
        let err = check(&t, &[]).expect_err("value 7 never written");
        let CheckError::Violation(v) = err else {
            panic!("expected violation, got {err:?}");
        };
        assert_eq!(v.kind, ViolationKind::UnsourcedRead);
        assert_eq!(v.accesses.len(), 1);
        assert!(v.report.contains("no write ever published"));
    }

    #[test]
    fn ambiguous_values_skip_edges_but_still_certify() {
        // Two stores publish the same value: the read's source cannot be
        // pinned down, so its edges are skipped (no false violation).
        let t = [
            st(0, 0, 0, 0xa, 5),
            st(1, 1, 0, 0xa, 5),
            ld(2, 2, 0, 0xa, 5),
        ];
        let cert = check(&t, &[]).expect("ambiguity is not a violation");
        assert_eq!(cert.ambiguous_reads, 1);
        // A zero-writer competing with the initial value is ambiguous too.
        let t = [st(0, 0, 0, 0xb, 0), ld(1, 1, 0, 0xb, 0)];
        let cert = check(&t, &[]).expect("zero ambiguity tolerated");
        assert_eq!(cert.ambiguous_reads, 1);
    }

    #[test]
    fn rmw_chain_certifies_and_torn_rmw_is_flagged() {
        // Two atomic increments compose: 0->1 then 1->2.
        let t = [
            acc(0, 0, 0, LOCK_ADDR, AccessKind::Rmw { old: 0, new: 1 }),
            acc(1, 1, 0, LOCK_ADDR, AccessKind::Rmw { old: 1, new: 2 }),
        ];
        let cert = check(&t, &[]).expect("chained RMWs are SC");
        assert_eq!(cert.final_memory, BTreeMap::from([(LOCK_ADDR, 2)]));

        // Both observe 0: the second's write is not first in co.
        let t = [
            acc(0, 0, 0, LOCK_ADDR, AccessKind::Rmw { old: 0, new: 1 }),
            acc(1, 1, 0, LOCK_ADDR, AccessKind::Rmw { old: 0, new: 2 }),
        ];
        let err = check(&t, &[]).expect_err("lost update");
        let CheckError::Violation(v) = err else {
            panic!("expected violation, got {err:?}");
        };
        assert_eq!(v.kind, ViolationKind::TornRmw);

        // A store slipping between an RMW's read and write.
        let t = [
            st(0, 0, 0, LOCK_ADDR, 7),
            st(1, 0, 1, LOCK_ADDR, 9),
            acc(2, 1, 0, LOCK_ADDR, AccessKind::Rmw { old: 7, new: 8 }),
        ];
        let err = check(&t, &[]).expect_err("intervening store");
        let CheckError::Violation(v) = err else {
            panic!("expected violation, got {err:?}");
        };
        assert_eq!(v.kind, ViolationKind::TornRmw);
        assert!(v.report.contains("immediate coherence-order predecessor"));
    }

    /// A test-local address distinct from the other tests' addresses.
    const LOCK_ADDR: u64 = 0x40;

    #[test]
    fn duplicate_po_is_malformed() {
        let t = [st(0, 0, 3, 0xa, 1), ld(1, 0, 3, 0xa, 1)];
        let err = check(&t, &[]).expect_err("duplicate po");
        assert!(matches!(err, CheckError::Malformed(_)));
        assert!(err.to_string().contains("program-order index 3"));
    }

    #[test]
    fn bad_idx_is_malformed() {
        let mut a = st(0, 0, 0, 0xa, 1);
        a.idx = 5;
        assert!(matches!(check(&[a], &[]), Err(CheckError::Malformed(_))));
    }

    #[test]
    fn witness_replay_covers_multi_location_history() {
        // A longer interleaving with co chains, fr edges, and an init
        // read, exercising every edge constructor on the success path.
        let t = [
            st(0, 0, 0, 0x10, 1),
            ld(1, 1, 0, 0x10, 0), // init read: fr to the first write
            st(2, 1, 1, 0x18, 3),
            st(3, 0, 1, 0x10, 2), // co successor of idx 0
            ld(4, 1, 2, 0x10, 1), // reads idx 0, fr to idx 3
            ld(5, 0, 2, 0x18, 3), // reads idx 2
        ];
        let cert = check(&t, &[]).expect("consistent history");
        assert_eq!(cert.ambiguous_reads, 0);
        assert_eq!(cert.final_memory, BTreeMap::from([(0x10, 2), (0x18, 3)]));
        let pos = |i: usize| cert.witness.iter().position(|&w| w == i).unwrap();
        assert!(pos(1) < pos(0), "init read precedes the first write");
        assert!(pos(4) < pos(3), "fr orders the read before the next write");
    }
}
