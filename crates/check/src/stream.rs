//! Streaming, windowed SC certification in bounded memory.
//!
//! The batch oracle in [`crate::order`] materializes every access and
//! the whole Shasha–Snir constraint graph before sorting — fine for a
//! million accesses, hopeless for the 100M-access traces a scaled-up
//! run emits. This module certifies the same po ∪ rf ∪ co ∪ fr union
//! incrementally, keeping only a bounded *frontier* live:
//!
//! * Accesses arrive in trace-stream order and are buffered into fixed
//!   size **windows**. When a window fills, its accesses join the live
//!   constraint graph: po edges against each core's carried last access,
//!   co edges by per-address arrival order, and rf/fr edges resolved by
//!   value against the live write records (unique-value writes make the
//!   rf source unambiguous — see DESIGN.md §13).
//! * After each seal the live graph is topologically sorted. A cycle is
//!   reported exactly as the batch checker would report it; otherwise
//!   the *ancestor closure* of the previous window's accesses is
//!   **placed**: appended to the certified witness prefix, replayed
//!   against the running memory image, and retired from the graph. The
//!   closure is what makes the emitted prefix a valid topological
//!   prefix — nothing outside it can be constrained to precede it.
//! * **Retention rule**: a write record stays resolvable until its
//!   coherence successor is at least one full window old; the last
//!   write per address is kept forever (it is what any future read of
//!   that address should see). Everything older is expired, so live
//!   state is O(window + address working set), independent of trace
//!   length.
//! * Each seal emits a [`Checkpoint`] — witness-prefix length, a rolling
//!   FNV-1a hash of the placed order, live-set size — so a verdict on an
//!   arbitrarily long trace is auditable without storing the witness.
//!
//! **Batch is one window**: with `window = usize::MAX` every access is
//! resolved in a single seal against the complete write set, and the
//! construction (edge insertion order, Kahn queue order, replay) is
//! line-for-line the batch algorithm's — [`crate::check`] is now a
//! wrapper over this module, and certificates and violation reports are
//! byte-identical to the historical batch ones.
//!
//! **Windowed divergences** (multi-window mode only, all documented in
//! DESIGN.md §13): the stream must be *causal* (a read arrives after
//! the write it observes) and per-core po-monotone across windows; a
//! read more than a window staler than its address's write history is
//! reported as a violation rather than tolerated; ambiguity counts are
//! frontier-local.
//!
//! Window seals can be parallelized over the deterministic worker pool
//! ([`StreamConfig::jobs`]): read resolution — the dominant cost — is
//! pure lookup against the frozen write records, so shards are merged
//! back in stream order and the verdict is byte-identical at any width.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::io::BufRead;

use bulksc_pool::{run_all, Job};

use crate::order::{find_cycle, violation, CheckError, EdgeKind, ScCertificate, ViolationKind};
use crate::{parse_header_line, parse_trace_line, Access, AccessKind, LifecycleEvent, TraceLine};

/// Tuning for one streaming certification.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Accesses per window. `usize::MAX` makes the whole trace one
    /// window (exact batch semantics, unbounded memory).
    pub window: usize,
    /// Worker-pool width for per-window read resolution. Verdicts are
    /// byte-identical at any width; only wall-clock changes.
    pub jobs: usize,
    /// How many recent chunk-lifecycle events to keep for violation
    /// reports (a ring buffer; the batch wrapper keeps all of them).
    pub lifecycle_cap: usize,
    /// Record the full witness order (only sensible for small traces —
    /// the whole point of windowing is not storing O(n) state).
    pub record_witness: bool,
    /// Keep at most this many per-seal checkpoints.
    pub checkpoint_cap: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 1 << 20,
            jobs: 1,
            lifecycle_cap: 1 << 16,
            record_witness: false,
            checkpoint_cap: 256,
        }
    }
}

impl StreamConfig {
    /// The configuration [`crate::check`] wraps: one window covering the
    /// whole trace, full witness, every lifecycle event retained.
    pub fn batch() -> Self {
        StreamConfig {
            window: usize::MAX,
            jobs: 1,
            lifecycle_cap: usize::MAX,
            record_witness: true,
            checkpoint_cap: 0,
        }
    }

    /// A bounded-memory configuration with the given window size.
    pub fn windowed(window: usize) -> Self {
        StreamConfig {
            window: window.max(1),
            ..StreamConfig::default()
        }
    }

    /// Set the worker-pool width for window seals.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

/// One audited point of a streaming certification: the state of the
/// certified prefix right after a window seal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Which window this seal closed (0-based).
    pub window: u64,
    /// Accesses placed in the certified witness prefix so far.
    pub placed: usize,
    /// Accesses still live (unplaced) after this seal.
    pub live: usize,
    /// Write records still resolvable after expiry.
    pub write_records: usize,
    /// Rolling FNV-1a hash over the placed witness order.
    pub witness_hash: u64,
}

/// Proof that a streamed execution is SC, in bounded space: counters,
/// the final memory image from the incremental witness replay, and the
/// per-seal checkpoints. The full witness order is only present when
/// [`StreamConfig::record_witness`] was set.
#[derive(Clone, Debug)]
pub struct StreamCertificate {
    /// Accesses certified.
    pub accesses: usize,
    /// Witness edges discharged (po + rf + co + fr, including edges
    /// whose source was already placed when the sink arrived).
    pub edges: usize,
    /// Reads whose rf source was ambiguous among the live write records.
    pub ambiguous_reads: usize,
    /// Windows sealed (including the final partial one).
    pub windows: u64,
    /// Peak live (unplaced) access count across all seals — the memory
    /// bound actually achieved, ≤ 2 windows by construction.
    pub peak_live: usize,
    /// Peak live write-record count across all seals.
    pub peak_write_records: usize,
    /// FNV-1a hash over the full placed witness order.
    pub witness_hash: u64,
    /// Memory after replaying the witness (addresses written only).
    pub final_memory: BTreeMap<u64, u64>,
    /// Per-seal audit trail (capped at `checkpoint_cap`).
    pub checkpoints: Vec<Checkpoint>,
    /// The witness order, if recording was on.
    pub witness: Option<Vec<usize>>,
}

impl StreamCertificate {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "SC-certified (streaming): {} accesses in {} windows, {} witness \
             edges, {} ambiguous reads, peak {} live accesses / {} write \
             records, {} locations written, witness hash {:016x}",
            self.accesses,
            self.windows,
            self.edges,
            self.ambiguous_reads,
            self.peak_live,
            self.peak_write_records,
            self.final_memory.len(),
            self.witness_hash
        )
    }

    /// Convert to the batch certificate type.
    ///
    /// # Panics
    ///
    /// Panics if witness recording was off.
    pub fn into_sc(self) -> ScCertificate {
        ScCertificate {
            accesses: self.accesses,
            edges: self.edges,
            ambiguous_reads: self.ambiguous_reads,
            witness: self.witness.expect("witness recording was off"),
            final_memory: self.final_memory,
        }
    }
}

/// Why a JSONL streaming check could not run to a verdict.
#[derive(Clone, Debug)]
pub enum StreamError {
    /// The input could not be read or parsed (message names the origin
    /// and 1-based line).
    Input(String),
    /// The checker reached a verdict of "not SC" (or a malformed trace).
    Check(CheckError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Input(m) => f.write_str(m),
            StreamError::Check(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for StreamError {}

/// How a read's rf source was pinned down, for the incremental replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Resolution {
    /// Not a read, or not resolved yet.
    Unresolved,
    /// Unique source (a write or the virtual initial store): the replay
    /// must observe exactly the read's value.
    Pinned,
    /// Ambiguous source: edges skipped, replay check skipped.
    Ambiguous,
}

/// A live (unplaced) access.
struct LiveAccess {
    a: Access,
    res: Resolution,
    window: u64,
}

/// A live write record: resolvable as an rf source until expired.
struct WriteRec {
    a: Access,
    rank: u64,
    window: u64,
    placed: bool,
    /// Reads that resolved rf to this write while it was the last write
    /// at its address: their fr edge is deferred until the coherence
    /// successor arrives.
    readers: Vec<usize>,
}

/// Per-address frontier state.
#[derive(Default)]
struct AddrState {
    /// Live records in coherence (= arrival) order. Expiry pops from the
    /// front; the back (the current last write) is never expired.
    recs: VecDeque<WriteRec>,
    /// Total writes ever seen at this address (the next co rank).
    writes: u64,
    /// Records dropped by the retention rule.
    expired: u64,
    /// Copy of the first write ever (for torn-RMW / stale-init reports).
    first_write: Option<Access>,
    /// Whether that first write is already in the certified prefix.
    first_placed: bool,
    /// Reads of the initial 0 that arrived before any write: their fr
    /// edge is deferred until the first write (if any) arrives.
    init_readers: Vec<usize>,
}

/// Outcome of resolving one read against the frozen write records. Pure
/// data so window shards can compute these in parallel; they are applied
/// serially in stream order.
enum ReadOutcome {
    Ambiguous,
    /// Init read, no write at the address yet: register for a deferred
    /// fr edge.
    InitNoWriteYet,
    /// Init read: fr edge to the (unplaced) first write.
    InitEdge {
        first: usize,
    },
    /// An RMW that read the initial value and is itself the first write.
    InitRmwOk,
    /// Unique rf source `w`, plus what the fr edge should be.
    RfEdge {
        w: usize,
        w_placed: bool,
        fr: FrApply,
    },
    // Violations:
    Unsourced {
        stale: u64,
    },
    StaleInit {
        first: Access,
    },
    Stale {
        value: u64,
        succ: Access,
    },
    TornRmwInit {
        first: Option<Access>,
    },
    TornRmw {
        w: Access,
    },
}

enum FrApply {
    /// No fr edge (the read's own write is the co successor).
    None,
    /// fr edge to this (unplaced) successor write.
    Edge(usize),
    /// No successor yet: register on the source write's reader list.
    Register,
}

/// Resolve one read against the live write records. Pure: no `&mut`
/// anywhere, so window shards run it concurrently and the merged result
/// is independent of pool width.
fn resolve_read(
    addrs: &HashMap<u64, AddrState>,
    writers: &HashMap<(u64, u64), Vec<usize>>,
    a: &Access,
) -> ReadOutcome {
    let v = a.observed().expect("resolve_read takes reads");
    let is_rmw = matches!(a.kind, AccessKind::Rmw { .. });
    let st = addrs.get(&a.addr);
    // An RMW whose new value equals its old one would otherwise list
    // itself as a candidate source.
    let candidates: Vec<usize> = writers
        .get(&(a.addr, v))
        .map(|c| c.iter().copied().filter(|&w| w != a.idx).collect())
        .unwrap_or_default();
    let from_init_possible = v == 0;
    match (candidates.len(), from_init_possible) {
        (0, false) => ReadOutcome::Unsourced {
            stale: st.map_or(0, |s| s.expired),
        },
        (0, true) => {
            let first = st.and_then(|s| s.first_write);
            if is_rmw {
                if first.map(|f| f.idx) == Some(a.idx) {
                    ReadOutcome::InitRmwOk
                } else {
                    ReadOutcome::TornRmwInit { first }
                }
            } else if let Some(f) = first {
                if st.expect("first write implies state").first_placed {
                    ReadOutcome::StaleInit { first: f }
                } else {
                    ReadOutcome::InitEdge { first: f.idx }
                }
            } else {
                ReadOutcome::InitNoWriteYet
            }
        }
        (1, false) => {
            let w = candidates[0];
            let s = st.expect("a live candidate implies address state");
            let i = s
                .recs
                .binary_search_by_key(&w, |r| r.a.idx)
                .expect("live writer has a live record");
            let rec = &s.recs[i];
            if is_rmw {
                let own = s
                    .recs
                    .binary_search_by_key(&a.idx, |r| r.a.idx)
                    .map(|j| s.recs[j].rank)
                    .expect("an RMW's own write has a live record");
                if own != rec.rank + 1 {
                    return ReadOutcome::TornRmw { w: rec.a };
                }
            }
            let fr = match s.recs.get(i + 1) {
                None => FrApply::Register,
                Some(succ) if succ.a.idx == a.idx => FrApply::None,
                Some(succ) if succ.placed => {
                    return ReadOutcome::Stale {
                        value: v,
                        succ: succ.a,
                    }
                }
                Some(succ) => FrApply::Edge(succ.a.idx),
            };
            ReadOutcome::RfEdge {
                w,
                w_placed: rec.placed,
                fr,
            }
        }
        _ => ReadOutcome::Ambiguous,
    }
}

/// The streaming checker: push accesses (and lifecycle context) in
/// trace-stream order, then [`StreamChecker::finish`] for the verdict.
/// Violations and malformed input surface from `push` as soon as the
/// offending window seals.
pub struct StreamChecker {
    cfg: StreamConfig,
    /// Total accesses pushed (the next expected `idx`).
    total: usize,
    /// The window currently filling.
    incoming: Vec<Access>,
    cur_window: u64,
    /// Live (unplaced) accesses, ascending by stream index; `adj` is the
    /// edge list over the same slots.
    arena: Vec<LiveAccess>,
    adj: Vec<Vec<(usize, EdgeKind)>>,
    /// Stream index → live slot.
    slot_of: HashMap<usize, usize>,
    /// Per-core last sealed access (the po frontier) and whether it has
    /// been placed.
    tails: HashMap<u32, (Access, bool)>,
    addrs: HashMap<u64, AddrState>,
    /// (addr, value) → live writers of that value, ascending.
    writers: HashMap<(u64, u64), Vec<usize>>,
    /// The incremental witness-replay memory image.
    mem: BTreeMap<u64, u64>,
    lifecycle: VecDeque<LifecycleEvent>,
    edges: usize,
    ambiguous: usize,
    placed: usize,
    witness_hash: u64,
    witness: Option<Vec<usize>>,
    checkpoints: Vec<Checkpoint>,
    windows_sealed: u64,
    peak_live: usize,
    peak_recs: usize,
    failed: Option<CheckError>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn add_edge(
    adj: &mut [Vec<(usize, EdgeKind)>],
    edges: &mut usize,
    from: usize,
    to: usize,
    kind: EdgeKind,
) {
    adj[from].push((to, kind));
    *edges += 1;
}

impl StreamChecker {
    /// A fresh checker.
    pub fn new(cfg: StreamConfig) -> StreamChecker {
        StreamChecker {
            cfg,
            total: 0,
            incoming: Vec::new(),
            cur_window: 0,
            arena: Vec::new(),
            adj: Vec::new(),
            slot_of: HashMap::new(),
            tails: HashMap::new(),
            addrs: HashMap::new(),
            writers: HashMap::new(),
            mem: BTreeMap::new(),
            lifecycle: VecDeque::new(),
            edges: 0,
            ambiguous: 0,
            placed: 0,
            witness_hash: FNV_OFFSET,
            witness: None,
            checkpoints: Vec::new(),
            windows_sealed: 0,
            peak_live: 0,
            peak_recs: 0,
            failed: None,
        }
    }

    /// Feed one access. Seals (and certifies) a window whenever
    /// [`StreamConfig::window`] accesses have accumulated, so an error
    /// may describe any access of the window just sealed.
    pub fn push(&mut self, a: Access) -> Result<(), CheckError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if a.idx != self.total {
            let e = CheckError::Malformed(format!(
                "access at stream position {} carries idx {}",
                self.total, a.idx
            ));
            self.failed = Some(e.clone());
            return Err(e);
        }
        self.total += 1;
        self.incoming.push(a);
        if self.incoming.len() >= self.cfg.window {
            self.seal(false).inspect_err(|e| {
                self.failed = Some(e.clone());
            })?;
        }
        Ok(())
    }

    /// Feed one chunk-lifecycle event (context for violation reports).
    /// Kept in a ring of the most recent [`StreamConfig::lifecycle_cap`]
    /// events.
    pub fn push_lifecycle(&mut self, e: LifecycleEvent) {
        if self.cfg.lifecycle_cap == 0 {
            return;
        }
        if self.lifecycle.len() >= self.cfg.lifecycle_cap {
            self.lifecycle.pop_front();
        }
        self.lifecycle.push_back(e);
    }

    /// Seal the final (partial) window, place everything still live, and
    /// return the certificate.
    pub fn finish(mut self) -> Result<StreamCertificate, CheckError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        if self.cfg.record_witness && self.witness.is_none() {
            self.witness = Some(Vec::new());
        }
        self.seal(true)?;
        Ok(StreamCertificate {
            accesses: self.total,
            edges: self.edges,
            ambiguous_reads: self.ambiguous,
            windows: self.windows_sealed,
            peak_live: self.peak_live,
            peak_write_records: self.peak_recs,
            witness_hash: self.witness_hash,
            final_memory: self.mem,
            checkpoints: self.checkpoints,
            witness: self.witness,
        })
    }

    fn violate(
        &self,
        kind: ViolationKind,
        offenders: Vec<Access>,
        edge_kinds: Vec<EdgeKind>,
        headline: String,
    ) -> CheckError {
        let life: Vec<LifecycleEvent> = self.lifecycle.iter().copied().collect();
        violation(offenders, &life, kind, edge_kinds, headline)
    }

    /// Certify one window: admit the buffered accesses into the live
    /// graph, sort, place the ancestor closure of the previous window
    /// (everything, when `finalize`), expire stale write records, and
    /// checkpoint.
    fn seal(&mut self, finalize: bool) -> Result<(), CheckError> {
        let w = self.cur_window;
        let new: Vec<Access> = std::mem::take(&mut self.incoming);
        let first_new_slot = self.arena.len();

        // 1. Admit into the live arena (slots stay ascending by idx).
        for a in &new {
            let slot = self.arena.len();
            self.slot_of.insert(a.idx, slot);
            self.arena.push(LiveAccess {
                a: *a,
                res: Resolution::Unresolved,
                window: w,
            });
            self.adj.push(Vec::new());
        }

        // 2. po: per-core program order within the window, chained to the
        // carried per-core tail across windows.
        let mut per_core: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for slot in first_new_slot..self.arena.len() {
            per_core
                .entry(self.arena[slot].a.core)
                .or_default()
                .push(slot);
        }
        for (core, slots) in per_core.iter_mut() {
            slots.sort_by_key(|&s| self.arena[s].a.po);
            if let Some((tail, tail_placed)) = self.tails.get(core) {
                let first = self.arena[slots[0]].a;
                if first.po == tail.po {
                    return Err(CheckError::Malformed(format!(
                        "core {core} has two accesses with program-order index {}",
                        first.po
                    )));
                }
                if first.po < tail.po {
                    return Err(CheckError::Malformed(format!(
                        "core {core} access with program-order index {} arrived \
                         after index {} was sealed in an earlier window: windowed \
                         checking requires per-core po-monotone streams",
                        first.po, tail.po
                    )));
                }
                if *tail_placed {
                    self.edges += 1; // already satisfied by the prefix
                } else {
                    let from = self.slot_of[&tail.idx];
                    add_edge(&mut self.adj, &mut self.edges, from, slots[0], EdgeKind::Po);
                }
            }
            for pair in slots.windows(2) {
                let (a, b) = (self.arena[pair[0]].a, self.arena[pair[1]].a);
                if a.po == b.po {
                    return Err(CheckError::Malformed(format!(
                        "core {} has two accesses with program-order index {}",
                        a.core, a.po
                    )));
                }
                add_edge(
                    &mut self.adj,
                    &mut self.edges,
                    pair[0],
                    pair[1],
                    EdgeKind::Po,
                );
            }
            let last = self.arena[*slots.last().expect("nonempty group")].a;
            self.tails.insert(*core, (last, false));
        }

        // 3. co + write records, in arrival (= coherence) order. Also
        // discharges fr edges that were deferred until a coherence
        // successor existed.
        for slot in first_new_slot..self.arena.len() {
            let a = self.arena[slot].a;
            let Some(v) = a.published() else { continue };
            let st = self.addrs.entry(a.addr).or_default();
            let rank = st.writes;
            st.writes += 1;
            if rank == 0 {
                st.first_write = Some(a);
                for r in std::mem::take(&mut st.init_readers) {
                    match self.slot_of.get(&r) {
                        Some(&rs) => {
                            add_edge(&mut self.adj, &mut self.edges, rs, slot, EdgeKind::Fr)
                        }
                        None => self.edges += 1, // reader already placed
                    }
                }
            }
            if let Some(prev) = st.recs.back_mut() {
                for r in std::mem::take(&mut prev.readers) {
                    match self.slot_of.get(&r) {
                        Some(&rs) => {
                            add_edge(&mut self.adj, &mut self.edges, rs, slot, EdgeKind::Fr)
                        }
                        None => self.edges += 1, // reader already placed
                    }
                }
                if prev.placed {
                    self.edges += 1; // co edge satisfied by the prefix
                } else {
                    let from = self.slot_of[&prev.a.idx];
                    add_edge(&mut self.adj, &mut self.edges, from, slot, EdgeKind::Co);
                }
            }
            st.recs.push_back(WriteRec {
                a,
                rank,
                window: w,
                placed: false,
                readers: Vec::new(),
            });
            self.writers.entry((a.addr, v)).or_default().push(a.idx);
        }

        // 4. rf / fr: resolve the window's reads against the live write
        // records. Resolution is pure lookup, so it shards across the
        // worker pool; outcomes are applied serially in stream order, so
        // edges, ambiguity counts, and the first violation are identical
        // at any pool width.
        let reads: Vec<(usize, Access)> = (first_new_slot..self.arena.len())
            .filter(|&s| self.arena[s].a.observed().is_some())
            .map(|s| (s, self.arena[s].a))
            .collect();
        let outcomes: Vec<ReadOutcome> = if self.cfg.jobs > 1 && reads.len() > 1 {
            let addrs = &self.addrs;
            let writers = &self.writers;
            let shard = reads.len().div_ceil(self.cfg.jobs);
            let jobs: Vec<Job<Vec<ReadOutcome>>> = reads
                .chunks(shard)
                .enumerate()
                .map(|(i, chunk)| {
                    Job::new(format!("stream window {w} shard {i}"), move || {
                        chunk
                            .iter()
                            .map(|(_, a)| resolve_read(addrs, writers, a))
                            .collect()
                    })
                })
                .collect();
            run_all(self.cfg.jobs, jobs).into_iter().flatten().collect()
        } else {
            reads
                .iter()
                .map(|(_, a)| resolve_read(&self.addrs, &self.writers, a))
                .collect()
        };
        for (&(slot, a), outcome) in reads.iter().zip(outcomes) {
            let v = a.observed().expect("reads observe");
            match outcome {
                ReadOutcome::Ambiguous => {
                    self.ambiguous += 1;
                    self.arena[slot].res = Resolution::Ambiguous;
                }
                ReadOutcome::InitNoWriteYet => {
                    self.arena[slot].res = Resolution::Pinned;
                    self.addrs
                        .entry(a.addr)
                        .or_default()
                        .init_readers
                        .push(a.idx);
                }
                ReadOutcome::InitEdge { first } => {
                    self.arena[slot].res = Resolution::Pinned;
                    let to = self.slot_of[&first];
                    add_edge(&mut self.adj, &mut self.edges, slot, to, EdgeKind::Fr);
                }
                ReadOutcome::InitRmwOk => {
                    self.arena[slot].res = Resolution::Pinned;
                }
                ReadOutcome::RfEdge { w, w_placed, fr } => {
                    self.arena[slot].res = Resolution::Pinned;
                    if w_placed {
                        self.edges += 1; // rf satisfied by the prefix
                    } else {
                        let from = self.slot_of[&w];
                        add_edge(&mut self.adj, &mut self.edges, from, slot, EdgeKind::Rf);
                    }
                    match fr {
                        FrApply::None => {}
                        FrApply::Edge(succ) => {
                            let to = self.slot_of[&succ];
                            add_edge(&mut self.adj, &mut self.edges, slot, to, EdgeKind::Fr);
                        }
                        FrApply::Register => {
                            let st = self.addrs.get_mut(&a.addr).expect("writer implies state");
                            let i = st
                                .recs
                                .binary_search_by_key(&w, |r| r.a.idx)
                                .expect("resolved writer is live");
                            st.recs[i].readers.push(a.idx);
                        }
                    }
                }
                ReadOutcome::Unsourced { stale } => {
                    let headline = if stale == 0 {
                        format!(
                            "a read observed value {v} at 0x{:x}, but no write ever \
                             published that value there (and memory starts at 0)",
                            a.addr
                        )
                    } else {
                        format!(
                            "a read observed value {v} at 0x{:x}, but no live write \
                             published that value there (memory starts at 0; {stale} \
                             earlier writes at this address were already retired \
                             beyond the streaming window and could have published it)",
                            a.addr
                        )
                    };
                    return Err(self.violate(
                        ViolationKind::UnsourcedRead,
                        vec![a],
                        Vec::new(),
                        headline,
                    ));
                }
                ReadOutcome::StaleInit { first } => {
                    return Err(self.violate(
                        ViolationKind::StaleRead,
                        vec![first, a],
                        Vec::new(),
                        format!(
                            "a read observed the initial value 0 at 0x{:x}, but that \
                             address's first write is already in the certified witness \
                             prefix: the read is stale by more than a checking window",
                            a.addr
                        ),
                    ));
                }
                ReadOutcome::Stale { value, succ } => {
                    return Err(self.violate(
                        ViolationKind::StaleRead,
                        vec![succ, a],
                        Vec::new(),
                        format!(
                            "a read observed value {value} at 0x{:x}, but the write \
                             overwriting that value is already in the certified witness \
                             prefix: the read is stale by more than a checking window",
                            a.addr
                        ),
                    ));
                }
                ReadOutcome::TornRmwInit { first } => {
                    let mut set = vec![a];
                    if let Some(f) = first {
                        set.insert(0, f);
                    }
                    return Err(self.violate(
                        ViolationKind::TornRmw,
                        set,
                        Vec::new(),
                        "a read-modify-write observed the initial value but \
                         its own write is not first in coherence order: \
                         another write intervened"
                            .to_string(),
                    ));
                }
                ReadOutcome::TornRmw { w } => {
                    return Err(self.violate(
                        ViolationKind::TornRmw,
                        vec![w, a],
                        Vec::new(),
                        "a read-modify-write read from a write that is not its \
                         immediate coherence-order predecessor: another write \
                         intervened between its read and its write"
                            .to_string(),
                    ));
                }
            }
        }

        // 5. Kahn's algorithm over the live graph; leftovers are a cycle.
        let n = self.arena.len();
        let mut indeg = vec![0usize; n];
        for out in &self.adj {
            for &(to, _) in out {
                indeg[to] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            topo.push(u);
            for &(to, _) in &self.adj[u] {
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push_back(to);
                }
            }
        }
        if topo.len() < n {
            let (cycle, kinds) = find_cycle(&self.adj, &indeg);
            let offenders: Vec<Access> = cycle.iter().map(|&s| self.arena[s].a).collect();
            return Err(self.violate(
                ViolationKind::Cycle,
                offenders,
                kinds,
                "po ∪ rf ∪ co ∪ fr is cyclic: no sequentially consistent \
                 interleaving explains the observed values"
                    .to_string(),
            ));
        }

        self.peak_live = self.peak_live.max(n);
        let total_recs: usize = self.addrs.values().map(|s| s.recs.len()).sum();
        self.peak_recs = self.peak_recs.max(total_recs);

        // 6. Place the ancestor closure of everything older than the
        // current window (all of it, on finalize): a valid topological
        // prefix, emitted in topo order, replayed, and retired.
        let mut in_set = vec![finalize; n];
        if !finalize {
            let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (u, out) in self.adj.iter().enumerate() {
                for &(to, _) in out {
                    radj[to].push(u);
                }
            }
            let mut stack: Vec<usize> = (0..n).filter(|&s| self.arena[s].window < w).collect();
            for &s in &stack {
                in_set[s] = true;
            }
            while let Some(u) = stack.pop() {
                for &p in &radj[u] {
                    if !in_set[p] {
                        in_set[p] = true;
                        stack.push(p);
                    }
                }
            }
        }
        for &u in &topo {
            if !in_set[u] {
                continue;
            }
            let la = &self.arena[u];
            let a = la.a;
            if la.res == Resolution::Pinned {
                let v = a.observed().expect("pinned implies read");
                let current = self.mem.get(&a.addr).copied().unwrap_or(0);
                if current != v {
                    return Err(CheckError::Malformed(format!(
                        "witness replay mismatch at access {}: observed {v} at \
                         0x{:x} but the witness memory holds {current} (oracle \
                         invariant broken)",
                        a.idx, a.addr
                    )));
                }
            }
            if let Some(v) = a.published() {
                self.mem.insert(a.addr, v);
                let st = self.addrs.get_mut(&a.addr).expect("write implies state");
                let i = st
                    .recs
                    .binary_search_by_key(&a.idx, |r| r.a.idx)
                    .expect("placed write has a live record");
                st.recs[i].placed = true;
                if st.first_write.map(|f| f.idx) == Some(a.idx) {
                    st.first_placed = true;
                }
            }
            if let Some((tail, tail_placed)) = self.tails.get_mut(&a.core) {
                if tail.idx == a.idx {
                    *tail_placed = true;
                }
            }
            self.placed += 1;
            self.witness_hash = (self.witness_hash ^ a.idx as u64).wrapping_mul(FNV_PRIME);
            if let Some(witness) = &mut self.witness {
                witness.push(a.idx);
            }
        }

        // Compact: rebuild the arena and edge lists over the survivors.
        let mut remap = vec![usize::MAX; n];
        let mut arena = Vec::with_capacity(n.saturating_sub(self.placed.min(n)));
        let mut adj = Vec::new();
        self.slot_of.clear();
        for (u, la) in self.arena.drain(..).enumerate() {
            if in_set[u] {
                continue;
            }
            remap[u] = arena.len();
            self.slot_of.insert(la.a.idx, arena.len());
            arena.push(la);
        }
        for (u, out) in self.adj.drain(..).enumerate() {
            if remap[u] == usize::MAX {
                continue;
            }
            let filtered: Vec<(usize, EdgeKind)> = out
                .into_iter()
                .filter_map(|(to, k)| {
                    // Edges from a survivor into the placed set cannot
                    // exist (the placed set is ancestor-closed).
                    debug_assert!(remap[to] != usize::MAX, "edge into the placed prefix");
                    (remap[to] != usize::MAX).then_some((remap[to], k))
                })
                .collect();
            adj.push(filtered);
        }
        self.arena = arena;
        self.adj = adj;

        // 7. Retention: expire write records whose coherence successor is
        // at least one full window old; the last write per address stays
        // resolvable forever.
        if !finalize {
            for (&addr, st) in self.addrs.iter_mut() {
                while st.recs.len() > 1 && st.recs[1].window < w {
                    let dead = st.recs.pop_front().expect("len checked");
                    st.expired += 1;
                    let v = dead.a.published().expect("records are writes");
                    if let Some(list) = self.writers.get_mut(&(addr, v)) {
                        list.retain(|&g| g != dead.a.idx);
                        if list.is_empty() {
                            self.writers.remove(&(addr, v));
                        }
                    }
                }
            }
        }

        // 8. Checkpoint the certified prefix.
        self.windows_sealed += 1;
        if self.checkpoints.len() < self.cfg.checkpoint_cap {
            self.checkpoints.push(Checkpoint {
                window: w,
                placed: self.placed,
                live: self.arena.len(),
                write_records: self.addrs.values().map(|s| s.recs.len()).sum(),
                witness_hash: self.witness_hash,
            });
        }
        self.cur_window += 1;
        Ok(())
    }
}

/// Run the streaming checker over an in-memory access slice (the
/// streaming counterpart of [`crate::check`]).
pub fn check_stream(
    accesses: &[Access],
    lifecycle: &[LifecycleEvent],
    cfg: StreamConfig,
) -> Result<StreamCertificate, CheckError> {
    let mut checker = StreamChecker::new(cfg);
    for e in lifecycle {
        checker.push_lifecycle(*e);
    }
    for a in accesses {
        checker.push(*a)?;
    }
    checker.finish()
}

/// Certify a JSONL event stream line-by-line from any [`BufRead`]: the
/// whole-trace string, the access vector, and the full constraint graph
/// are never materialized. `origin` (a path, `"-"`, a label) is quoted
/// with a 1-based line number in every input error.
pub fn check_jsonl_reader<R: BufRead>(
    mut r: R,
    origin: &str,
    cfg: StreamConfig,
) -> Result<StreamCertificate, StreamError> {
    let _prof = bulksc_prof::scope(bulksc_prof::Phase::Oracle);
    let mut checker = StreamChecker::new(cfg);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut count = 0usize;
    loop {
        line.clear();
        let n = r.read_line(&mut line).map_err(|e| {
            StreamError::Input(format!("{origin}: read error after line {lineno}: {e}"))
        })?;
        if n == 0 {
            break;
        }
        lineno += 1;
        if lineno == 1 {
            parse_header_line(line.trim_end(), origin).map_err(StreamError::Input)?;
            continue;
        }
        match parse_trace_line(line.trim_end(), lineno, origin).map_err(StreamError::Input)? {
            TraceLine::Access(mut a) => {
                a.idx = count;
                count += 1;
                checker.push(a).map_err(StreamError::Check)?;
            }
            TraceLine::Lifecycle(e) => checker.push_lifecycle(e),
            TraceLine::Skip => {}
        }
    }
    if lineno == 0 {
        return Err(StreamError::Input(format!("{origin}: empty trace")));
    }
    checker.finish().map_err(StreamError::Check)
}

/// Certify a BTF artifact with decode and check overlapped: a dedicated
/// decode thread parses blocks and classifies events
/// ([`crate::classify_event`]), shipping plain-data [`TraceLine`] batches
/// over a bounded channel while this thread assigns stream positions and
/// seals windows. Memory stays flat — at most `channel depth + 1` decoded
/// blocks exist at once — and the JSONL and BTF paths see byte-for-byte
/// the same access stream, because both classify through the same policy
/// function.
pub fn check_btf_reader<R: std::io::Read + Send>(
    r: R,
    origin: &str,
    cfg: StreamConfig,
) -> Result<StreamCertificate, StreamError> {
    let _prof = bulksc_prof::scope(bulksc_prof::Phase::Oracle);
    let mut checker = StreamChecker::new(cfg);
    let mut count = 0usize;
    let fed = &mut checker;
    std::thread::scope(|scope| -> Result<(), StreamError> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Result<Vec<TraceLine>, String>>(8);
        scope.spawn(move || {
            let mut reader = match bulksc_trace::BtfReader::new(r) {
                Ok(reader) => reader,
                Err(e) => {
                    let _ = tx.send(Err(e.to_string()));
                    return;
                }
            };
            loop {
                match reader.next_block() {
                    Ok(Some(block)) => {
                        let lines: Vec<TraceLine> = block
                            .iter()
                            .map(|(cycle, ev)| crate::classify_event(*cycle, ev))
                            .collect();
                        if tx.send(Ok(lines)).is_err() {
                            return; // checker bailed out; stop decoding
                        }
                    }
                    Ok(None) => return,
                    Err(e) => {
                        let _ = tx.send(Err(e.to_string()));
                        return;
                    }
                }
            }
        });
        for batch in rx {
            let batch = batch.map_err(|e| StreamError::Input(format!("{origin}: {e}")))?;
            for line in batch {
                match line {
                    TraceLine::Access(mut a) => {
                        a.idx = count;
                        count += 1;
                        fed.push(a).map_err(StreamError::Check)?;
                    }
                    TraceLine::Lifecycle(e) => fed.push_lifecycle(e),
                    TraceLine::Skip => {}
                }
            }
        }
        Ok(())
    })?;
    checker.finish().map_err(StreamError::Check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use std::io::Cursor;

    /// Synthesize a legal (SC by construction) interleaved trace with the
    /// same shape as the million-access soak test: unique-value stores,
    /// loads of the current memory value, periodic RMWs.
    fn synth(n: usize, cores: u32, words: u64) -> Vec<Access> {
        let mut mem: HashMap<u64, u64> = HashMap::new();
        let mut po = vec![0u64; cores as usize];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let core = (i % cores as usize) as u32;
            let addr = (i as u64).wrapping_mul(0x9e37_79b9) % words * 8;
            let kind = if i % 35 == 4 {
                let old = mem.get(&addr).copied().unwrap_or(0);
                mem.insert(addr, i as u64 + 1);
                AccessKind::Rmw {
                    old,
                    new: i as u64 + 1,
                }
            } else if i % 5 < 2 {
                mem.insert(addr, i as u64 + 1);
                AccessKind::Store {
                    value: i as u64 + 1,
                }
            } else {
                AccessKind::Load {
                    value: mem.get(&addr).copied().unwrap_or(0),
                }
            };
            out.push(Access {
                idx: i,
                core,
                seq: (i / 100) as u64,
                po: po[core as usize],
                addr,
                kind,
                retired_at: 10 + i as u64,
                emitted_at: 20 + i as u64,
            });
            po[core as usize] += 1;
        }
        out
    }

    #[test]
    fn windowed_verdict_matches_batch_on_a_legal_trace() {
        let t = synth(8_000, 4, 32);
        let batch = check(&t, &[]).expect("legal by construction");
        let win = check_stream(&t, &[], StreamConfig::windowed(512))
            .expect("windowed certification agrees");
        assert_eq!(win.accesses, batch.accesses);
        assert_eq!(win.ambiguous_reads, batch.ambiguous_reads);
        assert_eq!(win.final_memory, batch.final_memory);
        assert!(win.windows > 1, "trace spans many windows");
        assert!(
            win.peak_live <= 2 * 512,
            "frontier bounded by two windows, got {}",
            win.peak_live
        );
        assert!(win.witness.is_none(), "windowed mode stores no witness");
    }

    #[test]
    fn peak_memory_is_flat_in_trace_length() {
        let short = check_stream(&synth(4_000, 4, 32), &[], StreamConfig::windowed(256))
            .expect("short certifies");
        let long = check_stream(&synth(16_000, 4, 32), &[], StreamConfig::windowed(256))
            .expect("long certifies");
        assert!(long.windows > 3 * short.windows);
        assert!(
            long.peak_live <= 2 * 256 && short.peak_live <= 2 * 256,
            "live set bounded by the window, not the trace: {} vs {}",
            short.peak_live,
            long.peak_live
        );
        assert!(
            long.peak_write_records <= short.peak_write_records + 64,
            "write records do not grow with trace length: {} vs {}",
            short.peak_write_records,
            long.peak_write_records
        );
    }

    #[test]
    fn pool_width_does_not_change_the_verdict() {
        let t = synth(6_000, 4, 32);
        let one = check_stream(&t, &[], StreamConfig::windowed(512)).expect("jobs=1");
        let four = check_stream(&t, &[], StreamConfig::windowed(512).with_jobs(4)).expect("jobs=4");
        assert_eq!(one.witness_hash, four.witness_hash);
        assert_eq!(one.edges, four.edges);
        assert_eq!(one.ambiguous_reads, four.ambiguous_reads);
        assert_eq!(one.checkpoints, four.checkpoints);
        assert_eq!(one.final_memory, four.final_memory);
    }

    #[test]
    fn single_window_equals_batch_including_the_witness() {
        let t = synth(2_000, 4, 16);
        let batch = check(&t, &[]).expect("legal");
        let one = check_stream(&t, &[], StreamConfig::batch()).expect("single window");
        assert_eq!(one.witness.as_deref(), Some(batch.witness.as_slice()));
        assert_eq!(one.edges, batch.edges);
        assert_eq!(one.windows, 1);
    }

    #[test]
    fn stale_init_read_is_rejected_in_windowed_mode() {
        // A read of the initial 0 arriving two windows after the first
        // write was placed: batch would certify (order the read first),
        // windowed mode reports it — the documented divergence.
        let mk = |idx, core, po, addr, kind| Access {
            idx,
            core,
            seq: 0,
            po,
            addr,
            kind,
            retired_at: 10 + idx as u64,
            emitted_at: 20 + idx as u64,
        };
        let t = [
            mk(0, 0, 0, 0x8, AccessKind::Store { value: 1 }),
            mk(1, 0, 1, 0x10, AccessKind::Store { value: 2 }),
            mk(2, 0, 2, 0x18, AccessKind::Store { value: 3 }),
            mk(3, 1, 0, 0x8, AccessKind::Load { value: 0 }),
        ];
        check(&t, &[]).expect("batch orders the init read first");
        let err = check_stream(&t, &[], StreamConfig::windowed(1)).expect_err("stale in windows");
        let CheckError::Violation(v) = err else {
            panic!("expected violation, got {err:?}");
        };
        assert_eq!(v.kind, ViolationKind::StaleRead);
        assert!(v.report.contains("certified witness prefix"));
    }

    #[test]
    fn po_regression_across_windows_is_malformed() {
        let mut t = synth(4, 1, 4);
        t[2].po = 1; // duplicates the sealed window's tail po
        let err = check_stream(&t, &[], StreamConfig::windowed(2)).expect_err("duplicate po");
        assert!(matches!(err, CheckError::Malformed(_)));
        assert!(err
            .to_string()
            .contains("two accesses with program-order index 1"));
        let mut t = synth(4, 1, 4);
        t[3].po = 1; // older than the sealed tail, but not a duplicate
        let err = check_stream(&t, &[], StreamConfig::windowed(3)).expect_err("po regressed");
        assert!(err.to_string().contains("po-monotone"));
    }

    #[test]
    fn checkpoints_are_capped_and_monotone() {
        let t = synth(4_000, 4, 32);
        let mut cfg = StreamConfig::windowed(256);
        cfg.checkpoint_cap = 4;
        let cert = check_stream(&t, &[], cfg).expect("certifies");
        assert_eq!(cert.checkpoints.len(), 4);
        for pair in cert.checkpoints.windows(2) {
            assert!(pair[0].window < pair[1].window);
            assert!(pair[0].placed <= pair[1].placed);
        }
        assert_eq!(cert.checkpoints[0].window, 0);
    }

    #[test]
    fn violations_inside_a_window_match_batch_reports() {
        // The forbidden SB outcome, streamed one access per push.
        let mk = |idx, core, po, addr, value, store| Access {
            idx,
            core,
            seq: 0,
            po,
            addr,
            kind: if store {
                AccessKind::Store { value }
            } else {
                AccessKind::Load { value }
            },
            retired_at: 10 + idx as u64,
            emitted_at: 20 + idx as u64,
        };
        let t = [
            mk(0, 0, 0, 0xa, 1, true),
            mk(1, 0, 1, 0xb, 0, false),
            mk(2, 1, 0, 0xb, 2, true),
            mk(3, 1, 1, 0xa, 0, false),
        ];
        let batch = check(&t, &[]).expect_err("forbidden SB");
        let stream = check_stream(&t, &[], StreamConfig::batch()).expect_err("forbidden SB");
        assert_eq!(
            batch.to_string(),
            stream.to_string(),
            "reports byte-identical"
        );
    }

    #[test]
    fn jsonl_reader_streams_and_names_lines() {
        use bulksc_trace::Event;
        let trace = format!(
            "{}\n{}\n{}\nnot json\n",
            bulksc_trace::jsonl_header(),
            Event::ValStore {
                core: 0,
                seq: 0,
                po: 0,
                addr: 8,
                value: 1,
                retired_at: 1,
            }
            .jsonl(1),
            Event::ValLoad {
                core: 1,
                seq: 0,
                po: 0,
                addr: 8,
                value: 1,
                retired_at: 2,
            }
            .jsonl(2),
        );
        let err = check_jsonl_reader(
            Cursor::new(trace.as_bytes()),
            "in.jsonl",
            StreamConfig::batch(),
        )
        .expect_err("bad line 4");
        let StreamError::Input(m) = err else {
            panic!("expected input error, got {err:?}");
        };
        assert!(m.starts_with("in.jsonl: line 4:"), "got {m}");

        let good = trace.rsplit_once("not json\n").unwrap().0;
        let cert = check_jsonl_reader(
            Cursor::new(good.as_bytes()),
            "in.jsonl",
            StreamConfig::batch(),
        )
        .expect("two-access trace certifies");
        assert_eq!(cert.accesses, 2);
        assert_eq!(cert.final_memory, BTreeMap::from([(8, 1)]));

        let err = check_jsonl_reader(Cursor::new(&b""[..]), "in.jsonl", StreamConfig::batch())
            .expect_err("empty");
        assert!(err.to_string().contains("empty trace"));
    }

    #[test]
    fn btf_reader_matches_jsonl_reader() {
        use bulksc_trace::Event;
        // Synthesize a legal trace, render it both ways, and demand the
        // two ingestion paths produce identical certificates.
        let accesses = synth(5_000, 4, 64);
        let mut jsonl = bulksc_trace::jsonl_header();
        jsonl.push('\n');
        let mut btf = bulksc_trace::BtfWriter::new(Vec::new())
            .unwrap()
            .with_block_events(512);
        for a in &accesses {
            let ev = match a.kind {
                AccessKind::Load { value } => Event::ValLoad {
                    core: a.core,
                    seq: a.seq,
                    po: a.po,
                    addr: a.addr,
                    value,
                    retired_at: a.retired_at,
                },
                AccessKind::Store { value } => Event::ValStore {
                    core: a.core,
                    seq: a.seq,
                    po: a.po,
                    addr: a.addr,
                    value,
                    retired_at: a.retired_at,
                },
                AccessKind::Rmw { old, new } => Event::ValRmw {
                    core: a.core,
                    seq: a.seq,
                    po: a.po,
                    addr: a.addr,
                    old,
                    new,
                    retired_at: a.retired_at,
                },
            };
            jsonl.push_str(&ev.jsonl(a.emitted_at));
            jsonl.push('\n');
            btf.push(a.emitted_at, &ev).unwrap();
        }
        let btf = btf.finish().unwrap();
        let cfg = StreamConfig::windowed(512).with_jobs(2);
        let from_text =
            check_jsonl_reader(Cursor::new(jsonl.as_bytes()), "t.jsonl", cfg.clone()).unwrap();
        let from_btf = check_btf_reader(Cursor::new(btf.as_slice()), "t.btf", cfg).unwrap();
        assert_eq!(from_text.accesses, from_btf.accesses);
        assert_eq!(from_text.witness_hash, from_btf.witness_hash);
        assert_eq!(from_text.final_memory, from_btf.final_memory);
        assert_eq!(from_text.summary(), from_btf.summary());

        // Input errors carry the origin, like the JSONL path's do.
        let err = check_btf_reader(Cursor::new(&b"junk"[..]), "t.btf", StreamConfig::batch())
            .expect_err("garbage");
        assert!(err.to_string().contains("t.btf"), "{err}");
    }
}
