//! SC conformance oracle: certify (or refute) that one simulated
//! execution is sequentially consistent.
//!
//! The timing simulator, when value tracing is on, emits one `val_load` /
//! `val_store` / `val_rmw` event per retired-and-committed memory access:
//! the value every load observed and the value every store published,
//! tagged with the owning core, chunk sequence number, per-core program
//! order, and retire cycle. This crate consumes that stream — live
//! through a [`CollectingTracer`] sink, or offline from a JSONL file —
//! and answers the only question that matters for a consistency-model
//! reproduction: *was this execution SC?*
//!
//! # The witness order
//!
//! Following Shasha–Snir, an execution is SC iff the union of four
//! relations over its accesses is acyclic:
//!
//! * **po** — per-core program order (the `po` index stamped on every
//!   access);
//! * **co** — coherence order: the total order of writes per location.
//!   In this simulator all values live in one global value store, so the
//!   trace-stream order of `val_store`/`val_rmw` events at one address
//!   *is* co — no inference needed;
//! * **rf** — reads-from: derived by matching each load's observed value
//!   against the writes at that address (memory starts zeroed, so a load
//!   of 0 with no zero-writer reads from a virtual initial store);
//! * **fr** — from-reads: each read precedes the co-successor of the
//!   write it read from.
//!
//! If several writes to one address published the same value the read's
//! source is ambiguous; the oracle then *skips* that read's rf/fr edges
//! (sound — dropping edges can only under-approximate, never fabricate,
//! a cycle) and reports the count, so workloads that want airtight
//! checking use distinct store values.
//!
//! A topological sort of the union yields a **witness**: one global
//! interleaving that explains every observed value. The oracle replays
//! it against a fresh memory image as a final cross-check and returns
//! the end state. A cycle, an observed value no write ever published, or
//! a torn read-modify-write yields an [`ScViolation`] naming the minimal
//! offending access set, with the chunk-lifecycle events around it for
//! context.
//!
//! Complexity: `O(n log n)` to order accesses plus `O(n + e)` for the
//! sort itself, with `e ≤ 4n` edges — a million-access trace checks in
//! well under a second. Memory is `O(n)` in batch mode; for traces that
//! outgrow it, the [`stream`] module certifies the same witness order
//! window by window in memory bounded by the window size ([`check`] is
//! itself the single-window special case), consuming JSONL
//! incrementally via [`check_jsonl_reader`] so the trace never has to
//! be materialized at all.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::rc::Rc;

use bulksc_trace::{Event, Json, Tracer, SCHEMA_VERSION};

mod order;
pub mod stream;

pub use order::{check, CheckError, EdgeKind, ScCertificate, ScViolation, ViolationKind};
pub use stream::{
    check_btf_reader, check_jsonl_reader, check_stream, Checkpoint, StreamCertificate,
    StreamChecker, StreamConfig, StreamError,
};

/// What one traced access did at its address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Observed `value`.
    Load { value: u64 },
    /// Published `value`.
    Store { value: u64 },
    /// Atomically observed `old` and published `new`.
    Rmw { old: u64, new: u64 },
}

/// One memory access from the value trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Position in the global trace stream (the co tiebreaker).
    pub idx: usize,
    /// Issuing core.
    pub core: u32,
    /// Owning chunk sequence number (0 for baseline models).
    pub seq: u64,
    /// Per-core program-order index.
    pub po: u64,
    /// Word address.
    pub addr: u64,
    /// Load / store / RMW and the values involved.
    pub kind: AccessKind,
    /// Cycle the access retired at its core.
    pub retired_at: u64,
    /// Cycle the event entered the trace (commit-grant cycle for BulkSC).
    pub emitted_at: u64,
}

impl Access {
    /// The value this access observed, if it reads.
    pub fn observed(&self) -> Option<u64> {
        match self.kind {
            AccessKind::Load { value } => Some(value),
            AccessKind::Rmw { old, .. } => Some(old),
            AccessKind::Store { .. } => None,
        }
    }

    /// The value this access published, if it writes.
    pub fn published(&self) -> Option<u64> {
        match self.kind {
            AccessKind::Store { value } => Some(value),
            AccessKind::Rmw { new, .. } => Some(new),
            AccessKind::Load { .. } => None,
        }
    }

    /// One-line rendering used in violation reports.
    pub fn describe(&self) -> String {
        let what = match self.kind {
            AccessKind::Load { value } => format!("load  0x{:x} -> {}", self.addr, value),
            AccessKind::Store { value } => format!("store 0x{:x} <- {}", self.addr, value),
            AccessKind::Rmw { old, new } => {
                format!("rmw   0x{:x}: {} -> {}", self.addr, old, new)
            }
        };
        format!(
            "core{} chunk#{} po={} {} (retired @{}, visible @{})",
            self.core, self.seq, self.po, what, self.retired_at, self.emitted_at
        )
    }
}

/// A chunk-lifecycle event kept alongside the accesses so a violation
/// report can show what the machine was doing around the offending
/// accesses (which chunk committed, what squashed and why).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Emission cycle.
    pub t: u64,
    /// Core the event happened at.
    pub core: u32,
    /// Chunk sequence number.
    pub seq: u64,
    /// Stable label: `chunk_start`, `commit_grant`, `commit_deny`,
    /// `chunk_commit`, `chunk_abandon`, or `squash(<cause>)`.
    pub what: &'static str,
}

/// One parsed line of a JSONL event stream, as classified by
/// [`parse_trace_line`]: a value access (with `idx` left at 0 for the
/// caller to assign from its own stream position), a lifecycle event, or
/// a line the oracle ignores (blank, or an event kind it doesn't track).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceLine {
    /// A `val_load` / `val_store` / `val_rmw` event.
    Access(Access),
    /// A chunk-lifecycle event.
    Lifecycle(LifecycleEvent),
    /// Blank line or untracked event kind.
    Skip,
}

/// Validate the stream's schema header (its first line). Errors name
/// `origin` so a bad file is identifiable among many.
pub fn parse_header_line(header: &str, origin: &str) -> Result<(), String> {
    let h =
        Json::parse(header).ok_or_else(|| format!("{origin}: trace header is not valid JSON"))?;
    if h.get("schema").and_then(Json::as_str) != Some("bulksc-trace") {
        return Err(format!(
            "{origin}: not a bulksc-trace stream (bad schema header)"
        ));
    }
    let version = h.get("version").and_then(Json::as_u64).unwrap_or(0);
    if !bulksc_trace::schema_supported(version) {
        return Err(format!(
            "{origin}: trace schema version {version} outside supported range \
             {}..={SCHEMA_VERSION} (value events appeared in version 3)",
            bulksc_trace::MIN_SCHEMA_VERSION
        ));
    }
    Ok(())
}

/// Parse one body line of a JSONL event stream. `lineno` is the 1-based
/// line number within the stream (the header is line 1); every error
/// names `origin` and that line so a bad line in a multi-GB trace is
/// found without bisecting.
pub fn parse_trace_line(line: &str, lineno: usize, origin: &str) -> Result<TraceLine, String> {
    if line.trim().is_empty() {
        return Ok(TraceLine::Skip);
    }
    let ev = Json::parse(line)
        .ok_or_else(|| format!("{origin}: line {lineno}: not valid JSON: {line}"))?;
    let t = ev
        .get("t")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{origin}: line {lineno}: event without cycle stamp"))?;
    let name = ev.get("ev").and_then(Json::as_str).unwrap_or("");
    let field = |key: &str| -> Result<u64, String> {
        ev.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{origin}: line {lineno}: {name} event missing field {key:?}"))
    };
    let kind = match name {
        "val_load" => Some(AccessKind::Load {
            value: field("value")?,
        }),
        "val_store" => Some(AccessKind::Store {
            value: field("value")?,
        }),
        "val_rmw" => Some(AccessKind::Rmw {
            old: field("old")?,
            new: field("new")?,
        }),
        _ => None,
    };
    if let Some(kind) = kind {
        return Ok(TraceLine::Access(Access {
            idx: 0,
            core: field("core")? as u32,
            seq: field("seq")?,
            po: field("po")?,
            addr: field("addr")?,
            kind,
            retired_at: field("retired_at")?,
            emitted_at: t,
        }));
    }
    let what = match name {
        "chunk_start" => Some("chunk_start"),
        "commit_grant" => Some("commit_grant"),
        "commit_deny" => Some("commit_deny"),
        "chunk_commit" => Some("chunk_commit"),
        "chunk_abandon" => Some("chunk_abandon"),
        "squash" => Some(match ev.get("cause").and_then(Json::as_str) {
            Some("alias") => "squash(alias)",
            Some("true-sharing") => "squash(true-sharing)",
            _ => "squash(overflow)",
        }),
        _ => None,
    };
    Ok(match what {
        Some(what) => TraceLine::Lifecycle(LifecycleEvent {
            t,
            core: field("core")? as u32,
            seq: field("seq")?,
            what,
        }),
        None => TraceLine::Skip,
    })
}

/// The lifecycle label for a squash cause (static so [`LifecycleEvent`]
/// stays `Copy`).
fn squash_label(cause: bulksc_trace::SquashCause) -> &'static str {
    match cause {
        bulksc_trace::SquashCause::Alias => "squash(alias)",
        bulksc_trace::SquashCause::TrueSharing => "squash(true-sharing)",
        bulksc_trace::SquashCause::Overflow => "squash(overflow)",
    }
}

/// Classify one decoded simulator event exactly as [`parse_trace_line`]
/// classifies its JSONL rendering. This is the oracle's single event
/// policy: the live [`CollectingTracer`] sink, the batch loaders, and the
/// BTF ingestion path all route through it, so the two trace formats
/// cannot drift in what the checker sees. Accesses come back with `idx`
/// 0 — the caller assigns stream positions.
pub fn classify_event(cycle: u64, event: &Event) -> TraceLine {
    let access = |core, seq, po, addr, kind, retired_at| {
        TraceLine::Access(Access {
            idx: 0,
            core,
            seq,
            po,
            addr,
            kind,
            retired_at,
            emitted_at: cycle,
        })
    };
    let lifecycle = |core, seq, what| {
        TraceLine::Lifecycle(LifecycleEvent {
            t: cycle,
            core,
            seq,
            what,
        })
    };
    match *event {
        Event::ValLoad {
            core,
            seq,
            po,
            addr,
            value,
            retired_at,
        } => access(core, seq, po, addr, AccessKind::Load { value }, retired_at),
        Event::ValStore {
            core,
            seq,
            po,
            addr,
            value,
            retired_at,
        } => access(core, seq, po, addr, AccessKind::Store { value }, retired_at),
        Event::ValRmw {
            core,
            seq,
            po,
            addr,
            old,
            new,
            retired_at,
        } => access(
            core,
            seq,
            po,
            addr,
            AccessKind::Rmw { old, new },
            retired_at,
        ),
        Event::ChunkStart { core, seq } => lifecycle(core, seq, "chunk_start"),
        Event::CommitGrant { core, seq } => lifecycle(core, seq, "commit_grant"),
        Event::CommitDeny { core, seq, .. } => lifecycle(core, seq, "commit_deny"),
        Event::ChunkCommit { core, seq, .. } => lifecycle(core, seq, "chunk_commit"),
        Event::ChunkAbandon { core, seq } => lifecycle(core, seq, "chunk_abandon"),
        Event::Squash {
            core, seq, cause, ..
        } => lifecycle(core, seq, squash_label(cause)),
        _ => TraceLine::Skip,
    }
}

/// A full value trace of one execution: every committed memory access in
/// global visibility order, plus the chunk-lifecycle context.
#[derive(Clone, Debug, Default)]
pub struct ValueTrace {
    /// Accesses in trace-stream order (`idx` is the position here).
    pub accesses: Vec<Access>,
    /// Chunk lifecycle events, in stream order.
    pub lifecycle: Vec<LifecycleEvent>,
}

impl ValueTrace {
    /// Absorb one simulator event (value events become accesses,
    /// lifecycle events become context, everything else is ignored).
    pub fn absorb(&mut self, cycle: u64, event: &Event) {
        match classify_event(cycle, event) {
            TraceLine::Access(mut a) => {
                a.idx = self.accesses.len();
                self.accesses.push(a);
            }
            TraceLine::Lifecycle(e) => self.lifecycle.push(e),
            TraceLine::Skip => {}
        }
    }

    /// Parse a JSONL event stream (as written by `JsonlTracer`) into a
    /// value trace. Validates the schema header; unknown event names are
    /// ignored so the oracle stays compatible with richer streams.
    ///
    /// `origin` names the stream (a file path, `"-"`, a test label) and
    /// is quoted, with a 1-based line number, in every parse error.
    pub fn from_jsonl(text: &str, origin: &str) -> Result<ValueTrace, String> {
        Self::from_jsonl_reader(text.as_bytes(), origin)
    }

    /// [`ValueTrace::from_jsonl`], but consuming the stream one line at a
    /// time from any [`BufRead`] — a multi-GB trace file never has to be
    /// materialized as a single `String`. Read errors, like parse errors,
    /// name `origin` and the last complete line.
    pub fn from_jsonl_reader<R: BufRead>(mut r: R, origin: &str) -> Result<ValueTrace, String> {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Oracle);
        let mut line = String::new();
        let mut read_one = |line: &mut String, lineno: usize| -> Result<bool, String> {
            line.clear();
            let n = r
                .read_line(line)
                .map_err(|e| format!("{origin}: read error after line {lineno}: {e}"))?;
            Ok(n > 0)
        };
        if !read_one(&mut line, 0)? {
            return Err(format!("{origin}: empty trace"));
        }
        parse_header_line(line.trim_end(), origin)?;
        let mut trace = ValueTrace::default();
        let mut lineno = 1usize;
        while read_one(&mut line, lineno)? {
            lineno += 1;
            match parse_trace_line(line.trim_end(), lineno, origin)? {
                TraceLine::Access(mut a) => {
                    a.idx = trace.accesses.len();
                    trace.accesses.push(a);
                }
                TraceLine::Lifecycle(e) => trace.lifecycle.push(e),
                TraceLine::Skip => {}
            }
        }
        Ok(trace)
    }

    /// [`ValueTrace::from_jsonl_reader`]'s binary sibling: load a BTF
    /// artifact block by block. Same event policy (both routes go through
    /// [`classify_event`] via [`ValueTrace::absorb`]), same error shape —
    /// `origin` names the stream in every message.
    pub fn from_btf_reader<R: std::io::Read>(r: R, origin: &str) -> Result<ValueTrace, String> {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Oracle);
        let mut reader = bulksc_trace::BtfReader::new(r).map_err(|e| format!("{origin}: {e}"))?;
        let mut trace = ValueTrace::default();
        while let Some(block) = reader.next_block().map_err(|e| format!("{origin}: {e}"))? {
            for (cycle, ev) in block {
                trace.absorb(cycle, &ev);
            }
        }
        Ok(trace)
    }

    /// The final value per traced address (the last write in co), as the
    /// witness replay would leave memory. Addresses only ever read map to
    /// nothing here (they stayed at their initial 0).
    pub fn final_writes(&self) -> BTreeMap<u64, u64> {
        let mut mem = BTreeMap::new();
        for a in &self.accesses {
            if let Some(v) = a.published() {
                mem.insert(a.addr, v);
            }
        }
        mem
    }

    /// Run the oracle on this trace.
    pub fn verify(&self) -> Result<ScCertificate, CheckError> {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Oracle);
        check(&self.accesses, &self.lifecycle)
    }
}

/// A [`Tracer`] sink that collects the value trace of a live run.
///
/// Attach it (alongside any other sinks) before `System::run`, then
/// [`CollectingTracer::take`] the trace and [`ValueTrace::verify`] it.
#[derive(Debug, Default)]
pub struct CollectingTracer {
    trace: ValueTrace,
}

impl CollectingTracer {
    /// A fresh shared sink, ready for `TraceHandle::attach`.
    pub fn shared() -> Rc<RefCell<CollectingTracer>> {
        Rc::new(RefCell::new(CollectingTracer::default()))
    }

    /// Number of accesses collected so far.
    pub fn accesses(&self) -> usize {
        self.trace.accesses.len()
    }

    /// Take the collected trace, leaving the sink empty.
    pub fn take(&mut self) -> ValueTrace {
        std::mem::take(&mut self.trace)
    }

    /// Borrow the collected trace without consuming it.
    pub fn trace(&self) -> &ValueTrace {
        &self.trace
    }
}

impl Tracer for CollectingTracer {
    fn record(&mut self, cycle: u64, event: &Event) {
        self.trace.absorb(cycle, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulksc_trace::TraceHandle;

    #[test]
    fn collecting_tracer_absorbs_value_and_lifecycle_events() {
        let sink = CollectingTracer::shared();
        let mut trace = TraceHandle::off();
        trace.attach(sink.clone());
        trace.emit(10, || Event::ChunkStart { core: 0, seq: 1 });
        trace.emit(12, || Event::ValStore {
            core: 0,
            seq: 1,
            po: 0,
            addr: 0x100,
            value: 7,
            retired_at: 11,
        });
        trace.emit(12, || Event::ValLoad {
            core: 1,
            seq: 0,
            po: 0,
            addr: 0x100,
            value: 7,
            retired_at: 12,
        });
        trace.emit(13, || Event::ValRmw {
            core: 1,
            seq: 0,
            po: 1,
            addr: 0x108,
            old: 0,
            new: 1,
            retired_at: 13,
        });
        trace.emit(14, || Event::CommitDeny {
            core: 0,
            seq: 2,
            xray: None,
        });
        trace.emit(15, || Event::NetDeliver {
            src: bulksc_trace::Endpoint::core(0),
            dst: bulksc_trace::Endpoint::dir(0),
            kind: "ignored",
        });
        let vt = sink.borrow_mut().take();
        assert_eq!(vt.accesses.len(), 3);
        assert_eq!(vt.lifecycle.len(), 2);
        assert_eq!(vt.accesses[0].published(), Some(7));
        assert_eq!(vt.accesses[1].observed(), Some(7));
        assert_eq!(vt.accesses[2].kind, AccessKind::Rmw { old: 0, new: 1 });
        assert_eq!(vt.accesses[2].idx, 2);
        assert_eq!(vt.final_writes(), BTreeMap::from([(0x100, 7), (0x108, 1)]));
        assert_eq!(sink.borrow().accesses(), 0, "take drained the sink");
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let events: Vec<(u64, Event)> = vec![
            (5, Event::ChunkStart { core: 0, seq: 1 }),
            (
                9,
                Event::ValStore {
                    core: 0,
                    seq: 1,
                    po: 0,
                    addr: 0x1_0000,
                    value: 3,
                    retired_at: 7,
                },
            ),
            (
                9,
                Event::ValLoad {
                    core: 0,
                    seq: 1,
                    po: 1,
                    addr: 0x1_0008,
                    value: 0,
                    retired_at: 8,
                },
            ),
            (
                11,
                Event::ValRmw {
                    core: 1,
                    seq: 0,
                    po: 0,
                    addr: 0x1_0000,
                    old: 3,
                    new: 4,
                    retired_at: 11,
                },
            ),
            (
                12,
                Event::Squash {
                    core: 1,
                    seq: 3,
                    cause: bulksc_trace::SquashCause::Alias,
                    squashed_instrs: 9,
                    xray: None,
                },
            ),
        ];
        let mut text = bulksc_trace::jsonl_header();
        text.push('\n');
        let mut direct = ValueTrace::default();
        for (t, ev) in &events {
            text.push_str(&ev.jsonl(*t));
            text.push('\n');
            direct.absorb(*t, ev);
        }
        let parsed = ValueTrace::from_jsonl(&text, "test").expect("parses");
        assert_eq!(parsed.accesses, direct.accesses);
        assert_eq!(parsed.lifecycle, direct.lifecycle);
        assert_eq!(parsed.lifecycle[1].what, "squash(alias)");
    }

    #[test]
    fn jsonl_parser_rejects_bad_input() {
        assert!(ValueTrace::from_jsonl("", "t").is_err());
        assert!(ValueTrace::from_jsonl("{\"schema\":\"other\"}\n", "t").is_err());
        assert!(
            ValueTrace::from_jsonl("{\"schema\":\"bulksc-trace\",\"version\":2}\n", "t").is_err()
        );
        let header = bulksc_trace::jsonl_header();
        assert!(ValueTrace::from_jsonl(&format!("{header}\nnot json\n"), "t").is_err());
        assert!(ValueTrace::from_jsonl(
            &format!("{header}\n{{\"t\":1,\"ev\":\"val_load\",\"core\":0}}\n"),
            "t"
        )
        .is_err());
        // Unknown events and blank lines are fine.
        let ok = format!("{header}\n\n{{\"t\":1,\"ev\":\"future_event\",\"core\":0}}\n");
        assert!(ValueTrace::from_jsonl(&ok, "t")
            .unwrap()
            .accesses
            .is_empty());
    }

    #[test]
    fn jsonl_parse_errors_name_origin_and_line() {
        let header = bulksc_trace::jsonl_header();
        let text = format!("{header}\n\nnot json\n");
        let err = ValueTrace::from_jsonl(&text, "results/run.jsonl").unwrap_err();
        assert!(
            err.starts_with("results/run.jsonl: line 3:"),
            "error must carry file + 1-based line, got: {err}"
        );
        // A value event with a missing field is located the same way.
        let text = format!("{header}\n{{\"t\":1,\"ev\":\"val_store\",\"core\":0}}\n");
        let err = ValueTrace::from_jsonl(&text, "x.jsonl").unwrap_err();
        assert!(err.starts_with("x.jsonl: line 2:"), "{err}");
        assert!(err.contains("val_store"), "{err}");
        // Header problems name the origin too.
        let err = ValueTrace::from_jsonl("", "empty.jsonl").unwrap_err();
        assert!(err.contains("empty.jsonl"), "{err}");
    }
}
