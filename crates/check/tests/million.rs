//! Scale test: the oracle must certify a million-access trace in well
//! under ten seconds (scaled by `BULKSC_SLOW_HOST` — see below). The
//! trace is synthesized directly (no simulator) as a legal sequential
//! interleaving, so the cost measured here is pure checker: edge
//! construction, topological sort, and witness replay.

use std::time::Instant;

use bulksc_check::{check, check_stream, Access, AccessKind, StreamConfig};

/// Synthesize a legal interleaving: accesses happen in `idx` order
/// against one atomic memory, so the trace is SC by construction.
/// Stores publish unique values, so no read is ambiguous and every
/// rf/fr edge is present — the checker's worst (densest) case.
fn synth(n: usize) -> Vec<Access> {
    const CORES: u32 = 8;
    const WORDS: u64 = 64;
    let mut mem = [0u64; WORDS as usize];
    let mut po = [0u64; CORES as usize];
    let mut accesses = Vec::with_capacity(n);
    for i in 0..n {
        let core = (i % CORES as usize) as u32;
        let addr = (i as u64).wrapping_mul(0x9e37_79b9) % WORDS;
        let kind = match i % 5 {
            0 | 1 => {
                let value = i as u64 + 1; // unique, nonzero
                mem[addr as usize] = value;
                AccessKind::Store { value }
            }
            4 if i % 35 == 4 => {
                let old = mem[addr as usize];
                let new = i as u64 + 1;
                mem[addr as usize] = new;
                AccessKind::Rmw { old, new }
            }
            _ => AccessKind::Load {
                value: mem[addr as usize],
            },
        };
        accesses.push(Access {
            idx: i,
            core,
            seq: (i / 1000) as u64,
            po: po[core as usize],
            addr,
            kind,
            retired_at: i as u64,
            emitted_at: i as u64,
        });
        po[core as usize] += 1;
    }
    accesses
}

/// The wall-clock budget, scaled for the host. The 10 s release figure
/// is the contract on a normal development machine; debug builds get 6×,
/// and `BULKSC_SLOW_HOST` multiplies further (a number scales by that
/// factor; any other non-empty value applies a 6× safety factor) so
/// throttled CI runners don't fail the suite on speed alone.
fn budget_secs() -> f64 {
    let base = if cfg!(debug_assertions) { 60.0 } else { 10.0 };
    match std::env::var("BULKSC_SLOW_HOST") {
        Ok(v) if v.trim().is_empty() => base,
        Ok(v) => {
            base * v
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|&x| x > 0.0)
                .unwrap_or(6.0)
        }
        Err(_) => base,
    }
}

#[test]
fn a_million_access_trace_certifies_in_under_ten_seconds() {
    const N: usize = 1_000_000;
    let accesses = synth(N);

    let t0 = Instant::now();
    let cert = check(&accesses, &[]).expect("a sequential interleaving certifies");
    let elapsed = t0.elapsed();

    assert_eq!(cert.accesses, N);
    assert_eq!(cert.ambiguous_reads, 0, "unique store values pin every rf");
    assert_eq!(cert.witness.len(), N);
    let budget = budget_secs();
    assert!(
        elapsed.as_secs_f64() < budget,
        "checking {N} accesses took {elapsed:?} (budget {budget} s)"
    );
    println!("checked {N} accesses in {elapsed:?} ({} edges)", cert.edges);
}

#[test]
fn a_million_access_trace_streams_in_bounded_memory() {
    const N: usize = 1_000_000;
    const WINDOW: usize = 1 << 16;
    let accesses = synth(N);

    let t0 = Instant::now();
    let cert = check_stream(&accesses, &[], StreamConfig::windowed(WINDOW))
        .expect("the same interleaving certifies through the window");
    let elapsed = t0.elapsed();

    assert_eq!(cert.accesses, N);
    assert_eq!(cert.ambiguous_reads, 0);
    assert!(
        cert.peak_live <= 2 * WINDOW,
        "frontier must stay within two windows, got {}",
        cert.peak_live
    );
    assert!(cert.windows >= (N / WINDOW) as u64);
    let budget = budget_secs();
    assert!(
        elapsed.as_secs_f64() < budget,
        "streaming {N} accesses took {elapsed:?} (budget {budget} s)"
    );
    println!(
        "streamed {N} accesses in {elapsed:?} (peak {} live, {} windows)",
        cert.peak_live, cert.windows
    );
}
