//! A sequentially-consistent reference executor.
//!
//! Executes a set of [`ThreadProgram`]s by interleaving whole instructions
//! atomically — the switch of the paper's Figure 1, literally. Every
//! execution it can produce is sequentially consistent by construction,
//! which makes it:
//!
//! * the oracle for litmus tests (outcomes reachable here are SC-allowed),
//! * a fast way to unit-test program state machines (locks, barriers)
//!   without the timing simulator.

use std::collections::HashMap;

use bulksc_sig::Addr;
use bulksc_stats::SplitMix64;

use crate::isa::Instr;
use crate::program::ThreadProgram;

/// Result of a reference execution.
#[derive(Debug)]
pub struct RefResult {
    /// Final memory contents (only addresses ever written).
    pub memory: HashMap<Addr, u64>,
    /// Per-thread observation logs.
    pub observations: Vec<Vec<u64>>,
    /// True if every thread ran to completion within the step budget.
    pub finished: bool,
    /// Dynamic instructions executed.
    pub steps: u64,
}

/// Run `programs` under a seeded random interleaving, one instruction at a
/// time, with instant (atomic) memory. Returns when all threads finish or
/// `max_steps` instructions have executed.
///
/// # Example
///
/// ```
/// use bulksc_sig::Addr;
/// use bulksc_workloads::{run_interleaved, Instr, ScriptOp, ScriptProgram};
///
/// let t0 = ScriptProgram::new(vec![ScriptOp::Op(Instr::Store { addr: Addr(0), value: 7 })]);
/// let t1 = ScriptProgram::new(vec![ScriptOp::Record(Addr(0))]);
/// let r = run_interleaved(vec![Box::new(t0), Box::new(t1)], 1, 1000);
/// assert!(r.finished);
/// assert!(r.observations[1][0] == 0 || r.observations[1][0] == 7);
/// ```
pub fn run_interleaved(
    mut programs: Vec<Box<dyn ThreadProgram>>,
    schedule_seed: u64,
    max_steps: u64,
) -> RefResult {
    let mut rng = SplitMix64::new(schedule_seed);
    let mut memory: HashMap<Addr, u64> = HashMap::new();
    let mut pending: Vec<Option<u64>> = vec![None; programs.len()];
    let mut done: Vec<bool> = vec![false; programs.len()];
    let mut steps = 0u64;

    while steps < max_steps && done.iter().any(|d| !d) {
        let runnable: Vec<usize> = (0..programs.len()).filter(|&i| !done[i]).collect();
        let t = runnable[rng.gen_index(runnable.len())];
        match programs[t].next(pending[t].take()) {
            None => done[t] = true,
            Some(instr) => {
                steps += instr.dynamic_count();
                match instr {
                    Instr::Compute(_) | Instr::Fence | Instr::Io => {}
                    Instr::Load { addr, consume } => {
                        let v = memory.get(&addr).copied().unwrap_or(0);
                        if consume {
                            pending[t] = Some(v);
                        }
                    }
                    Instr::Store { addr, value } => {
                        memory.insert(addr, value);
                    }
                    Instr::Rmw { addr, op } => {
                        let old = memory.get(&addr).copied().unwrap_or(0);
                        memory.insert(addr, op.apply(old));
                        pending[t] = Some(old);
                    }
                }
            }
        }
    }
    RefResult {
        memory,
        observations: programs.iter().map(|p| p.observations()).collect(),
        finished: done.iter().all(|&d| d),
        steps,
    }
}

/// Run `programs` under an *explicit* schedule of memory accesses: for
/// each entry `c` of `order`, thread `c` executes instructions until it
/// has performed exactly one memory access (loads, stores, and RMWs
/// count; computes, fences, and I/O ride along for free). Any threads
/// still unfinished afterwards run round-robin to completion.
///
/// This is the differential half of the SC oracle: the `bulksc-check`
/// witness of a timing-simulator run, projected to its per-access core
/// sequence, replayed here on the atomic reference machine, must
/// reproduce the same observations and final memory. For the replay to
/// track the witness access-for-access the programs must be
/// straight-line given the values the witness promises — true for
/// [`crate::fuzzprog`] programs (no value-dependent control flow at
/// all), and for spin-free litmus threads.
pub fn run_in_order(
    mut programs: Vec<Box<dyn ThreadProgram>>,
    order: &[u32],
    max_steps: u64,
) -> RefResult {
    let mut memory: HashMap<Addr, u64> = HashMap::new();
    let mut pending: Vec<Option<u64>> = vec![None; programs.len()];
    let mut done: Vec<bool> = vec![false; programs.len()];
    let mut steps = 0u64;

    // One instruction of thread `t`; true if it was a memory access.
    let step = |t: usize,
                programs: &mut Vec<Box<dyn ThreadProgram>>,
                memory: &mut HashMap<Addr, u64>,
                pending: &mut Vec<Option<u64>>,
                done: &mut Vec<bool>,
                steps: &mut u64|
     -> bool {
        match programs[t].next(pending[t].take()) {
            None => {
                done[t] = true;
                false
            }
            Some(instr) => {
                *steps += instr.dynamic_count();
                match instr {
                    Instr::Compute(_) | Instr::Fence | Instr::Io => false,
                    Instr::Load { addr, consume } => {
                        let v = memory.get(&addr).copied().unwrap_or(0);
                        if consume {
                            pending[t] = Some(v);
                        }
                        true
                    }
                    Instr::Store { addr, value } => {
                        memory.insert(addr, value);
                        true
                    }
                    Instr::Rmw { addr, op } => {
                        let old = memory.get(&addr).copied().unwrap_or(0);
                        memory.insert(addr, op.apply(old));
                        pending[t] = Some(old);
                        true
                    }
                }
            }
        }
    };

    'schedule: for &c in order {
        let t = c as usize;
        while !done[t] {
            if steps >= max_steps {
                break 'schedule;
            }
            if step(
                t,
                &mut programs,
                &mut memory,
                &mut pending,
                &mut done,
                &mut steps,
            ) {
                break;
            }
        }
    }
    while steps < max_steps && done.iter().any(|d| !d) {
        for t in 0..programs.len() {
            if !done[t] {
                step(
                    t,
                    &mut programs,
                    &mut memory,
                    &mut pending,
                    &mut done,
                    &mut steps,
                );
            }
        }
    }

    RefResult {
        memory,
        observations: programs.iter().map(|p| p.observations()).collect(),
        finished: done.iter().all(|&d| d),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ScriptOp, ScriptProgram};

    fn boxed(p: ScriptProgram) -> Box<dyn ThreadProgram> {
        Box::new(p)
    }

    #[test]
    fn stores_become_visible() {
        let t0 = ScriptProgram::new(vec![
            ScriptOp::Op(Instr::Store {
                addr: Addr(0),
                value: 5,
            }),
            ScriptOp::Op(Instr::Store {
                addr: Addr(1),
                value: 6,
            }),
        ]);
        let r = run_interleaved(vec![boxed(t0)], 0, 100);
        assert!(r.finished);
        assert_eq!(r.memory[&Addr(0)], 5);
        assert_eq!(r.memory[&Addr(1)], 6);
    }

    #[test]
    fn spin_until_eq_waits_for_producer() {
        let producer = ScriptProgram::new(vec![
            ScriptOp::Op(Instr::Compute(50)),
            ScriptOp::Op(Instr::Store {
                addr: Addr(0),
                value: 1,
            }),
        ]);
        let consumer = ScriptProgram::new(vec![
            ScriptOp::SpinUntilEq {
                addr: Addr(0),
                value: 1,
                pad: 2,
            },
            ScriptOp::Record(Addr(0)),
        ]);
        for seed in 0..20 {
            let r = run_interleaved(
                vec![producer.clone_box(), consumer.clone_box()],
                seed,
                100_000,
            );
            assert!(r.finished, "seed {seed} did not finish");
            assert_eq!(r.observations[1], vec![1]);
        }
    }

    #[test]
    fn lock_provides_mutual_exclusion() {
        // Two threads increment a shared counter (read-modify-write done
        // as unlocked load + store) inside a lock; the final value must be
        // exactly 2 under every interleaving.
        let lock = Addr(0);
        let counter = Addr(8);
        let incr = |tag: u64| {
            ScriptProgram::new(vec![
                ScriptOp::AcquireLock(lock),
                ScriptOp::Record(counter), // read under the lock
                // The store value cannot depend on the read in a script,
                // so each thread writes tag; mutual exclusion is checked
                // through the recorded reads instead.
                ScriptOp::Op(Instr::Store {
                    addr: counter,
                    value: tag,
                }),
                ScriptOp::ReleaseLock(lock),
            ])
        };
        for seed in 0..30 {
            let r = run_interleaved(vec![boxed(incr(1)), boxed(incr(2))], seed, 100_000);
            assert!(r.finished, "seed {seed} deadlocked");
            // One thread saw 0 (went first), the other saw the first
            // thread's tag — never a torn intermediate.
            let a = r.observations[0][0];
            let b = r.observations[1][0];
            assert!(
                (a == 0 && b == 1) || (b == 0 && a == 2),
                "seed {seed}: non-serialized lock sections: a={a} b={b}"
            );
            assert_eq!(r.memory[&Addr(0)], 0, "lock released");
        }
    }

    #[test]
    fn barrier_releases_all_threads() {
        let count = Addr(0);
        let gen = Addr(8);
        let n = 4;
        let prog = |i: u64| {
            ScriptProgram::new(vec![
                ScriptOp::Op(Instr::Compute(i as u32 * 7 + 1)),
                ScriptOp::Barrier { count, gen, n },
                ScriptOp::Record(gen),
            ])
        };
        for seed in 0..20 {
            let programs: Vec<Box<dyn ThreadProgram>> = (0..n).map(|i| boxed(prog(i))).collect();
            let r = run_interleaved(programs, seed, 1_000_000);
            assert!(r.finished, "seed {seed}: barrier deadlocked");
            for t in 0..n as usize {
                assert_eq!(
                    r.observations[t],
                    vec![1],
                    "thread {t} saw the new generation"
                );
            }
            assert_eq!(r.memory[&count], 0, "counter reset for reuse");
        }
    }

    #[test]
    fn barriers_are_reusable() {
        let count = Addr(0);
        let gen = Addr(8);
        let n = 3;
        let prog = || {
            ScriptProgram::new(vec![
                ScriptOp::Barrier { count, gen, n },
                ScriptOp::Barrier { count, gen, n },
                ScriptOp::Record(gen),
            ])
        };
        for seed in 0..20 {
            let programs: Vec<Box<dyn ThreadProgram>> = (0..n).map(|_| boxed(prog())).collect();
            let r = run_interleaved(programs, seed, 1_000_000);
            assert!(r.finished, "seed {seed}: second barrier deadlocked");
            for t in 0..n as usize {
                assert_eq!(r.observations[t], vec![2]);
            }
        }
    }

    #[test]
    fn unfinished_run_reports_false() {
        let spin = ScriptProgram::new(vec![ScriptOp::SpinUntilEq {
            addr: Addr(0),
            value: 1,
            pad: 0,
        }]);
        let r = run_interleaved(vec![boxed(spin)], 0, 1000);
        assert!(!r.finished);
        assert!(r.steps >= 1000);
    }

    #[test]
    fn run_in_order_follows_the_schedule() {
        // T0: st x=1, st y=2.  T1: Record(y), Record(x).
        let x = Addr(0);
        let y = Addr(8);
        let t0 = ScriptProgram::new(vec![
            ScriptOp::Op(Instr::Store { addr: x, value: 1 }),
            ScriptOp::Op(Instr::Compute(3)),
            ScriptOp::Op(Instr::Store { addr: y, value: 2 }),
        ]);
        let t1 = ScriptProgram::new(vec![ScriptOp::Record(y), ScriptOp::Record(x)]);
        // Schedule: x=1, Record(y) (sees 0), y=2, Record(x) (sees 1).
        let r = run_in_order(vec![t0.clone_box(), t1.clone_box()], &[0, 1, 0, 1], 100_000);
        assert!(r.finished);
        assert_eq!(r.observations[1], vec![0, 1]);
        assert_eq!(r.memory[&x], 1);
        assert_eq!(r.memory[&y], 2);
        // Schedule both stores first: the reader sees 2 then 1.
        let r = run_in_order(vec![t0.clone_box(), t1.clone_box()], &[0, 0, 1, 1], 100_000);
        assert_eq!(r.observations[1], vec![2, 1]);
    }

    #[test]
    fn run_in_order_drains_unscheduled_tail() {
        let t0 = ScriptProgram::new(vec![
            ScriptOp::Op(Instr::Store {
                addr: Addr(0),
                value: 1,
            }),
            ScriptOp::Op(Instr::Store {
                addr: Addr(8),
                value: 2,
            }),
        ]);
        // Empty schedule: everything runs in the round-robin drain.
        let r = run_in_order(vec![boxed(t0)], &[], 100_000);
        assert!(r.finished);
        assert_eq!(r.memory[&Addr(0)], 1);
        assert_eq!(r.memory[&Addr(8)], 2);
    }

    #[test]
    fn checkpoint_clone_restarts_from_snapshot() {
        let mut p = ScriptProgram::new(vec![
            ScriptOp::Op(Instr::Compute(1)),
            ScriptOp::Op(Instr::Store {
                addr: Addr(0),
                value: 9,
            }),
        ]);
        let cp = p.clone_box();
        assert!(matches!(p.next(None), Some(Instr::Compute(1))));
        assert!(matches!(p.next(None), Some(Instr::Store { .. })));
        // The checkpoint still replays from the beginning.
        let mut replay = cp.clone_box();
        assert!(matches!(replay.next(None), Some(Instr::Compute(1))));
    }
}
