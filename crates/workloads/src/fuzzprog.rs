//! Randomized programs for the differential SC fuzzer.
//!
//! The `bulksc-check` oracle pins a load's reads-from source by matching
//! its observed value against the writes at that address, so the checking
//! is airtight exactly when store values are unique. These generators
//! build random straight-line programs whose every store publishes a
//! globally unique value (`(thread+1) << 32 | serial`), over a small
//! shared address pool (consecutive words, so lines are contended and
//! BulkSC's squash/replay paths actually fire), using plain
//! *non-consuming* loads — the kind the pipeline is free to reorder,
//! unlike the serializing consuming loads litmus observers use.
//!
//! Programs are straight-line (no value-dependent control flow), which
//! [`crate::refexec::run_in_order`] relies on to replay a witness
//! schedule instruction-for-instruction.

use bulksc_sig::Addr;
use bulksc_stats::SplitMix64;

use crate::isa::{Instr, RmwOp};
use crate::program::{ScriptOp, ScriptProgram, ThreadProgram};

/// Base word address of the fuzz address pool (clear of the litmus
/// variables at `0x1_0000` and the synthetic apps' layout).
pub const FUZZ_BASE: u64 = 0x2_0000;

/// Shape of one randomized program set.
#[derive(Clone, Copy, Debug)]
pub struct FuzzSpec {
    /// Number of threads (= cores).
    pub threads: u32,
    /// Memory operations per thread.
    pub ops_per_thread: u32,
    /// Size of the shared pool of word addresses (consecutive words from
    /// [`FUZZ_BASE`], so several live in each cache line).
    pub pool_words: u64,
    /// Per-mille of operations that are atomic fetch-adds (their values
    /// are not unique, so keep this low to keep ambiguity low).
    pub rmw_permille: u32,
}

impl Default for FuzzSpec {
    fn default() -> Self {
        FuzzSpec {
            threads: 4,
            ops_per_thread: 150,
            pool_words: 24,
            rmw_permille: 30,
        }
    }
}

/// One thread's random script. Deterministic in `(spec, thread, seed)`.
pub fn fuzz_script(spec: FuzzSpec, thread: u32, seed: u64) -> Vec<ScriptOp> {
    let mut rng = SplitMix64::new(seed ^ (0xf02_2ced ^ (thread as u64) << 32));
    let mut ops = Vec::with_capacity(spec.ops_per_thread as usize + 1);
    let mut serial = 0u64;
    for _ in 0..spec.ops_per_thread {
        let addr = Addr(FUZZ_BASE + rng.gen_range(0..spec.pool_words));
        let roll = rng.gen_range(0..1000);
        let op = if roll < spec.rmw_permille as u64 {
            Instr::Rmw {
                addr,
                op: RmwOp::FetchAdd(1),
            }
        } else if roll < 500 {
            serial += 1;
            Instr::Store {
                addr,
                value: ((thread as u64 + 1) << 32) | serial,
            }
        } else if roll < 930 {
            Instr::Load {
                addr,
                consume: false,
            }
        } else {
            Instr::Compute(rng.gen_range(1..12) as u32)
        };
        ops.push(ScriptOp::Op(op));
    }
    ops
}

/// The full program set for one fuzz case.
pub fn fuzz_programs(spec: FuzzSpec, seed: u64) -> Vec<Box<dyn ThreadProgram>> {
    (0..spec.threads)
        .map(|t| Box::new(ScriptProgram::new(fuzz_script(spec, t, seed))) as Box<dyn ThreadProgram>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn scripts_are_deterministic_and_store_unique_values() {
        let spec = FuzzSpec::default();
        let a = fuzz_script(spec, 1, 42);
        let b = fuzz_script(spec, 1, 42);
        assert_eq!(a.len(), b.len());
        let values = |s: &[ScriptOp]| -> Vec<u64> {
            s.iter()
                .filter_map(|op| match op {
                    ScriptOp::Op(Instr::Store { value, .. }) => Some(*value),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(values(&a), values(&b), "same seed, same program");
        assert_ne!(
            values(&a),
            values(&fuzz_script(spec, 1, 43)),
            "different seed, different program"
        );
        // Uniqueness across all threads of one case.
        let mut seen = HashSet::new();
        for t in 0..spec.threads {
            for v in values(&fuzz_script(spec, t, 42)) {
                assert!(seen.insert(v), "duplicate store value {v:#x}");
                assert_ne!(v, 0, "0 is the initial value, never stored");
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn pool_stays_in_bounds_and_mix_is_reasonable() {
        let spec = FuzzSpec {
            threads: 2,
            ops_per_thread: 600,
            pool_words: 8,
            rmw_permille: 50,
        };
        let (mut loads, mut stores, mut rmws) = (0, 0, 0);
        for t in 0..spec.threads {
            for op in fuzz_script(spec, t, 7) {
                let ScriptOp::Op(i) = op else {
                    panic!("fuzz scripts are straight-line Ops");
                };
                if let Some(a) = i.addr() {
                    assert!((FUZZ_BASE..FUZZ_BASE + spec.pool_words).contains(&a.0));
                }
                match i {
                    Instr::Load { consume, .. } => {
                        assert!(!consume, "plain loads only: they can reorder");
                        loads += 1;
                    }
                    Instr::Store { .. } => stores += 1,
                    Instr::Rmw { .. } => rmws += 1,
                    _ => {}
                }
            }
        }
        assert!(loads > 200 && stores > 200, "loads={loads} stores={stores}");
        assert!(rmws > 10, "rmws={rmws}");
    }
}
