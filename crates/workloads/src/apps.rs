//! Synthetic stand-ins for the paper's applications.
//!
//! The paper evaluates 11 SPLASH-2 programs plus SPECjbb2000 and
//! SPECweb2005 on the SESC simulator. We cannot run those binaries, but the
//! BulkSC-relevant behaviour of an application is fully captured by its
//! *sharing-pattern statistics*: how many distinct shared lines a 1000-
//! instruction chunk reads and writes, how many private lines it rewrites,
//! how strided/local the accesses are, and how often it synchronizes.
//! Conveniently, the paper itself reports those statistics per application
//! (Tables 3 and 4) — so each entry of [`catalog`] is a generator whose
//! parameters are taken from the paper's own characterization:
//!
//! * `read/write/priv_write lines per kilo-instruction` come straight from
//!   Table 3's "Average Set Sizes" columns;
//! * write burstiness is set so the fraction of chunks with an empty
//!   shared-write set tracks Table 4's "Empty W Sig" column;
//! * `stride` is set for the two programs whose access patterns are
//!   classically strided (`fft`'s transpose, `radix`'s scattered digit
//!   histograms) — this is what recreates their signature-aliasing
//!   behaviour;
//! * contended "hot" lines and lock/barrier rates recreate the true-sharing
//!   conflict rates visible in Table 3's `BSCexact` squash column.
//!
//! Randomness comes from the workspace's internal [`SplitMix64`] generator
//! (no external dependencies, so the tree builds offline). Seeds mean the
//! same thing as before — same seed, same deterministic stream — but the
//! streams themselves differ from the earlier `rand::SmallRng`-based
//! generator, so absolute measured numbers shifted within their statistical
//! bands when the PRNG was swapped.

use bulksc_sig::Addr;
use bulksc_stats::SplitMix64;

use crate::isa::{Instr, RmwOp};
use crate::layout::AddressMap;
use crate::program::ThreadProgram;

/// Tuning parameters of one synthetic application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppParams {
    /// Application name as the paper spells it.
    pub name: &'static str,
    /// Distinct shared lines read per 1000 instructions (Table 3 "Read").
    pub read_lines_per_kilo: f64,
    /// Distinct shared lines written per burst window (see
    /// `write_burst_prob`); average per kilo ≈ `prob × lines`.
    pub write_burst_lines: u32,
    /// Probability a 1000-instruction window contains shared writes.
    pub write_burst_prob: f64,
    /// Distinct private lines written per 1000 instructions
    /// (Table 3 "Priv. Write").
    pub priv_write_lines_per_kilo: f64,
    /// Shared working-set size in lines.
    pub shared_lines: u64,
    /// Private working-set size in lines (per thread).
    pub private_lines: u64,
    /// Probability a shared access reuses a recently-touched line.
    pub locality: f64,
    /// Lines of reuse history (how far back "recently" reaches). Larger
    /// windows keep more of the iteration's working set warm in L1/L2.
    pub reuse_window: usize,
    /// Strided access pattern (lines); `None` = random within the set.
    pub stride: Option<u64>,
    /// Intra-bucket fill window for strided apps: how many consecutive
    /// lines each strided bucket spans. Small windows concentrate the
    /// signature bits (radix's dense digit histograms — heavy aliasing);
    /// large windows spread them (fft's transpose rows).
    pub stride_spread: u64,
    /// Number of contended hot lines (work queues, frontier counters).
    pub hot_lines: u64,
    /// Hot-line writes per 1000 instructions (true-sharing conflicts).
    pub hot_writes_per_kilo: f64,
    /// Hot-line reads per 1000 instructions.
    pub hot_reads_per_kilo: f64,
    /// Lock-protected critical sections per 1000 instructions.
    pub locks_per_kilo: f64,
    /// Number of distinct locks.
    pub num_locks: u64,
    /// Barrier every this many instructions (`None` = no barriers).
    pub barrier_every: Option<u64>,
    /// Fraction of instructions that access memory.
    pub mem_op_density: f64,
}

/// The paper's application list with parameters derived from its Tables 3
/// and 4 (see module docs).
pub fn catalog() -> Vec<AppParams> {
    let base = AppParams {
        name: "",
        read_lines_per_kilo: 25.0,
        write_burst_lines: 2,
        write_burst_prob: 0.05,
        priv_write_lines_per_kilo: 12.0,
        shared_lines: 48 * 1024,
        private_lines: 1024,
        locality: 0.75,
        reuse_window: 512,
        stride: None,
        stride_spread: 32,
        hot_lines: 512,
        hot_writes_per_kilo: 0.0,
        hot_reads_per_kilo: 0.0,
        locks_per_kilo: 0.0,
        num_locks: 64,
        barrier_every: None,
        mem_op_density: 0.30,
    };
    vec![
        AppParams {
            name: "barnes",
            shared_lines: 512 * 1024,
            read_lines_per_kilo: 22.6,
            write_burst_lines: 2,
            write_burst_prob: 0.047,
            priv_write_lines_per_kilo: 11.9,
            locks_per_kilo: 0.12,
            num_locks: 256,
            hot_lines: 4096,
            hot_writes_per_kilo: 0.01,
            hot_reads_per_kilo: 0.2,
            ..base
        },
        AppParams {
            name: "cholesky",
            shared_lines: 768 * 1024,
            read_lines_per_kilo: 42.0,
            write_burst_lines: 16,
            write_burst_prob: 0.056,
            priv_write_lines_per_kilo: 11.6,
            locks_per_kilo: 0.08,
            num_locks: 256,
            hot_lines: 4096,
            hot_writes_per_kilo: 0.03,
            hot_reads_per_kilo: 0.2,
            ..base
        },
        AppParams {
            name: "fft",
            shared_lines: 256 * 1024,
            read_lines_per_kilo: 33.4,
            write_burst_lines: 16,
            write_burst_prob: 0.21,
            priv_write_lines_per_kilo: 22.7,
            stride: Some(512),
            stride_spread: 128,
            barrier_every: Some(40_000),
            ..base
        },
        AppParams {
            name: "fmm",
            shared_lines: 512 * 1024,
            read_lines_per_kilo: 33.8,
            write_burst_lines: 11,
            write_burst_prob: 0.018,
            priv_write_lines_per_kilo: 6.2,
            locks_per_kilo: 0.1,
            hot_lines: 4096,
            hot_writes_per_kilo: 0.02,
            hot_reads_per_kilo: 0.2,
            ..base
        },
        AppParams {
            name: "lu",
            shared_lines: 320 * 1024,
            read_lines_per_kilo: 15.9,
            write_burst_lines: 3,
            write_burst_prob: 0.032,
            priv_write_lines_per_kilo: 10.8,
            barrier_every: Some(50_000),
            ..base
        },
        AppParams {
            name: "ocean",
            shared_lines: 1536 * 1024,
            read_lines_per_kilo: 45.3,
            write_burst_lines: 15,
            write_burst_prob: 0.44,
            priv_write_lines_per_kilo: 8.4,
            barrier_every: Some(25_000),
            hot_lines: 4096,
            hot_writes_per_kilo: 0.3,
            hot_reads_per_kilo: 1.0,
            ..base
        },
        AppParams {
            name: "radiosity",
            shared_lines: 256 * 1024,
            read_lines_per_kilo: 28.7,
            write_burst_lines: 10,
            write_burst_prob: 0.048,
            priv_write_lines_per_kilo: 15.2,
            locks_per_kilo: 0.2,
            num_locks: 128,
            hot_lines: 2048,
            hot_writes_per_kilo: 0.06,
            hot_reads_per_kilo: 0.4,
            ..base
        },
        AppParams {
            name: "radix",
            read_lines_per_kilo: 14.9,
            write_burst_lines: 8,
            write_burst_prob: 0.67,
            priv_write_lines_per_kilo: 14.4,
            stride: Some(2048),
            stride_spread: 32,
            shared_lines: 1024 * 1024,
            barrier_every: Some(60_000),
            // Global bucket counters: updated by their owning thread,
            // polled by the others when choosing work.
            hot_lines: 512,
            hot_writes_per_kilo: 0.4,
            hot_reads_per_kilo: 1.5,
            ..base
        },
        AppParams {
            name: "raytrace",
            shared_lines: 512 * 1024,
            read_lines_per_kilo: 40.2,
            write_burst_lines: 5,
            write_burst_prob: 0.15,
            priv_write_lines_per_kilo: 12.7,
            locks_per_kilo: 0.3,
            num_locks: 128,
            hot_lines: 1024,
            hot_writes_per_kilo: 0.12,
            hot_reads_per_kilo: 0.6,
            ..base
        },
        AppParams {
            name: "water-ns",
            shared_lines: 128 * 1024,
            locality: 0.88,
            reuse_window: 1024,
            read_lines_per_kilo: 20.2,
            write_burst_lines: 12,
            write_burst_prob: 0.008,
            priv_write_lines_per_kilo: 16.3,
            locks_per_kilo: 0.05,
            ..base
        },
        AppParams {
            name: "water-sp",
            shared_lines: 128 * 1024,
            locality: 0.88,
            reuse_window: 1024,
            read_lines_per_kilo: 22.2,
            write_burst_lines: 16,
            write_burst_prob: 0.006,
            priv_write_lines_per_kilo: 17.0,
            ..base
        },
        AppParams {
            name: "sjbb2k",
            read_lines_per_kilo: 43.6,
            write_burst_lines: 7,
            write_burst_prob: 0.53,
            priv_write_lines_per_kilo: 19.2,
            shared_lines: 1024 * 1024,
            private_lines: 4096,
            locality: 0.45,
            reuse_window: 256,
            locks_per_kilo: 0.3,
            num_locks: 128,
            hot_lines: 4096,
            hot_writes_per_kilo: 0.08,
            hot_reads_per_kilo: 0.5,
            ..base
        },
        AppParams {
            name: "sweb2005",
            read_lines_per_kilo: 61.1,
            write_burst_lines: 7,
            write_burst_prob: 0.50,
            priv_write_lines_per_kilo: 21.5,
            shared_lines: 1536 * 1024,
            private_lines: 4096,
            locality: 0.40,
            reuse_window: 256,
            locks_per_kilo: 0.25,
            num_locks: 128,
            hot_lines: 4096,
            hot_writes_per_kilo: 0.05,
            hot_reads_per_kilo: 0.4,
            ..base
        },
    ]
}

/// The SPLASH-2 subset of the catalog (everything except the commercial
/// codes), matching the paper's `SP2-G.M.` aggregation.
pub fn splash2() -> Vec<AppParams> {
    catalog()
        .into_iter()
        .filter(|a| a.name != "sjbb2k" && a.name != "sweb2005")
        .collect()
}

/// Look up an application by name.
pub fn by_name(name: &str) -> Option<AppParams> {
    catalog().into_iter().find(|a| a.name == name)
}

/// What the generator is currently doing.
#[derive(Clone, Debug)]
enum Mode {
    /// Draining the planned instruction queue for the current window.
    Window,
    /// Spinning on a lock: polled, awaiting the value.
    LockPoll(Addr),
    /// Test-and-set issued, awaiting the old value.
    LockTas(Addr),
    /// Inside the critical section, `usize` ops remaining, lock to release.
    Critical(Addr, usize),
    /// Barrier: loaded the generation, awaiting it.
    BarrierGen,
    /// Barrier: fetch-add issued, awaiting the old count.
    BarrierCount(u64),
    /// Barrier: polling for release.
    BarrierWait(u64),
}

/// A synthetic application thread.
///
/// Deterministic per `(params, seed, tid)`; cloning it is the checkpoint
/// operation (the clone replays from the same internal state).
#[derive(Clone, Debug)]
pub struct SyntheticApp {
    params: AppParams,
    map: AddressMap,
    tid: u32,
    threads: u32,
    rng: SplitMix64,
    /// Planned instructions for the current 1000-instruction window.
    plan: Vec<Instr>,
    /// Next index into `plan`.
    cursor: usize,
    /// Recently-read shared lines, for locality reuse.
    recent: Vec<u64>,
    /// Recently-written shared lines: producer threads re-update their own
    /// outputs across chunks, which is what makes shared data behave
    /// dynamically-private (§5.2) until a consumer fetches it.
    recent_writes: Vec<u64>,
    /// Stride cursor for strided apps.
    stride_pos: u64,
    /// Intra-bucket fill counter: strided apps write sequentially within
    /// each strided bucket (a radix sort filling digit buckets), which
    /// spreads set indices while keeping the bucket bits correlated — the
    /// pattern behind the paper's radix signature aliasing.
    stride_fill: u64,
    /// Dynamic instructions emitted so far.
    emitted: u64,
    /// Instructions at which the next barrier fires.
    next_barrier: u64,
    mode: Mode,
}

/// Instructions per planning window (the paper's default chunk size).
const WINDOW: u64 = 1000;

impl SyntheticApp {
    /// Thread `tid` of `threads` running `params`, seeded deterministically
    /// from `seed`.
    pub fn new(params: AppParams, tid: u32, threads: u32, seed: u64) -> Self {
        let mut app = SyntheticApp {
            params,
            map: AddressMap::new(threads),
            tid,
            threads,
            rng: SplitMix64::new(seed ^ (tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            plan: Vec::new(),
            cursor: 0,
            recent: Vec::new(),
            recent_writes: Vec::new(),
            stride_pos: 0,
            stride_fill: 0,
            emitted: 0,
            next_barrier: params.barrier_every.unwrap_or(u64::MAX),
            mode: Mode::Window,
        };
        // Phase-shift each thread's stride walk into a distinct residue
        // class (its own buckets): strided apps partition their output, so
        // cross-thread stride collisions do not happen — the conflicts the
        // paper sees for radix are signature aliasing, not true sharing.
        app.stride_pos = (tid as u64) * (params.shared_lines / threads.max(1) as u64 + 64);
        app.plan_window();
        app
    }

    /// The parameters this thread runs.
    pub fn params(&self) -> &AppParams {
        &self.params
    }

    fn pick_shared_line(&mut self, for_write: bool) -> u64 {
        let p = &self.params;
        // Writes reuse recently-read lines far less than reads do: the
        // stores that define an iteration's output go to fresh or strided
        // locations (a grid's next sweep, a sort's output buckets), which
        // is what makes write misses expensive on a real machine.
        let reuse_prob = if for_write {
            p.locality * 0.2
        } else {
            p.locality
        };
        if !self.recent.is_empty() && self.rng.gen_bool(reuse_prob) {
            let i = self.rng.gen_index(self.recent.len());
            return self.recent[i];
        }
        let line = match p.stride {
            Some(stride) => {
                if !for_write && self.rng.gen_bool(0.4) {
                    // Cross-bucket read: the phase that consumes other
                    // threads' strided output (radix's permutation, fft's
                    // transpose). This is what makes committing strided W
                    // signatures reach other caches — where their
                    // correlated bit patterns alias with reader R
                    // signatures (the paper's radix story).
                    let bucket = self.rng.gen_range(0..p.shared_lines / stride.max(1));
                    (bucket * stride + self.rng.gen_range(0..p.stride_spread.max(1)))
                        % p.shared_lines
                } else {
                    self.stride_pos = (self.stride_pos + stride) % p.shared_lines;
                    self.stride_fill = self.stride_fill.wrapping_add(1);
                    // Writes hammer the bucket heads (histogram counters
                    // are revisited every pass); reads range deeper into
                    // the bucket bodies.
                    let window = if for_write {
                        p.stride_spread.clamp(1, 8)
                    } else {
                        p.stride_spread.max(1)
                    };
                    (self.stride_pos + self.stride_fill % window) % p.shared_lines
                }
            }
            None => self.rng.gen_range(0..p.shared_lines),
        };
        if !for_write {
            self.recent.push(line);
            if self.recent.len() > p.reuse_window {
                self.recent.remove(0);
            }
        }
        line
    }

    fn shared_addr(&mut self, line: u64) -> Addr {
        let w = self.rng.gen_range(0..bulksc_sig::LINE_WORDS);
        Addr(self.map.shared_word(line).0 + w)
    }

    /// Plan the next 1000-instruction window: decide the distinct lines
    /// accessed, build the op list, interleave with compute batches.
    fn plan_window(&mut self) {
        let p = self.params;
        let mut mem_ops: Vec<Instr> = Vec::new();

        // The Table 3 targets are *distinct* lines per chunk: keep drawing
        // until the window's read set reaches the target (a line reused
        // from an earlier window still counts as distinct in this one).
        let reads = sample_count(&mut self.rng, p.read_lines_per_kilo);
        let mut window_reads = std::collections::BTreeSet::new();
        let mut attempts = 0;
        while (window_reads.len() as u64) < reads && attempts < reads * 8 {
            attempts += 1;
            let line = self.pick_shared_line(false);
            if window_reads.insert(line) {
                let addr = self.shared_addr(line);
                mem_ops.push(Instr::Load {
                    addr,
                    consume: false,
                });
            }
        }

        if self.rng.gen_bool(p.write_burst_prob.min(1.0)) {
            for _ in 0..p.write_burst_lines {
                let line = if !self.recent_writes.is_empty() && self.rng.gen_bool(0.35) {
                    let i = self.rng.gen_index(self.recent_writes.len());
                    self.recent_writes[i]
                } else {
                    let l = self.pick_shared_line(true);
                    self.recent_writes.push(l);
                    if self.recent_writes.len() > 64 {
                        self.recent_writes.remove(0);
                    }
                    l
                };
                let addr = self.shared_addr(line);
                mem_ops.push(Instr::Store {
                    addr,
                    value: self.emitted,
                });
            }
        }

        // Private writes concentrate on a small hot set (stack frames,
        // loop-local buffers) that successive chunks rewrite — exactly the
        // dirty-non-speculative pattern the dynamically-private
        // optimization (§5.2) exploits, and the reason the paper's ≈24-line
        // Private Buffer suffices for 6–23-line private write sets.
        let priv_writes = sample_count(&mut self.rng, p.priv_write_lines_per_kilo);
        let hot_priv = ((p.priv_write_lines_per_kilo * 1.3) as u64 + 2).min(p.private_lines);
        let mut window_priv = std::collections::BTreeSet::new();
        let mut priv_attempts = 0;
        while (window_priv.len() as u64) < priv_writes && priv_attempts < priv_writes * 8 {
            priv_attempts += 1;
            let line = if self.rng.gen_bool(0.97) {
                self.rng.gen_range(0..hot_priv)
            } else {
                self.rng.gen_range(0..p.private_lines)
            };
            if window_priv.insert(line) {
                let addr = self.map.private_word(self.tid, line);
                mem_ops.push(Instr::Store {
                    addr,
                    value: self.emitted,
                });
            }
        }

        for _ in 0..sample_count(&mut self.rng, p.hot_reads_per_kilo) {
            let line = self.rng.gen_range(0..p.hot_lines.max(1));
            let addr = self.shared_addr(line); // hot lines are the set's head
            mem_ops.push(Instr::Load {
                addr,
                consume: false,
            });
        }
        for _ in 0..sample_count(&mut self.rng, p.hot_writes_per_kilo) {
            // Each thread owns an eighth of the hot set (its queue slots /
            // frontier entries): repeated updates to owned hot lines are
            // the migratory, dynamically-private pattern of §5.2, while
            // other threads' reads of them create the true conflicts.
            let span = (p.hot_lines.max(8) / self.threads.max(1) as u64).max(1);
            let line = self.tid as u64 * span + self.rng.gen_range(0..span);
            let addr = self.shared_addr(line);
            mem_ops.push(Instr::Store {
                addr,
                value: self.emitted,
            });
        }

        // Fill the memory-op budget with private-region reads. Stack
        // traffic has strong locality: most reads hit the same hot frames
        // the writes touch, so the R signature stays small (the paper's
        // Table 3 Read column counts these too).
        let budget = (WINDOW as f64 * p.mem_op_density) as usize;
        let stack_top = hot_priv.min(6);
        while mem_ops.len() < budget {
            let roll = self.rng.gen_f64();
            let line = if roll < 0.90 {
                self.rng.gen_range(0..stack_top) // the live stack frames
            } else if roll < 0.98 {
                self.rng.gen_range(0..hot_priv)
            } else {
                self.rng.gen_range(0..p.private_lines)
            };
            let addr = self.map.private_word(self.tid, line);
            mem_ops.push(Instr::Load {
                addr,
                consume: false,
            });
        }

        // Deterministic shuffle, then interleave with compute batches so
        // the window totals ~WINDOW dynamic instructions.
        for i in (1..mem_ops.len()).rev() {
            let j = self.rng.gen_index(i + 1);
            mem_ops.swap(i, j);
        }
        let gaps = mem_ops.len() as u64 + 1;
        let compute_total = WINDOW.saturating_sub(mem_ops.len() as u64);
        let per_gap = (compute_total / gaps).max(1) as u32;

        self.plan.clear();
        self.cursor = 0;
        for op in mem_ops {
            self.plan.push(Instr::Compute(per_gap));
            self.plan.push(op);
        }
        self.plan.push(Instr::Compute(per_gap));
    }

    fn emit(&mut self, i: Instr) -> Option<Instr> {
        self.emitted += i.dynamic_count();
        Some(i)
    }

    /// Begin a critical section (called between windows).
    fn start_lock(&mut self) -> Option<Instr> {
        let lock_idx = self.rng.gen_range(0..self.params.num_locks);
        let lock = self.map.lock(lock_idx);
        self.mode = Mode::LockPoll(lock);
        self.emit(Instr::Load {
            addr: lock,
            consume: true,
        })
    }
}

/// Sample an integer with expectation `rate` (deterministic given the
/// RNG): floor plus a Bernoulli for the fraction.
fn sample_count(rng: &mut SplitMix64, rate: f64) -> u64 {
    let base = rate.floor() as u64;
    let frac = rate - rate.floor();
    base + u64::from(frac > 0.0 && rng.gen_bool(frac))
}

impl ThreadProgram for SyntheticApp {
    fn next(&mut self, last_value: Option<u64>) -> Option<Instr> {
        loop {
            match self.mode.clone() {
                Mode::Window => {
                    // Synchronization pauses happen at window boundaries.
                    if self.cursor >= self.plan.len() {
                        if self.emitted >= self.next_barrier {
                            self.next_barrier =
                                self.emitted + self.params.barrier_every.unwrap_or(u64::MAX);
                            self.mode = Mode::BarrierGen;
                            return self.emit(Instr::Load {
                                addr: self.map.barrier_gen(),
                                consume: true,
                            });
                        }
                        if self.params.locks_per_kilo > 0.0 {
                            let rate = self.params.locks_per_kilo;
                            if self
                                .rng
                                .gen_bool((rate / (WINDOW as f64) * 1000.0).min(1.0))
                            {
                                return self.start_lock();
                            }
                        }
                        self.plan_window();
                    }
                    let i = self.plan[self.cursor];
                    self.cursor += 1;
                    return self.emit(i);
                }

                Mode::LockPoll(lock) => {
                    let v = last_value.expect("lock poll returns a value");
                    if v == 0 {
                        self.mode = Mode::LockTas(lock);
                        return self.emit(Instr::Rmw {
                            addr: lock,
                            op: RmwOp::TestAndSet,
                        });
                    }
                    // Busy: keep polling (test-and-test-and-set).
                    return self.emit(Instr::Load {
                        addr: lock,
                        consume: true,
                    });
                }
                Mode::LockTas(lock) => {
                    let old = last_value.expect("test-and-set returns the old value");
                    if old == 0 {
                        // Acquired: short critical section touching hot data.
                        let ops = 1 + self.rng.gen_index(3);
                        self.mode = Mode::Critical(lock, ops);
                        continue;
                    }
                    self.mode = Mode::LockPoll(lock);
                    return self.emit(Instr::Load {
                        addr: lock,
                        consume: true,
                    });
                }
                Mode::Critical(lock, remaining) => {
                    if remaining == 0 {
                        self.mode = Mode::Window;
                        return self.emit(Instr::Store {
                            addr: lock,
                            value: 0,
                        });
                    }
                    self.mode = Mode::Critical(lock, remaining - 1);
                    let line = self.rng.gen_range(0..self.params.hot_lines.max(1));
                    let addr = self.shared_addr(line);
                    let write = self.rng.gen_bool(0.5);
                    return self.emit(if write {
                        Instr::Store {
                            addr,
                            value: self.emitted,
                        }
                    } else {
                        Instr::Load {
                            addr,
                            consume: false,
                        }
                    });
                }

                Mode::BarrierGen => {
                    let g = last_value.expect("generation load returns a value");
                    self.mode = Mode::BarrierCount(g);
                    return self.emit(Instr::Rmw {
                        addr: self.map.barrier_count(),
                        op: RmwOp::FetchAdd(1),
                    });
                }
                Mode::BarrierCount(g) => {
                    let arrivals = last_value.expect("fetch-add returns the old value") + 1;
                    if arrivals == self.threads as u64 {
                        // Release: reset the counter and bump the sense.
                        self.mode = Mode::Window;
                        self.emit(Instr::Store {
                            addr: self.map.barrier_count(),
                            value: 0,
                        });
                        return self.emit(Instr::Store {
                            addr: self.map.barrier_gen(),
                            value: g + 1,
                        });
                    }
                    self.mode = Mode::BarrierWait(g);
                    return self.emit(Instr::Load {
                        addr: self.map.barrier_gen(),
                        consume: true,
                    });
                }
                Mode::BarrierWait(g) => {
                    let now = last_value.expect("generation poll returns a value");
                    if now != g {
                        self.mode = Mode::Window;
                        continue;
                    }
                    self.mode = Mode::BarrierWait(g);
                    return self.emit(Instr::Load {
                        addr: self.map.barrier_gen(),
                        consume: true,
                    });
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn app(name: &str) -> SyntheticApp {
        SyntheticApp::new(by_name(name).unwrap(), 0, 8, 42)
    }

    /// Drive an app standalone (all loads return 0 except nothing spins
    /// forever at tid 0... locks start free) and collect per-window stats.
    fn distinct_lines(name: &str, kilos: u64) -> (f64, f64, f64) {
        let map = AddressMap::new(8);
        // Run single-threaded so barriers self-release under this driver.
        let mut a = SyntheticApp::new(by_name(name).unwrap(), 0, 1, 42);
        let mut last: Option<u64> = None;
        // Shared heap starts here; lower addresses are sync variables,
        // which the paper's set-size statistics do not dominate.
        let heap_base = map.shared_word(0).0;
        let mut emitted = 0u64;
        let (mut reads, mut writes, mut privw) = (0usize, 0usize, 0usize);
        let mut windows = 0u64;
        let (mut r, mut w, mut p) = (BTreeSet::new(), BTreeSet::new(), BTreeSet::new());
        while emitted < kilos * 1000 {
            let Some(i) = a.next(last.take()) else { break };
            emitted += i.dynamic_count();
            match i {
                Instr::Load { addr, consume } => {
                    if consume {
                        // Lock poll: pretend the lock is free.
                        last = Some(0);
                    }
                    if !map.is_static_private(addr) && addr.0 >= heap_base {
                        r.insert(addr.line());
                    }
                }
                Instr::Store { addr, .. } => {
                    if map.is_static_private(addr) {
                        p.insert(addr.line());
                    } else if addr.0 >= heap_base {
                        w.insert(addr.line());
                    }
                }
                Instr::Rmw { .. } => {
                    last = Some(0); // lock acquired first try
                }
                _ => {}
            }
            if emitted >= (windows + 1) * 1000 {
                windows += 1;
                reads += r.len();
                writes += w.len();
                privw += p.len();
                r.clear();
                w.clear();
                p.clear();
            }
        }
        (
            reads as f64 / windows as f64,
            writes as f64 / windows as f64,
            privw as f64 / windows as f64,
        )
    }

    #[test]
    fn catalog_has_13_apps() {
        let c = catalog();
        assert_eq!(c.len(), 13);
        assert_eq!(splash2().len(), 11);
        let names: BTreeSet<&str> = c.iter().map(|a| a.name).collect();
        assert!(names.contains("radix") && names.contains("sweb2005"));
        assert!(by_name("ocean").is_some());
        assert!(
            by_name("volrend").is_none(),
            "volrend is excluded, as in the paper"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = app("barnes");
        let mut b = app("barnes");
        let (mut va, mut vb): (Option<u64>, Option<u64>) = (None, None);
        for _ in 0..5000 {
            let x = a.next(va.take());
            let y = b.next(vb.take());
            assert_eq!(x, y);
            if x.map(|i| i.consumes_value()).unwrap_or(false) {
                va = Some(0);
                vb = Some(0);
            }
        }
    }

    #[test]
    fn clone_is_a_checkpoint() {
        let mut a = app("lu");
        for _ in 0..100 {
            let i = a.next(None).unwrap();
            assert!(!i.consumes_value(), "lu has no sync in the first 100 slots");
        }
        let cp = a.clone_box();
        let mut replay = cp.clone_box();
        for _ in 0..200 {
            let x = a.next(None);
            let y = replay.next(None);
            assert_eq!(x, y, "checkpoint replay must match");
        }
    }

    #[test]
    fn read_set_sizes_track_table3() {
        for (name, expect) in [("barnes", 22.6), ("lu", 15.9), ("ocean", 45.3)] {
            let (r, _, _) = distinct_lines(name, 50);
            assert!(
                (r - expect).abs() / expect < 0.35,
                "{name}: read set {r:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn priv_write_sets_track_table3() {
        for (name, expect) in [("fft", 22.7), ("water-sp", 17.0)] {
            let (_, _, p) = distinct_lines(name, 50);
            assert!(
                (p - expect).abs() / expect < 0.35,
                "{name}: priv write set {p:.1} vs paper {expect}"
            );
        }
    }

    #[test]
    fn write_sets_are_bursty() {
        // water-sp almost never writes shared data; radix writes a lot.
        let (_, w_water, _) = distinct_lines("water-sp", 80);
        let (_, w_radix, _) = distinct_lines("radix", 80);
        assert!(w_water < 0.6, "water-sp writes {w_water:.2}");
        assert!(w_radix > 2.0, "radix writes {w_radix:.2}");
        assert!(w_radix > 5.0 * w_water.max(0.01));
    }

    #[test]
    fn strided_apps_advance_their_cursor() {
        let mut a = app("radix");
        let mut lines = BTreeSet::new();
        let mut emitted = 0;
        let mut last = None;
        while emitted < 20_000 {
            let Some(i) = a.next(last.take()) else { break };
            emitted += i.dynamic_count();
            if i.consumes_value() {
                last = Some(0);
            }
            if let Instr::Store { addr, .. } = i {
                if !AddressMap::new(8).is_static_private(addr) {
                    lines.insert(addr.line().0);
                }
            }
        }
        // Strided writes spread across the working set rather than
        // clustering near the start.
        let span = lines.iter().max().unwrap_or(&0) - lines.iter().min().unwrap_or(&0);
        assert!(
            span > 10_000,
            "stride should cover a wide range, span={span}"
        );
    }

    #[test]
    fn different_tids_use_disjoint_private_regions() {
        let m = AddressMap::new(8);
        for tid in [0u32, 7] {
            let mut a = SyntheticApp::new(by_name("fft").unwrap(), tid, 8, 1);
            let mut emitted = 0;
            let mut last = None;
            while emitted < 5000 {
                let Some(i) = a.next(last.take()) else { break };
                emitted += i.dynamic_count();
                if i.consumes_value() {
                    last = Some(0);
                }
                if let Some(addr) = i.addr() {
                    if m.is_static_private(addr) {
                        // Must be inside this thread's own region.
                        let base = m.private_word(tid, 0).0;
                        let top = m.private_word(tid, 0).0 + 0x0100_0000;
                        assert!((base..top).contains(&addr.0));
                    }
                }
            }
        }
    }
}
