//! Address-space layout for the synthetic workloads.
//!
//! Every workload carves the simulated address space the same way, so the
//! rest of the system can reason about it:
//!
//! * a lock region and a barrier region (synchronization variables),
//! * one shared heap (the data the consistency machinery fights over),
//! * one private region per thread (stack and thread-local heap).
//!
//! The private region is what the statically-private scheme of paper §5.1
//! declares private via a page attribute; [`AddressMap::is_static_private`]
//! is that attribute check.

use bulksc_sig::{Addr, LineAddr, LINE_WORDS};

/// Word address where the lock region starts.
const LOCKS_BASE: u64 = 0x0010_0000;
/// Word address of the barrier counter.
const BARRIER_BASE: u64 = 0x0020_0000;
/// Word address where the shared heap starts.
const SHARED_BASE: u64 = 0x0100_0000;
/// Word address where per-thread private regions start.
const PRIVATE_BASE: u64 = 0x8000_0000;
/// Words per thread-private region.
const PRIVATE_STRIDE: u64 = 0x0100_0000;

/// The common address-space layout.
///
/// # Example
///
/// ```
/// use bulksc_workloads::AddressMap;
/// let map = AddressMap::new(8);
/// assert!(map.is_static_private(map.private_word(3, 0)));
/// assert!(!map.is_static_private(map.shared_word(0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressMap {
    threads: u32,
}

impl AddressMap {
    /// A layout for `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or more than 64 (the directory bit-vector
    /// width).
    pub fn new(threads: u32) -> Self {
        assert!((1..=64).contains(&threads), "1..=64 threads supported");
        AddressMap { threads }
    }

    /// Number of threads this layout was built for.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The `i`-th lock variable (one per cache line to avoid false
    /// sharing between locks).
    pub fn lock(&self, i: u64) -> Addr {
        Addr(LOCKS_BASE + i * LINE_WORDS)
    }

    /// The barrier arrival counter.
    pub fn barrier_count(&self) -> Addr {
        Addr(BARRIER_BASE)
    }

    /// The barrier generation (sense) word — on its own line.
    pub fn barrier_gen(&self) -> Addr {
        Addr(BARRIER_BASE + LINE_WORDS)
    }

    /// The first word of shared-heap line `i`.
    pub fn shared_word(&self, line: u64) -> Addr {
        Addr(SHARED_BASE + line * LINE_WORDS)
    }

    /// Shared-heap line `i` as a line address.
    pub fn shared_line(&self, line: u64) -> LineAddr {
        self.shared_word(line).line()
    }

    /// The first word of line `i` of thread `tid`'s private region.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range for this layout.
    pub fn private_word(&self, tid: u32, line: u64) -> Addr {
        assert!(tid < self.threads, "thread {tid} out of range");
        // The odd per-thread line skew keeps the (power-of-two-aligned)
        // region bases from colliding in the set-indexed structures
        // (L1 sets, directory-cache sets) the way real, diversely-mapped
        // virtual address spaces do not.
        let skew = tid as u64 * 1021 * LINE_WORDS;
        Addr(PRIVATE_BASE + tid as u64 * PRIVATE_STRIDE + skew + line * LINE_WORDS)
    }

    /// The page-attribute check of §5.1: true for addresses in any
    /// thread-private region.
    pub fn is_static_private(&self, addr: Addr) -> bool {
        addr.0 >= PRIVATE_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let m = AddressMap::new(8);
        let lock_line = m.lock(100).line();
        let shared = m.shared_line(0);
        let private = m.private_word(7, 0).line();
        assert_ne!(lock_line, shared);
        assert_ne!(shared, private);
        assert!(m.lock(0).0 < SHARED_BASE);
    }

    #[test]
    fn locks_get_their_own_lines() {
        let m = AddressMap::new(2);
        assert_ne!(m.lock(0).line(), m.lock(1).line());
    }

    #[test]
    fn barrier_words_are_separate_lines() {
        let m = AddressMap::new(4);
        assert_ne!(m.barrier_count().line(), m.barrier_gen().line());
    }

    #[test]
    fn private_regions_do_not_overlap() {
        let m = AddressMap::new(8);
        let top_of_0 = m.private_word(0, PRIVATE_STRIDE / LINE_WORDS - 1);
        let base_of_1 = m.private_word(1, 0);
        assert!(top_of_0.0 < base_of_1.0);
    }

    #[test]
    fn static_private_predicate() {
        let m = AddressMap::new(8);
        assert!(m.is_static_private(m.private_word(0, 5)));
        assert!(!m.is_static_private(m.shared_word(1_000_000)));
        assert!(!m.is_static_private(m.lock(3)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn private_word_checks_tid() {
        AddressMap::new(2).private_word(2, 0);
    }

    #[test]
    #[should_panic(expected = "threads supported")]
    fn rejects_zero_threads() {
        AddressMap::new(0);
    }
}
