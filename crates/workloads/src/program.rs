//! Thread programs: interactive instruction streams with checkpointing.
//!
//! Each simulated core runs one [`ThreadProgram`]: a resumable state
//! machine that emits instructions one at a time and *reacts to loaded
//! values* (that is what makes spin locks, barriers, and litmus tests
//! expressible). Checkpointing — the rollback substrate BulkSC borrows from
//! checkpointed processors — is simply cloning the program state:
//! [`ThreadProgram::clone_box`] is taken at every chunk boundary, and a
//! squash replaces the live program with a clone of the checkpoint.
//!
//! [`ScriptProgram`] is a small structured-program interpreter sufficient
//! for litmus tests, synchronization microbenchmarks, and directed tests;
//! the synthetic applications in [`apps`](crate::apps) implement the trait
//! directly.

use bulksc_sig::Addr;

use crate::isa::{Instr, RmwOp};

/// A resumable, checkpointable instruction stream.
///
/// ## Contract
///
/// * The core calls [`next`](ThreadProgram::next) to fetch the next
///   instruction. If the previously fetched instruction
///   [`consumes_value`](Instr::consumes_value), the call carries
///   `Some(value)` with its result; otherwise `None`.
/// * Returning `None` means the thread has finished.
/// * [`clone_box`](ThreadProgram::clone_box) snapshots the *architectural*
///   program state; re-running a clone may observe different memory values
///   (that is the point of a squash-and-reexecute).
pub trait ThreadProgram {
    /// Produce the next instruction, given the value of the last consuming
    /// load/RMW (if the last instruction was one).
    fn next(&mut self, last_value: Option<u64>) -> Option<Instr>;

    /// Snapshot the program state (a checkpoint).
    fn clone_box(&self) -> Box<dyn ThreadProgram>;

    /// Values this program has recorded so far (see [`ScriptOp::Record`]).
    /// Used by litmus harnesses to check outcomes; defaults to none.
    fn observations(&self) -> Vec<u64> {
        Vec::new()
    }
}

impl Clone for Box<dyn ThreadProgram> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One statement of a [`ScriptProgram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptOp {
    /// Emit a single instruction.
    Op(Instr),
    /// Load `addr` repeatedly (consuming) until it equals `value`,
    /// emitting `pad` compute instructions between polls.
    SpinUntilEq {
        /// Address polled.
        addr: Addr,
        /// Value waited for.
        value: u64,
        /// Compute padding between polls.
        pad: u32,
    },
    /// Acquire a test-and-test-and-set lock at `addr`.
    AcquireLock(Addr),
    /// Release the lock at `addr` (store 0).
    ReleaseLock(Addr),
    /// Arrive at a sense-reversing centralized barrier.
    Barrier {
        /// Arrival counter address.
        count: Addr,
        /// Generation (sense) address.
        gen: Addr,
        /// Number of participating threads.
        n: u64,
    },
    /// Load `addr` (consuming) and append the value to the observation log.
    Record(Addr),
    /// Load `addr` (consuming) and discard the value: used to warm caches
    /// while serializing fetch (the program waits for the value).
    WarmRead(Addr),
    /// Perform an atomic read-modify-write and append the returned old
    /// value to the observation log.
    RecordRmw {
        /// Word updated atomically.
        addr: Addr,
        /// The atomic update.
        op: RmwOp,
    },
}

/// Interpreter state within one [`ScriptOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
enum OpState {
    /// Ready to start the op at `pc`.
    Start,
    /// SpinUntilEq / lock spin: a poll load was issued, awaiting value.
    AwaitPoll,
    /// Spin padding emitted, poll again next.
    PollAgain,
    /// Lock: test-and-set issued, awaiting old value.
    AwaitTas,
    /// Barrier: loaded the generation, awaiting it.
    AwaitGen,
    /// Barrier: fetch-add issued, awaiting old count.
    AwaitCount {
        /// Generation observed at arrival.
        gen_seen: u64,
    },
    /// Barrier (non-last): about to poll the generation.
    AwaitGenPoll {
        /// Generation observed at arrival.
        gen_seen: u64,
    },
    /// Barrier (non-last): generation poll issued, awaiting value.
    AwaitGenValue {
        /// Generation observed at arrival.
        gen_seen: u64,
    },
    /// Barrier (last thread): reset count, then bump generation.
    EmitGenBump {
        /// Generation observed at arrival.
        gen_seen: u64,
    },
    /// Record: load issued, awaiting value.
    AwaitRecord,
}

/// A structured test program: a list of [`ScriptOp`]s executed in order.
///
/// # Example
///
/// ```
/// use bulksc_sig::Addr;
/// use bulksc_workloads::{Instr, ScriptOp, ScriptProgram, ThreadProgram};
///
/// let mut p = ScriptProgram::new(vec![
///     ScriptOp::Op(Instr::Store { addr: Addr(0), value: 1 }),
///     ScriptOp::Record(Addr(4)),
/// ]);
/// assert!(matches!(p.next(None), Some(Instr::Store { .. })));
/// assert!(matches!(p.next(None), Some(Instr::Load { consume: true, .. })));
/// assert_eq!(p.next(Some(42)), None);
/// assert_eq!(p.observations(), vec![42]);
/// ```
#[derive(Clone, Debug)]
pub struct ScriptProgram {
    ops: Vec<ScriptOp>,
    pc: usize,
    state: OpState,
    observed: Vec<u64>,
    /// Compute padding used inside lock/barrier spins.
    spin_pad: u32,
}

impl ScriptProgram {
    /// A program executing `ops` in order.
    pub fn new(ops: Vec<ScriptOp>) -> Self {
        ScriptProgram {
            ops,
            pc: 0,
            state: OpState::Start,
            observed: Vec::new(),
            spin_pad: 8,
        }
    }

    fn advance(&mut self) {
        self.pc += 1;
        self.state = OpState::Start;
    }

    fn poll(addr: Addr) -> Instr {
        Instr::Load {
            addr,
            consume: true,
        }
    }
}

impl ThreadProgram for ScriptProgram {
    fn next(&mut self, last_value: Option<u64>) -> Option<Instr> {
        loop {
            let op = self.ops.get(self.pc)?.clone();
            match (&op, self.state.clone()) {
                (ScriptOp::Op(i), OpState::Start) => {
                    self.advance();
                    return Some(*i);
                }

                (ScriptOp::SpinUntilEq { addr, .. }, OpState::Start)
                | (ScriptOp::SpinUntilEq { addr, .. }, OpState::PollAgain) => {
                    self.state = OpState::AwaitPoll;
                    return Some(Self::poll(*addr));
                }
                (ScriptOp::SpinUntilEq { value, pad, .. }, OpState::AwaitPoll) => {
                    let v = last_value.expect("spin poll delivers a value");
                    if v == *value {
                        self.advance();
                        continue;
                    }
                    self.state = OpState::PollAgain;
                    if *pad > 0 {
                        return Some(Instr::Compute(*pad));
                    }
                }

                (ScriptOp::AcquireLock(addr), OpState::Start)
                | (ScriptOp::AcquireLock(addr), OpState::PollAgain) => {
                    self.state = OpState::AwaitPoll;
                    return Some(Self::poll(*addr));
                }
                (ScriptOp::AcquireLock(addr), OpState::AwaitPoll) => {
                    let v = last_value.expect("lock poll delivers a value");
                    if v == 0 {
                        self.state = OpState::AwaitTas;
                        return Some(Instr::Rmw {
                            addr: *addr,
                            op: RmwOp::TestAndSet,
                        });
                    }
                    self.state = OpState::PollAgain;
                    return Some(Instr::Compute(self.spin_pad));
                }
                (ScriptOp::AcquireLock(_), OpState::AwaitTas) => {
                    let old = last_value.expect("test-and-set delivers the old value");
                    if old == 0 {
                        self.advance(); // lock acquired
                        continue;
                    }
                    // Lost the race: spin again.
                    self.state = OpState::PollAgain;
                    return Some(Instr::Compute(self.spin_pad));
                }

                (ScriptOp::ReleaseLock(addr), OpState::Start) => {
                    self.advance();
                    return Some(Instr::Store {
                        addr: *addr,
                        value: 0,
                    });
                }

                (ScriptOp::Barrier { gen, .. }, OpState::Start) => {
                    self.state = OpState::AwaitGen;
                    return Some(Self::poll(*gen));
                }
                (ScriptOp::Barrier { count, .. }, OpState::AwaitGen) => {
                    let g = last_value.expect("generation load delivers a value");
                    self.state = OpState::AwaitCount { gen_seen: g };
                    return Some(Instr::Rmw {
                        addr: *count,
                        op: RmwOp::FetchAdd(1),
                    });
                }
                (ScriptOp::Barrier { count, n, .. }, OpState::AwaitCount { gen_seen }) => {
                    let arrivals = last_value.expect("fetch-add delivers the old value") + 1;
                    if arrivals == *n {
                        // Last thread: reset the counter, then bump the
                        // generation to release everyone.
                        self.state = OpState::EmitGenBump { gen_seen };
                        return Some(Instr::Store {
                            addr: *count,
                            value: 0,
                        });
                    }
                    self.state = OpState::AwaitGenPoll { gen_seen };
                    continue;
                }
                (ScriptOp::Barrier { gen, .. }, OpState::EmitGenBump { gen_seen }) => {
                    self.advance();
                    return Some(Instr::Store {
                        addr: *gen,
                        value: gen_seen + 1,
                    });
                }
                (ScriptOp::Barrier { gen, .. }, OpState::AwaitGenPoll { gen_seen }) => {
                    self.state = OpState::AwaitGenValue { gen_seen };
                    return Some(Self::poll(*gen));
                }
                (ScriptOp::Barrier { .. }, OpState::AwaitGenValue { gen_seen }) => {
                    let g = last_value.expect("generation poll delivers a value");
                    if g != gen_seen {
                        self.advance(); // released
                        continue;
                    }
                    self.state = OpState::AwaitGenPoll { gen_seen };
                    return Some(Instr::Compute(self.spin_pad));
                }

                (ScriptOp::Record(addr), OpState::Start) => {
                    self.state = OpState::AwaitRecord;
                    return Some(Self::poll(*addr));
                }
                (ScriptOp::Record(_), OpState::AwaitRecord) => {
                    let v = last_value.expect("record load delivers a value");
                    self.observed.push(v);
                    self.advance();
                    continue;
                }

                (ScriptOp::WarmRead(addr), OpState::Start) => {
                    self.state = OpState::AwaitRecord;
                    return Some(Self::poll(*addr));
                }
                (ScriptOp::WarmRead(_), OpState::AwaitRecord) => {
                    last_value.expect("warm read delivers a value");
                    self.advance();
                    continue;
                }

                (ScriptOp::RecordRmw { addr, op }, OpState::Start) => {
                    self.state = OpState::AwaitRecord;
                    return Some(Instr::Rmw {
                        addr: *addr,
                        op: *op,
                    });
                }
                (ScriptOp::RecordRmw { .. }, OpState::AwaitRecord) => {
                    let v = last_value.expect("rmw delivers the old value");
                    self.observed.push(v);
                    self.advance();
                    continue;
                }

                (op, st) => unreachable!("script state machine: {op:?} in {st:?}"),
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn observations(&self) -> Vec<u64> {
        self.observed.clone()
    }
}
