//! The abstract instruction set executed by simulated threads.
//!
//! The simulator does not interpret real machine code; programs are state
//! machines emitting [`Instr`] values. The vocabulary is exactly what the
//! memory-consistency experiments need: computation (which only consumes
//! pipeline slots), loads and stores (which interact with the memory
//! system), atomic read-modify-writes (the substrate for locks and
//! barriers), fences (meaningful to the baselines; BulkSC executes them as
//! no-ops, §3.3), and uncached I/O operations (which BulkSC must serialize
//! against chunk commits, §4.1.3).

use bulksc_sig::Addr;

/// The atomic update performed by an [`Instr::Rmw`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwOp {
    /// Store 1; the old value is returned (lock acquisition).
    TestAndSet,
    /// Add the operand; the old value is returned (barrier arrival).
    FetchAdd(u64),
    /// Store the operand; the old value is returned.
    Swap(u64),
}

impl RmwOp {
    /// The value stored when this operation is applied to `old`.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            RmwOp::TestAndSet => 1,
            RmwOp::FetchAdd(n) => old.wrapping_add(n),
            RmwOp::Swap(n) => n,
        }
    }
}

/// One dynamic instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `n` ALU operations: occupy issue slots, touch no memory.
    Compute(u32),
    /// A load. If `consume` is true the program needs the loaded value to
    /// decide what to do next (a dependent branch): the core delivers the
    /// value to [`ThreadProgram::next`](crate::ThreadProgram::next) and
    /// fetch stalls until it is available.
    Load {
        /// Word address to read.
        addr: Addr,
        /// True if the program consumes the value.
        consume: bool,
    },
    /// A store of `value` to `addr`.
    Store {
        /// Word address to write.
        addr: Addr,
        /// Value written.
        value: u64,
    },
    /// An atomic read-modify-write; always consuming (the old value is
    /// delivered to the program).
    Rmw {
        /// Word address updated.
        addr: Addr,
        /// The atomic update.
        op: RmwOp,
    },
    /// A full memory fence. Baseline models order accesses around it;
    /// BulkSC executes it without any ordering constraint (§3.3).
    Fence,
    /// An uncached I/O operation (§4.1.3): cannot be speculated; BulkSC
    /// stalls until the current chunk commits, performs it, then opens a
    /// new chunk.
    Io,
}

impl Instr {
    /// The memory address this instruction touches, if any.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Instr::Load { addr, .. } | Instr::Store { addr, .. } | Instr::Rmw { addr, .. } => {
                Some(*addr)
            }
            Instr::Compute(_) | Instr::Fence | Instr::Io => None,
        }
    }

    /// True if the program requires the result value before proceeding.
    pub fn consumes_value(&self) -> bool {
        matches!(self, Instr::Load { consume: true, .. } | Instr::Rmw { .. })
    }

    /// True for loads and RMWs (anything that reads memory).
    pub fn is_read(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Rmw { .. })
    }

    /// True for stores and RMWs (anything that writes memory).
    pub fn is_write(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::Rmw { .. })
    }

    /// Number of dynamic instructions this entry represents (a
    /// `Compute(n)` batch counts as `n`).
    pub fn dynamic_count(&self) -> u64 {
        match self {
            Instr::Compute(n) => *n as u64,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwOp::TestAndSet.apply(0), 1);
        assert_eq!(RmwOp::TestAndSet.apply(7), 1);
        assert_eq!(RmwOp::FetchAdd(3).apply(4), 7);
        assert_eq!(RmwOp::Swap(9).apply(1), 9);
        assert_eq!(RmwOp::FetchAdd(1).apply(u64::MAX), 0, "wrapping");
    }

    #[test]
    fn classification() {
        let ld = Instr::Load {
            addr: Addr(4),
            consume: false,
        };
        let ldc = Instr::Load {
            addr: Addr(4),
            consume: true,
        };
        let st = Instr::Store {
            addr: Addr(8),
            value: 1,
        };
        let rmw = Instr::Rmw {
            addr: Addr(12),
            op: RmwOp::TestAndSet,
        };
        assert!(ld.is_read() && !ld.is_write() && !ld.consumes_value());
        assert!(ldc.consumes_value());
        assert!(st.is_write() && !st.is_read());
        assert!(rmw.is_read() && rmw.is_write() && rmw.consumes_value());
        assert!(!Instr::Fence.is_read() && !Instr::Fence.is_write());
        assert_eq!(st.addr(), Some(Addr(8)));
        assert_eq!(Instr::Compute(5).addr(), None);
    }

    #[test]
    fn dynamic_count_batches_compute() {
        assert_eq!(Instr::Compute(17).dynamic_count(), 17);
        assert_eq!(Instr::Io.dynamic_count(), 1);
    }
}
