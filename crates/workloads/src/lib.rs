//! Workloads for the BulkSC reproduction: the abstract ISA, thread
//! programs, synthetic applications, and litmus tests.
//!
//! The paper evaluates BulkSC on SPLASH-2 and two commercial workloads run
//! under the SESC simulator. This crate provides the executable stand-ins
//! (see `DESIGN.md` §1 for the substitution argument):
//!
//! * [`isa`] — the dynamic instruction vocabulary ([`Instr`]);
//! * [`program`] — the [`ThreadProgram`] trait (resumable, value-reactive,
//!   checkpointable instruction streams) and [`ScriptProgram`], a small
//!   structured-program interpreter for directed tests;
//! * [`layout`] — the common address-space layout, including the §5.1
//!   static-private page attribute;
//! * [`apps`] — parameterized synthetic generators for the paper's 13
//!   applications, tuned to the sharing statistics the paper itself
//!   reports;
//! * [`litmus`] — classic SC litmus tests (SB, MP, LB, IRIW, CoRR) with
//!   their forbidden outcomes;
//! * [`refexec`] — a sequentially-consistent reference executor used as an
//!   oracle and for fast unit tests.

pub mod apps;
pub mod fuzzprog;
pub mod isa;
pub mod layout;
pub mod litmus;
pub mod program;
pub mod refexec;

pub use apps::{by_name, catalog, splash2, AppParams, SyntheticApp};
pub use fuzzprog::{fuzz_programs, fuzz_script, FuzzSpec};
pub use isa::{Instr, RmwOp};
pub use layout::AddressMap;
pub use litmus::Litmus;
pub use program::{ScriptOp, ScriptProgram, ThreadProgram};
pub use refexec::{run_in_order, run_interleaved, RefResult};
