//! Litmus tests: the programs that separate SC from weaker models.
//!
//! BulkSC's whole claim (§3.1) is that every execution it produces is
//! sequentially consistent at the individual-access level even though the
//! machine reorders aggressively inside chunks. These classic litmus tests
//! make that checkable: each names an outcome *forbidden under SC*; the
//! test harness runs them under many timing skews and asserts the
//! forbidden outcome never appears under any BulkSC (or SC baseline)
//! configuration — while the RC baseline, given enough tries, exhibits it
//! for the store-buffering shape.

use bulksc_sig::Addr;

use crate::isa::Instr;
use crate::program::{ScriptOp, ScriptProgram, ThreadProgram};

/// Spacing between litmus variables, in words (8 words = 2 cache lines:
/// no false sharing between variables).
const VAR_SPACING: u64 = 8;

/// Word address of litmus variable `i`.
pub fn var(i: u64) -> Addr {
    Addr(0x1_0000 + i * VAR_SPACING)
}

/// A litmus test: per-thread scripts plus the SC-forbidden outcome.
#[derive(Clone)]
pub struct Litmus {
    /// Conventional name (SB, MP, IRIW, CoRR).
    pub name: &'static str,
    /// Per-thread instruction scripts.
    pub scripts: Vec<Vec<ScriptOp>>,
    /// Returns true if the per-thread observation logs form an outcome
    /// that sequential consistency forbids.
    pub forbidden: fn(&[Vec<u64>]) -> bool,
}

impl std::fmt::Debug for Litmus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Litmus")
            .field("name", &self.name)
            .field("threads", &self.scripts.len())
            .finish()
    }
}

impl Litmus {
    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.scripts.len()
    }

    /// Instantiate the thread programs, prepending `skews[i]` compute
    /// instructions to thread `i` to perturb relative timing.
    ///
    /// # Panics
    ///
    /// Panics if `skews.len() != self.threads()`.
    pub fn programs(&self, skews: &[u32]) -> Vec<Box<dyn ThreadProgram>> {
        assert_eq!(skews.len(), self.threads(), "one skew per thread");
        self.scripts
            .iter()
            .zip(skews)
            .map(|(script, &skew)| {
                let mut ops = Vec::with_capacity(script.len() + 1);
                if skew > 0 {
                    ops.push(ScriptOp::Op(Instr::Compute(skew)));
                }
                ops.extend(script.iter().cloned());
                Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
            })
            .collect()
    }
}

fn st(a: Addr, v: u64) -> ScriptOp {
    ScriptOp::Op(Instr::Store { addr: a, value: v })
}

/// Prepend a cache-warming phase: each thread reads, with fetch
/// serialization, every variable it will touch. Weak behaviours (e.g.
/// store buffering under RC) require warm caches — a cold machine's
/// exclusive prefetches serialize everything through the directory and
/// mask the reordering the test is looking for.
fn warmed(vars: &[Addr], rest: Vec<ScriptOp>) -> Vec<ScriptOp> {
    let mut ops: Vec<ScriptOp> = vars.iter().map(|&v| ScriptOp::WarmRead(v)).collect();
    ops.push(ScriptOp::Op(Instr::Compute(40)));
    ops.extend(rest);
    ops
}

/// Store buffering (Dekker): both threads store then read the other
/// variable. SC forbids both reading 0.
pub fn store_buffering() -> Litmus {
    let (x, y) = (var(0), var(1));
    Litmus {
        name: "SB",
        scripts: vec![
            warmed(&[x, y], vec![st(x, 1), ScriptOp::Record(y)]),
            warmed(&[y, x], vec![st(y, 1), ScriptOp::Record(x)]),
        ],
        forbidden: |obs| obs[0] == [0] && obs[1] == [0],
    }
}

/// Message passing: data then flag; the observer must not see the flag
/// without the data.
pub fn message_passing() -> Litmus {
    let (data, flag) = (var(2), var(3));
    Litmus {
        name: "MP",
        scripts: vec![
            warmed(&[data, flag], vec![st(data, 1), st(flag, 1)]),
            warmed(
                &[flag, data],
                vec![ScriptOp::Record(flag), ScriptOp::Record(data)],
            ),
        ],
        forbidden: |obs| obs[1] == [1, 0],
    }
}

/// Load buffering: each thread loads one variable then stores the other.
/// SC forbids both loads returning 1.
pub fn load_buffering() -> Litmus {
    let (x, y) = (var(4), var(5));
    Litmus {
        name: "LB",
        scripts: vec![
            warmed(&[x, y], vec![ScriptOp::Record(x), st(y, 1)]),
            warmed(&[y, x], vec![ScriptOp::Record(y), st(x, 1)]),
        ],
        forbidden: |obs| obs[0] == [1] && obs[1] == [1],
    }
}

/// Independent reads of independent writes: the two observers must agree
/// on the order of the two writes.
pub fn iriw() -> Litmus {
    let (x, y) = (var(6), var(7));
    Litmus {
        name: "IRIW",
        scripts: vec![
            warmed(&[x], vec![st(x, 1)]),
            warmed(&[y], vec![st(y, 1)]),
            warmed(&[x, y], vec![ScriptOp::Record(x), ScriptOp::Record(y)]),
            warmed(&[y, x], vec![ScriptOp::Record(y), ScriptOp::Record(x)]),
        ],
        forbidden: |obs| obs[2] == [1, 0] && obs[3] == [1, 0],
    }
}

/// Coherence of reads to one location: two reads of the same variable must
/// not observe its values in reverse write order.
pub fn corr() -> Litmus {
    let x = var(8);
    Litmus {
        name: "CoRR",
        scripts: vec![
            warmed(&[x], vec![st(x, 1), st(x, 2)]),
            warmed(&[x], vec![ScriptOp::Record(x), ScriptOp::Record(x)]),
        ],
        forbidden: |obs| {
            let (a, b) = (obs[1][0], obs[1][1]);
            a > b // saw a newer value, then an older one
        },
    }
}

/// Read-own-write coherence (CoWR): after T1 writes x, its read of x must
/// return its own value or a newer one — never the initial value, which
/// is older than T1's own write in the per-location order.
pub fn cowr() -> Litmus {
    let x = var(9);
    Litmus {
        name: "CoWR",
        scripts: vec![
            warmed(&[x], vec![st(x, 1)]),
            warmed(&[x], vec![st(x, 2), ScriptOp::Record(x)]),
        ],
        forbidden: |obs| obs[1] == [0],
    }
}

/// Dekker with atomics: two test-and-set attempts on one word — exactly
/// one thread may win (observe 0). Both winning is forbidden under any
/// coherent model; it catches broken RMW atomicity.
pub fn rmw_dekker() -> Litmus {
    let x = var(10);
    Litmus {
        name: "RMW-Dekker",
        scripts: vec![
            warmed(
                &[x],
                vec![ScriptOp::RecordRmw {
                    addr: x,
                    op: crate::isa::RmwOp::TestAndSet,
                }],
            ),
            warmed(
                &[x],
                vec![ScriptOp::RecordRmw {
                    addr: x,
                    op: crate::isa::RmwOp::TestAndSet,
                }],
            ),
        ],
        forbidden: |obs| obs[0] == [0] && obs[1] == [0],
    }
}

/// Write-to-read causality (WRC): T1 observes T0's write before
/// publishing its own flag; T2 must not see the flag without the data —
/// the causality chain x=1 → (read x) → y=1 → (read y) forbids reading
/// x as 0 afterwards.
pub fn wrc() -> Litmus {
    let (x, y) = (var(11), var(12));
    Litmus {
        name: "WRC",
        scripts: vec![
            warmed(&[x], vec![st(x, 1)]),
            warmed(&[x, y], vec![ScriptOp::Record(x), st(y, 1)]),
            warmed(&[y, x], vec![ScriptOp::Record(y), ScriptOp::Record(x)]),
        ],
        forbidden: |obs| obs[1] == [1] && obs[2] == [1, 0],
    }
}

/// 2+2W: each thread writes both variables in opposite orders. SC forbids
/// the final state x=1 ∧ y=1 (each thread's *first* store would have to
/// be coherence-last, contradicting its own program order). The final
/// state is observed after a two-thread barrier, so the reads race with
/// nothing.
pub fn two_plus_two_w() -> Litmus {
    let (x, y) = (var(13), var(14));
    let bar = ScriptOp::Barrier {
        count: var(15),
        gen: var(16),
        n: 2,
    };
    let tail = |b: ScriptOp| vec![b, ScriptOp::Record(x), ScriptOp::Record(y)];
    Litmus {
        name: "2+2W",
        scripts: vec![
            warmed(
                &[x, y],
                [vec![st(x, 1), st(y, 2)], tail(bar.clone())].concat(),
            ),
            warmed(&[y, x], [vec![st(y, 1), st(x, 2)], tail(bar)].concat()),
        ],
        forbidden: |obs| obs[0] == [1, 1] || obs[1] == [1, 1],
    }
}

/// S shape: T0 writes x=2 then y=1; T1 reads y and then writes x=1. If T1
/// saw y=1, its write x=1 is coherence-after T0's x=2, so the final value
/// of x must be 1 — observing y=1 and then a final x=2 is forbidden.
pub fn s_shape() -> Litmus {
    let (x, y) = (var(17), var(18));
    let bar = ScriptOp::Barrier {
        count: var(19),
        gen: var(20),
        n: 2,
    };
    Litmus {
        name: "S",
        scripts: vec![
            warmed(&[x, y], vec![st(x, 2), st(y, 1), bar.clone()]),
            warmed(
                &[y, x],
                vec![ScriptOp::Record(y), st(x, 1), bar, ScriptOp::Record(x)],
            ),
        ],
        forbidden: |obs| obs[1] == [1, 2],
    }
}

/// All litmus tests.
pub fn catalog() -> Vec<Litmus> {
    vec![
        store_buffering(),
        message_passing(),
        load_buffering(),
        iriw(),
        corr(),
        cowr(),
        rmw_dekker(),
        wrc(),
        two_plus_two_w(),
        s_shape(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::run_interleaved;

    /// Every outcome the SC reference executor can produce must be allowed.
    #[test]
    fn reference_executor_never_produces_forbidden_outcomes() {
        for litmus in catalog() {
            for seed in 0..300 {
                let programs = litmus.programs(&vec![0; litmus.threads()]);
                let r = run_interleaved(programs, seed, 100_000);
                assert!(r.finished, "{}: seed {seed} did not finish", litmus.name);
                assert!(
                    !(litmus.forbidden)(&r.observations),
                    "{}: SC executor produced forbidden outcome {:?}",
                    litmus.name,
                    r.observations
                );
            }
        }
    }

    /// The interesting SC-allowed outcomes are actually reachable — the
    /// forbidden-checkers are not vacuously false.
    #[test]
    fn allowed_outcomes_are_reachable() {
        let litmus = store_buffering();
        let mut seen_both_one = false;
        let mut seen_zero_one = false;
        for seed in 0..300 {
            let r = run_interleaved(litmus.programs(&[0, 0]), seed, 10_000);
            let (a, b) = (r.observations[0][0], r.observations[1][0]);
            seen_both_one |= a == 1 && b == 1;
            seen_zero_one |= (a == 0) != (b == 0);
        }
        assert!(seen_both_one, "SB (1,1) should be reachable");
        assert!(seen_zero_one, "SB (0,1)/(1,0) should be reachable");
    }

    #[test]
    fn skews_prepend_compute() {
        let litmus = message_passing();
        let mut programs = litmus.programs(&[5, 0]);
        assert!(matches!(programs[0].next(None), Some(Instr::Compute(5))));
        assert!(matches!(programs[1].next(None), Some(Instr::Load { .. })));
    }

    #[test]
    #[should_panic(expected = "one skew per thread")]
    fn skew_arity_checked() {
        store_buffering().programs(&[0]);
    }

    #[test]
    fn variables_do_not_share_lines() {
        let lines: Vec<_> = (0..21).map(|i| var(i).line()).collect();
        let mut dedup = lines.clone();
        dedup.dedup();
        assert_eq!(lines, dedup);
        for w in lines.windows(2) {
            assert!(w[1].0 >= w[0].0 + 2, "two-line spacing");
        }
    }
}
