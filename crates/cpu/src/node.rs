//! The baseline core node: an out-of-order core model with its private L1,
//! implementing the three consistency baselines the paper compares BulkSC
//! against (§7.1):
//!
//! * **SC** — sequential consistency with the two classic optimizations of
//!   Gharachorloo et al.: hardware prefetching for reads (loads issue into
//!   the memory system as soon as they enter the window) and exclusive
//!   prefetching for writes (ownership is requested at fetch). Stores still
//!   *perform* strictly in order at the window head, and speculatively
//!   completed loads are revalidated R10000-style: an invalidation or
//!   displacement of the accessed line before retirement forces a re-issue.
//! * **RC** — release consistency with speculative execution across fences:
//!   loads retire as soon as they complete, stores retire into a store
//!   buffer that drains in order with overlapped exclusive prefetching, and
//!   fences impose no stall.
//! * **SC++** — the SC++ scheme of Gniady et al. modelled at epoch
//!   granularity: RC-like timing plus speculative-state tracking. The 2K-
//!   entry SHiQ is approximated by fixed-size epochs with program
//!   checkpoints; an external invalidation (or displacement) that hits an
//!   epoch's read/write set rolls the core back to that epoch's checkpoint
//!   and re-executes — the paper's "wasted work" cost.
//!
//! One node = one core + L1 + its protocol endpoint on the fabric.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use bulksc_mem::{CacheConfig, InsertOutcome, LineState, SetAssocCache};
use bulksc_net::{Cycle, Envelope, Fabric, Message, NodeId};
use bulksc_sig::{Addr, LineAddr};
use bulksc_stats::Histogram;
use bulksc_trace::{Event, TraceHandle};
use bulksc_workloads::{Instr, ThreadProgram};

use crate::config::CoreConfig;
use crate::window::{InstrWindow, SlotId, SlotState};
use bulksc_mem::ValueStore;

/// Which baseline consistency model this node enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineModel {
    /// Sequential consistency with read/exclusive prefetching.
    Sc,
    /// Release consistency with speculation across fences.
    Rc,
    /// SC++ (epoch-granularity model of the SHiQ).
    Scpp,
}

/// Dynamic instructions per SC++ epoch (approximates the 2K-entry SHiQ).
const EPOCH_INSTRS: u64 = 1000;

/// Event counters for one core.
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Dynamic instructions retired (committed).
    pub retired: u64,
    /// Dynamic instructions discarded by squashes (SC++).
    pub squashed_instrs: u64,
    /// Epoch squashes (SC++).
    pub squashes: u64,
    /// Speculative loads re-issued after invalidation/displacement (SC).
    pub load_reissues: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses (requests sent to the directory).
    pub l1_misses: u64,
    /// Nacks received.
    pub nacks: u64,
    /// Cycle at which this core finished its program, if it has.
    pub finished_at: Option<Cycle>,
    /// L1 miss latency: request sent to fill (or upgrade ack) received.
    pub lat_miss: Histogram,
}

#[derive(Debug)]
struct MissEntry {
    /// True if exclusivity (ownership) is required.
    excl: bool,
    /// Request currently in flight.
    sent: bool,
    /// Cycle the request went out (for miss-latency accounting).
    sent_at: Cycle,
    /// Retry barrier after a Nack.
    retry_at: Cycle,
    /// Loads waiting for this line.
    waiting_loads: Vec<SlotId>,
    /// An invalidation raced past the in-flight fill: the response data is
    /// already stale by coherence order. The fill must not install the
    /// line, and SC/SC++ must replay the waiting loads.
    invalidated: bool,
}

#[derive(Clone, Debug)]
struct SbEntry {
    addr: Addr,
    value: u64,
    epoch: u64,
    /// Program-order index assigned at retire (value tracing; the store's
    /// event is emitted later, when the buffer drains it to memory).
    po: u64,
    /// Cycle the store retired into the buffer (value tracing).
    retired_at: Cycle,
}

struct Epoch {
    id: u64,
    checkpoint: Box<dyn ThreadProgram>,
    /// Pending feed/stash at checkpoint time (architectural state).
    checkpoint_feed: Option<u64>,
    checkpoint_stash: Option<Instr>,
    reads: HashSet<LineAddr>,
    writes: HashSet<LineAddr>,
    /// Dynamic instructions retired within this epoch.
    retired: u64,
}

/// A baseline (SC / RC / SC++) core with its private L1.
pub struct BaselineNode {
    core: u32,
    model: BaselineModel,
    cfg: CoreConfig,
    dir_of: fn(LineAddr) -> u32,

    program: Box<dyn ThreadProgram>,
    program_done: bool,
    /// Retire-count budget: the node stops fetching once reached.
    budget: u64,

    window: InstrWindow,
    /// Slot whose result the program is waiting on (fetch stalled).
    awaiting: Option<SlotId>,
    /// Value to feed the program on the next fetch.
    feed: Option<u64>,
    /// Instruction fetched from the program but not yet admitted into the
    /// window (the window was full).
    stash: Option<Instr>,
    /// Epoch id assigned to newly fetched slots.
    slot_epochs: HashMap<SlotId, u64>,

    l1: SetAssocCache,
    misses: HashMap<LineAddr, MissEntry>,
    completions: BinaryHeap<Reverse<(Cycle, SlotId)>>,

    store_buffer: VecDeque<SbEntry>,

    /// Fetch requests that arrived while our own fill for the line was in
    /// flight: answered after the fill lands (plus a grace cycle so the
    /// head store can perform during its ownership tenure).
    pending_fetches: HashMap<LineAddr, (NodeId, bool)>,
    deferred_fetches: Vec<(Cycle, LineAddr, NodeId, bool)>,

    /// SC: cycle the last memory operation retired (performs serialize).
    last_mem_retire: Cycle,

    /// Speculative epochs (SC++ only; for SC/RC it stays empty).
    epochs: VecDeque<Epoch>,
    current_epoch: u64,
    epoch_fetched: u64,
    /// Consecutive epoch squashes: shrinks the epoch so the core can
    /// reach a quiescent (safe) point under contention.
    epoch_squash_streak: u32,

    stats: CoreStats,
    trace: TraceHandle,
    /// Program-order index of the next value-traced access (only advanced
    /// while value tracing is active).
    po_next: u64,
}

impl BaselineNode {
    /// A core node for `core`, running `program` under `model`, stopping
    /// after `budget` retired dynamic instructions (or program end).
    /// `dir_of` maps a line to the directory module owning it.
    pub fn new(
        core: u32,
        model: BaselineModel,
        cfg: CoreConfig,
        l1: CacheConfig,
        program: Box<dyn ThreadProgram>,
        budget: u64,
        dir_of: fn(LineAddr) -> u32,
    ) -> Self {
        let mut node = BaselineNode {
            core,
            model,
            cfg,
            dir_of,
            program,
            program_done: false,
            budget,
            window: InstrWindow::new(cfg.window_size),
            awaiting: None,
            feed: None,
            stash: None,
            slot_epochs: HashMap::new(),
            l1: SetAssocCache::new(l1),
            misses: HashMap::new(),
            completions: BinaryHeap::new(),
            store_buffer: VecDeque::new(),
            pending_fetches: HashMap::new(),
            deferred_fetches: Vec::new(),
            last_mem_retire: 0,
            epochs: VecDeque::new(),
            current_epoch: 0,
            epoch_fetched: 0,
            epoch_squash_streak: 0,
            stats: CoreStats::default(),
            trace: TraceHandle::off(),
            po_next: 0,
        };
        if model == BaselineModel::Scpp {
            node.open_epoch();
        }
        node
    }

    /// This node's network id.
    pub fn id(&self) -> NodeId {
        NodeId::Core(self.core)
    }

    /// Route this core's value-trace events to `trace`'s sinks.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// True when retired accesses should be value-traced. SC++ is
    /// excluded: its epoch rollback retracts already-retired work, so a
    /// committed-value trace cannot be emitted at retire time.
    fn value_tracing(&self) -> bool {
        self.model != BaselineModel::Scpp && self.trace.enabled()
    }

    fn next_po(&mut self) -> u64 {
        let po = self.po_next;
        self.po_next += 1;
        po
    }

    /// The consistency model this node runs.
    pub fn model(&self) -> BaselineModel {
        self.model
    }

    /// Event counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The thread program (for reading observations after a run).
    pub fn program(&self) -> &dyn ThreadProgram {
        self.program.as_ref()
    }

    /// True once the program has ended and all its effects have drained.
    pub fn finished(&self) -> bool {
        self.stats.finished_at.is_some()
    }

    fn dir_node(&self, line: LineAddr) -> NodeId {
        NodeId::Dir((self.dir_of)(line))
    }

    fn open_epoch(&mut self) {
        self.current_epoch += 1;
        self.epoch_fetched = 0;
        self.epochs.push_back(Epoch {
            id: self.current_epoch,
            checkpoint: self.program.clone_box(),
            checkpoint_feed: self.feed,
            checkpoint_stash: self.stash,
            reads: HashSet::new(),
            writes: HashSet::new(),
            retired: 0,
        });
    }

    // ------------------------------------------------------------------
    // Per-cycle work.
    // ------------------------------------------------------------------

    /// Advance this core by one cycle.
    pub fn tick(&mut self, now: Cycle, fab: &mut Fabric, values: &mut ValueStore) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Execute);
        // Protocol obligations outlive the program: a finished core must
        // still answer fetches deferred behind its last fills.
        self.answer_deferred_fetches(now, fab);
        if self.finished() {
            return;
        }
        self.pop_completions(now, values);
        self.retire(now, values);
        self.drain_store_buffer(now, fab, values);
        self.issue(now, fab);
        self.send_pending_misses(now, fab);
        self.fetch(now);
        self.check_finished(now);
    }

    fn pop_completions(&mut self, now: Cycle, values: &mut ValueStore) {
        while let Some(&Reverse((t, slot))) = self.completions.peek() {
            if t > now {
                break;
            }
            self.completions.pop();
            self.complete_load_slot(now, slot, values);
        }
    }

    /// Transition a load slot to Done, capturing its value with
    /// store-to-load forwarding from older in-flight stores.
    fn complete_load_slot(&mut self, now: Cycle, slot: SlotId, values: &ValueStore) {
        let Some(s) = self.window.get_mut(slot) else {
            return;
        };
        if s.state != SlotState::Issued {
            return;
        }
        let Instr::Load { addr, .. } = s.instr else {
            s.state = SlotState::Done;
            return;
        };
        match self.forwarded_value(slot, addr, values) {
            Some(v) => {
                let s = self.window.get_mut(slot).expect("slot exists");
                s.state = SlotState::Done;
                s.value = Some(v);
            }
            None => {
                // An older RMW to the same word has not performed yet:
                // its result is unknown, so retry shortly.
                self.completions.push(Reverse((now + 1, slot)));
            }
        }
    }

    /// The value a load at `slot` must observe: the youngest older same-
    /// word store in the window, else the youngest store-buffer entry,
    /// else committed memory. `None` if it would forward from an
    /// unperformed RMW (value not yet known).
    fn forwarded_value(&self, slot: SlotId, addr: Addr, values: &ValueStore) -> Option<u64> {
        let mut forwarded: Option<Option<u64>> = None;
        for s in self.window.iter() {
            if s.id >= slot {
                break;
            }
            match s.instr {
                Instr::Store { addr: a, value } if a == addr => {
                    forwarded = Some(Some(value));
                }
                Instr::Rmw { addr: a, .. } if a == addr => {
                    forwarded = Some(None); // unknown until it performs
                }
                _ => {}
            }
        }
        if let Some(v) = forwarded {
            return v;
        }
        if let Some(e) = self.store_buffer.iter().rev().find(|e| e.addr == addr) {
            return Some(e.value);
        }
        Some(values.read(addr))
    }

    fn retire(&mut self, now: Cycle, values: &mut ValueStore) {
        let mut budget = self.cfg.retire_width;
        while budget > 0 {
            let Some(head) = self.window.oldest() else {
                break;
            };
            let head_id = head.id;
            let head_instr = head.instr;
            let head_state = head.state;
            match head_instr {
                Instr::Compute(_) => {
                    let n = budget.min(self.window.oldest().expect("head").remaining);
                    self.window.drain_oldest_compute(n);
                    budget -= n;
                    self.note_retired(n as u64);
                    if self.window.oldest().expect("head").remaining == 0 {
                        self.finish_slot(head_id);
                    }
                }
                Instr::Load { addr, consume } => {
                    if head_state != SlotState::Done {
                        break;
                    }
                    if !self.may_perform_mem(now) {
                        break;
                    }
                    let v = self.window.oldest().expect("head").value;
                    if self.value_tracing() {
                        let core = self.core;
                        let po = self.next_po();
                        let value = v.expect("completed load carries its value");
                        self.trace.emit(now, || Event::ValLoad {
                            core,
                            seq: 0,
                            po,
                            addr: addr.0,
                            value,
                            retired_at: now,
                        });
                    }
                    if consume {
                        self.feed = v;
                        self.awaiting = None;
                    }
                    self.record_epoch_access(addr.line(), false);
                    self.note_mem_retire(now);
                    self.finish_slot(head_id);
                    self.note_retired(1);
                    budget -= 1;
                }
                Instr::Store { addr, value } => {
                    match self.model {
                        BaselineModel::Sc => {
                            if !self.may_perform_mem(now) {
                                break;
                            }
                            // Perform strictly at the head: needs ownership.
                            if !self.try_perform_store(now, addr, value, values) {
                                break;
                            }
                            if self.value_tracing() {
                                let core = self.core;
                                let po = self.next_po();
                                self.trace.emit(now, || Event::ValStore {
                                    core,
                                    seq: 0,
                                    po,
                                    addr: addr.0,
                                    value,
                                    retired_at: now,
                                });
                            }
                            self.note_mem_retire(now);
                            self.finish_slot(head_id);
                            self.note_retired(1);
                            budget -= 1;
                        }
                        BaselineModel::Rc | BaselineModel::Scpp => {
                            if self.store_buffer.len() >= self.cfg.store_buffer as usize {
                                break;
                            }
                            let po = if self.value_tracing() {
                                self.next_po()
                            } else {
                                0
                            };
                            self.store_buffer.push_back(SbEntry {
                                addr,
                                value,
                                epoch: self.current_epoch,
                                po,
                                retired_at: now,
                            });
                            self.record_epoch_access(addr.line(), true);
                            self.finish_slot(head_id);
                            self.note_retired(1);
                            budget -= 1;
                        }
                    }
                }
                Instr::Rmw { addr, op } => {
                    // Atomics perform at the head with an empty store
                    // buffer (they are ordering points even under RC).
                    if !self.store_buffer.is_empty() {
                        break;
                    }
                    if !self.line_owned(addr.line()) {
                        self.want_line(now, addr.line(), true, None);
                        break;
                    }
                    let old = values.read(addr);
                    let new = op.apply(old);
                    values.write(addr, new);
                    self.l1.set_state(addr.line(), LineState::Dirty);
                    if self.value_tracing() {
                        let core = self.core;
                        let po = self.next_po();
                        self.trace.emit(now, || Event::ValRmw {
                            core,
                            seq: 0,
                            po,
                            addr: addr.0,
                            old,
                            new,
                            retired_at: now,
                        });
                    }
                    self.record_epoch_access(addr.line(), true);
                    self.feed = Some(old);
                    self.awaiting = None;
                    self.finish_slot(head_id);
                    self.note_retired(1);
                    budget -= 1;
                }
                Instr::Fence => {
                    // SC is already strict; RC/SC++ speculate across fences.
                    self.finish_slot(head_id);
                    self.note_retired(1);
                    budget -= 1;
                }
                Instr::Io => {
                    // Uncached: wait until the core is quiescent.
                    if !self.store_buffer.is_empty() || !self.misses.is_empty() {
                        break;
                    }
                    self.finish_slot(head_id);
                    self.note_retired(1);
                    budget -= 1;
                }
            }
        }
    }

    fn finish_slot(&mut self, id: SlotId) {
        let slot = self.window.pop_oldest();
        debug_assert_eq!(slot.id, id);
        self.slot_epochs.remove(&id);
    }

    fn note_retired(&mut self, n: u64) {
        self.stats.retired += n;
        if let Some(e) = self.epochs.back_mut() {
            e.retired += n;
        }
        if self.model == BaselineModel::Scpp && self.epochs.len() > 1 {
            // An epoch is safe once all its own work is architectural:
            // every slot retired (in-order retirement ⇒ no slot of it or
            // anything older remains) and all its stores drained. Keeping
            // safety tied to the store buffer, not to full quiescence,
            // matches the SHiQ's bounded speculation window.
            let oldest_speculative_store = self
                .store_buffer
                .front()
                .map(|e| e.epoch)
                .unwrap_or(u64::MAX);
            let oldest_in_window = self.slot_epochs.values().min().copied().unwrap_or(u64::MAX);
            let mut popped = false;
            while self.epochs.len() > 1 {
                let front_id = self.epochs.front().expect("non-empty").id;
                if front_id < oldest_speculative_store && front_id < oldest_in_window {
                    self.epochs.pop_front();
                    popped = true;
                } else {
                    break;
                }
            }
            if popped {
                self.epoch_squash_streak = 0;
            }
        }
    }

    fn record_epoch_access(&mut self, line: LineAddr, write: bool) {
        if self.model != BaselineModel::Scpp {
            return;
        }
        if let Some(e) = self.epochs.back_mut() {
            if write {
                e.writes.insert(line);
            } else {
                e.reads.insert(line);
            }
        }
    }

    /// Under SC, memory operations perform one at a time: the next may
    /// only perform `l1_latency` after the previous (requirement (i) of
    /// the straightforward SC implementation; the paper's baseline lacks
    /// R10000-style speculative reordering).
    fn may_perform_mem(&self, now: Cycle) -> bool {
        self.model != BaselineModel::Sc || now >= self.last_mem_retire + self.cfg.l1_latency
    }

    fn note_mem_retire(&mut self, now: Cycle) {
        if self.model == BaselineModel::Sc {
            self.last_mem_retire = now;
        }
    }

    /// SC store perform: apply the value if the line is owned, otherwise
    /// make sure ownership is on its way.
    fn try_perform_store(
        &mut self,
        now: Cycle,
        addr: Addr,
        value: u64,
        values: &mut ValueStore,
    ) -> bool {
        if self.line_owned(addr.line()) {
            values.write(addr, value);
            self.l1.set_state(addr.line(), LineState::Dirty);
            return true;
        }
        self.want_line(now, addr.line(), true, None);
        false
    }

    fn line_owned(&self, line: LineAddr) -> bool {
        matches!(
            self.l1.state(line),
            Some(LineState::Exclusive) | Some(LineState::Dirty)
        )
    }

    fn drain_store_buffer(&mut self, now: Cycle, _fab: &mut Fabric, values: &mut ValueStore) {
        // Head drains when owned; deeper entries get exclusive prefetches.
        while let Some(head) = self.store_buffer.front().cloned() {
            if self.line_owned(head.addr.line()) {
                values.write(head.addr, head.value);
                self.l1.set_state(head.addr.line(), LineState::Dirty);
                if self.value_tracing() {
                    let core = self.core;
                    self.trace.emit(now, || Event::ValStore {
                        core,
                        seq: 0,
                        po: head.po,
                        addr: head.addr.0,
                        value: head.value,
                        retired_at: head.retired_at,
                    });
                }
                self.store_buffer.pop_front();
            } else {
                self.want_line(now, head.addr.line(), true, None);
                break;
            }
        }
        // Exclusive prefetch for the next few buffered stores.
        let prefetch: Vec<LineAddr> = self
            .store_buffer
            .iter()
            .skip(1)
            .take(4)
            .map(|e| e.addr.line())
            .collect();
        for line in prefetch {
            if !self.line_owned(line) {
                self.want_line(now, line, true, None);
            }
        }
    }

    fn issue(&mut self, now: Cycle, _fab: &mut Fabric) {
        // RC/SC++: loads issue as soon as they are in the window, stores
        // prefetch ownership immediately. SC: requirement (i) permits only
        // the bounded prefetch lookahead — memory ops beyond the first
        // `sc_prefetch_depth` in program order stay unissued, which is
        // what bounds SC's memory-level parallelism below RC's.
        let depth_limit = match self.model {
            BaselineModel::Sc => self.cfg.sc_prefetch_depth as usize,
            _ => usize::MAX,
        };
        let mut to_start: Vec<(SlotId, Instr)> = Vec::new();
        let mut mem_seen = 0usize;
        let mut depth = 0u64;
        for slot in self.window.iter() {
            depth += slot.remaining.max(1) as u64;
            if depth > self.cfg.issue_window as u64 {
                break;
            }
            let is_mem = matches!(
                slot.instr,
                Instr::Load { .. } | Instr::Store { .. } | Instr::Rmw { .. }
            );
            if !is_mem {
                continue;
            }
            if mem_seen >= depth_limit {
                break;
            }
            mem_seen += 1;
            if slot.state == SlotState::Waiting {
                to_start.push((slot.id, slot.instr));
            }
        }
        for (id, instr) in to_start {
            match instr {
                Instr::Load { addr, .. } => {
                    if self.l1.contains(addr.line()) {
                        self.stats.l1_hits += 1;
                        self.l1.touch(addr.line());
                        self.completions
                            .push(Reverse((now + self.cfg.l1_latency, id)));
                        if let Some(s) = self.window.get_mut(id) {
                            s.state = SlotState::Issued;
                        }
                    } else {
                        self.want_line(now, addr.line(), false, Some(id));
                        if let Some(s) = self.window.get_mut(id) {
                            s.state = SlotState::Issued;
                        }
                    }
                }
                Instr::Store { addr, .. } | Instr::Rmw { addr, .. } => {
                    // Exclusive prefetch; the op itself performs at retire.
                    if !self.line_owned(addr.line()) {
                        self.want_line(now, addr.line(), true, None);
                    }
                    if let Some(s) = self.window.get_mut(id) {
                        s.state = SlotState::Done; // nothing more to do pre-retire
                    }
                }
                _ => {}
            }
        }
    }

    /// Register interest in `line`; `excl` requires ownership; `waiter` is
    /// a load slot to complete on arrival.
    fn want_line(&mut self, now: Cycle, line: LineAddr, excl: bool, waiter: Option<SlotId>) {
        let entry = self.misses.entry(line).or_insert_with(|| MissEntry {
            excl,
            sent: false,
            sent_at: 0,
            retry_at: now,
            waiting_loads: Vec::new(),
            invalidated: false,
        });
        entry.excl |= excl;
        if let Some(w) = waiter {
            if !entry.waiting_loads.contains(&w) {
                entry.waiting_loads.push(w);
            }
        }
    }

    fn send_pending_misses(&mut self, now: Cycle, fab: &mut Fabric) {
        let in_flight = self.misses.values().filter(|m| m.sent).count() as u32;
        let mut budget = self.cfg.mshrs.saturating_sub(in_flight);
        if budget == 0 {
            return;
        }
        // Deterministic order: by line address.
        let mut lines: Vec<LineAddr> = self
            .misses
            .iter()
            .filter(|(_, m)| !m.sent && m.retry_at <= now)
            .map(|(&l, _)| l)
            .collect();
        lines.sort_unstable();
        for line in lines {
            if budget == 0 {
                break;
            }
            let src = self.id();
            let dst = self.dir_node(line);
            let m = self.misses.get_mut(&line).expect("listed above");
            let msg = if m.excl {
                if self.l1.state(line) == Some(LineState::Shared) {
                    Message::Upgrade { line }
                } else {
                    Message::ReadExcl { line }
                }
            } else {
                Message::ReadShared { line }
            };
            m.sent = true;
            m.sent_at = now;
            self.stats.l1_misses += 1;
            fab.send(now, src, dst, msg);
            budget -= 1;
        }
    }

    fn fetch(&mut self, _now: Cycle) {
        if self.awaiting.is_some() {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.program_done && self.stash.is_none() {
                return;
            }
            if self.stats.retired + self.window.occupancy() >= self.budget {
                // Budget reached: stop fetching; in-flight work drains.
                self.program_done = true;
                return;
            }
            // SC++ epoch boundary at fetch time. Consecutive squashes
            // shrink the epoch so some work can become safe (quiesce)
            // before the next conflicting invalidation lands.
            if self.model == BaselineModel::Scpp && self.epoch_fetched >= self.epoch_len() {
                self.open_epoch();
            }
            // Fetching consumes the program's next instruction before we
            // know whether the window has room, so a rejected instruction
            // is stashed and retried first on the next fetch.
            let instr = match self.stash.take() {
                Some(i) => i,
                None => {
                    let feed = self.feed.take();
                    match self.program.next(feed) {
                        Some(i) => i,
                        None => {
                            self.program_done = true;
                            return;
                        }
                    }
                }
            };
            match self.window.push(instr) {
                Some(id) => {
                    self.epoch_fetched += instr.dynamic_count();
                    self.slot_epochs.insert(id, self.current_epoch);
                    if instr.consumes_value() {
                        self.awaiting = Some(id);
                        return;
                    }
                }
                None => {
                    self.stash = Some(instr);
                    return;
                }
            }
        }
    }

    fn check_finished(&mut self, now: Cycle) {
        if self.stats.finished_at.is_none()
            && self.program_done
            && self.stash.is_none()
            && self.window.is_empty()
            && self.store_buffer.is_empty()
        {
            self.stats.finished_at = Some(now);
        }
    }

    /// Earliest cycle at which this node may do useful work. Used by the
    /// surrounding system to skip idle cycles; returning `now` is always
    /// safe.
    pub fn idle_until(&self, now: Cycle) -> Cycle {
        if self.finished() {
            return self
                .deferred_fetches
                .iter()
                .map(|&(c, ..)| c)
                .min()
                .unwrap_or(Cycle::MAX);
        }
        // Un-issued memory operations are immediate work.
        if self.window.iter().any(|s| s.state == SlotState::Waiting) {
            return now;
        }
        // Retirable or fetchable work right now?
        if let Some(head) = self.window.oldest() {
            let retirable = match head.instr {
                Instr::Compute(_) | Instr::Fence => true,
                Instr::Load { .. } => head.state == SlotState::Done && self.may_perform_mem(now),
                Instr::Store { .. } => match self.model {
                    BaselineModel::Sc => {
                        self.line_owned(head_line(head.instr)) && self.may_perform_mem(now)
                    }
                    _ => self.store_buffer.len() < self.cfg.store_buffer as usize,
                },
                Instr::Rmw { .. } => {
                    self.store_buffer.is_empty() && self.line_owned(head_line(head.instr))
                }
                Instr::Io => self.store_buffer.is_empty() && self.misses.is_empty(),
            };
            if retirable {
                return now;
            }
        }
        if (!self.program_done || self.stash.is_some()) && self.awaiting.is_none() {
            return now;
        }
        if self
            .store_buffer
            .front()
            .map(|e| self.line_owned(e.addr.line()))
            .unwrap_or(false)
        {
            return now;
        }
        if self.misses.values().any(|m| !m.sent && m.retry_at <= now) {
            return now;
        }
        let mut t = Cycle::MAX;
        if let Some(&Reverse((c, _))) = self.completions.peek() {
            t = t.min(c);
        }
        for &(c, ..) in &self.deferred_fetches {
            t = t.min(c);
        }
        if self.model == BaselineModel::Sc && !self.window.is_empty() {
            t = t.min(self.last_mem_retire + self.cfg.l1_latency);
        }
        for m in self.misses.values() {
            if !m.sent {
                t = t.min(m.retry_at);
            }
        }
        t.max(now + 1)
    }

    /// One-line diagnostic snapshot (for debugging stuck systems).
    pub fn debug_state(&self) -> String {
        let head = self
            .window
            .oldest()
            .map(|s| format!("{:?}/{:?}", s.instr, s.state));
        format!(
            "core{} head={head:?} win={} sb={} misses={:?} pend_fetch={:?} awaiting={:?} done={} finished={:?}",
            self.core,
            self.window.len(),
            self.store_buffer.len(),
            self.misses
                .iter()
                .map(|(l, m)| format!("{l}:sent={},inv={}", m.sent, m.invalidated))
                .collect::<Vec<_>>(),
            self.pending_fetches.keys().collect::<Vec<_>>(),
            self.awaiting,
            self.program_done,
            self.stats.finished_at,
        )
    }

    // ------------------------------------------------------------------
    // Message handling.
    // ------------------------------------------------------------------

    /// Process one incoming message.
    ///
    /// # Panics
    ///
    /// Panics on BulkSC-only messages (this is a baseline node).
    pub fn handle(&mut self, now: Cycle, env: Envelope, fab: &mut Fabric, values: &mut ValueStore) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Execute);
        match env.msg {
            Message::Data {
                line,
                exclusive,
                data,
            } => self.fill(now, line, exclusive, data, fab, values),
            Message::UpgradeAck { line } => {
                self.l1.set_state(line, LineState::Exclusive);
                if let Some(m) = self.misses.remove(&line) {
                    if m.sent {
                        self.stats.lat_miss.record(now.saturating_sub(m.sent_at));
                    }
                    // Loads merged into the upgraded miss read the (still
                    // valid, now exclusive) local copy.
                    for slot in m.waiting_loads {
                        self.complete_load_slot(now, slot, values);
                    }
                }
            }
            Message::Inv { line } => {
                let state = self.l1.invalidate(line);
                let dirty = state == Some(LineState::Dirty);
                if let Some(m) = self.misses.get_mut(&line) {
                    m.invalidated = true;
                }
                self.on_lost_line(line);
                fab.send(now, self.id(), env.src, Message::InvAck { line, dirty });
            }
            Message::Fetch { line, for_excl } => {
                if self.misses.get(&line).map(|m| m.sent).unwrap_or(false) {
                    // Our own fill for this line is still in flight (the
                    // directory made us owner before our data arrived):
                    // answer once the fill lands.
                    self.pending_fetches.insert(line, (env.src, for_excl));
                } else {
                    self.surrender_line(now, line, env.src, for_excl, fab);
                }
            }
            Message::Nack { line } => {
                self.stats.nacks += 1;
                if let Some(m) = self.misses.get_mut(&line) {
                    m.sent = false;
                    m.retry_at = now + self.cfg.nack_retry;
                }
                // Our request was denied, so no fill is coming: a fetch
                // deferred behind it must be answered now (we are a false
                // owner — §4.3.1's graceful case).
                if let Some((src, for_excl)) = self.pending_fetches.remove(&line) {
                    self.surrender_line(now, line, src, for_excl, fab);
                }
            }
            Message::DisplaceSig { line, .. } => {
                let state = self.l1.invalidate(line);
                let dirty = state == Some(LineState::Dirty);
                if let Some(m) = self.misses.get_mut(&line) {
                    m.invalidated = true;
                }
                self.on_lost_line(line);
                fab.send(now, self.id(), env.src, Message::InvAck { line, dirty });
            }
            other => panic!("baseline core received unexpected message {other:?}"),
        }
    }

    /// A data response arrived: fill the L1 and wake the waiting slots.
    fn fill(
        &mut self,
        now: Cycle,
        line: LineAddr,
        exclusive: bool,
        data: bulksc_sig::LineData,
        fab: &mut Fabric,
        values: &mut ValueStore,
    ) {
        // A fill whose line was invalidated while the response was in
        // flight is stale by coherence order: do not install it, and
        // replay (SC/SC++) or complete (RC: the load performed at the
        // directory's serve point, which precedes the invalidation).
        if self
            .misses
            .get(&line)
            .map(|m| m.invalidated)
            .unwrap_or(false)
        {
            if let Some((src, for_excl)) = self.pending_fetches.remove(&line) {
                self.surrender_line(now, line, src, for_excl, fab);
            }
            let m = self.misses.remove(&line).expect("checked above");
            for slot in m.waiting_loads {
                match self.model {
                    BaselineModel::Rc => {
                        self.complete_load_slot_with_line(now, slot, values, line, &data);
                    }
                    BaselineModel::Sc | BaselineModel::Scpp => {
                        if let Some(s) = self.window.get_mut(slot) {
                            if s.state == SlotState::Issued {
                                s.state = SlotState::Waiting;
                                s.value = None;
                                self.stats.load_reissues += 1;
                            }
                        }
                    }
                }
            }
            return;
        }
        let state = if exclusive {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        match self.l1.insert(line, state, |_| false) {
            InsertOutcome::Evicted {
                line: victim,
                state: LineState::Dirty,
            } => {
                self.on_lost_line(victim);
                fab.send(
                    now,
                    self.id(),
                    self.dir_node(victim),
                    Message::Writeback {
                        line: victim,
                        keep_shared: false,
                    },
                );
            }
            InsertOutcome::Evicted { line: victim, .. } => {
                // Clean displacement: silent, but speculative loads on the
                // victim must revalidate (SC) / squash (SC++).
                self.on_lost_line(victim);
            }
            _ => {}
        }
        if let Some(m) = self.misses.remove(&line) {
            if m.sent {
                self.stats.lat_miss.record(now.saturating_sub(m.sent_at));
            }
            for slot in m.waiting_loads {
                self.complete_load_slot_with_line(now, slot, values, line, &data);
            }
        }
        if let Some((src, for_excl)) = self.pending_fetches.remove(&line) {
            // Grace period: let the head store perform during its tenure.
            self.deferred_fetches
                .push((now + self.cfg.l1_latency + 1, line, src, for_excl));
        }
    }

    /// Like [`Self::complete_load_slot`], but loads to `line` observe the
    /// value snapshot `data` carried by the data response (the value the
    /// directory served, not the value at arrival time).
    fn complete_load_slot_with_line(
        &mut self,
        now: Cycle,
        slot: SlotId,
        values: &ValueStore,
        line: LineAddr,
        data: &bulksc_sig::LineData,
    ) {
        let Some(s) = self.window.get_mut(slot) else {
            return;
        };
        if s.state != SlotState::Issued {
            return;
        }
        let Instr::Load { addr, .. } = s.instr else {
            s.state = SlotState::Done;
            return;
        };
        match self.forwarded_value(slot, addr, values) {
            Some(v) => {
                let snapshot = if addr.line() == line {
                    // Only forwardings from our own in-flight stores may
                    // override the response payload.
                    match self.own_store_forward(slot, addr) {
                        Some(fwd) => fwd,
                        None => data[addr.line_offset() as usize],
                    }
                } else {
                    v
                };
                let s = self.window.get_mut(slot).expect("slot exists");
                s.state = SlotState::Done;
                s.value = Some(snapshot);
            }
            None => {
                self.completions.push(Reverse((now + 1, slot)));
            }
        }
    }

    /// The youngest older same-word store (window or store buffer) a load
    /// must forward from, if any. `None` means read from memory/response.
    fn own_store_forward(&self, slot: SlotId, addr: Addr) -> Option<u64> {
        let mut fwd = None;
        for s in self.window.iter() {
            if s.id >= slot {
                break;
            }
            if let Instr::Store { addr: a, value } = s.instr {
                if a == addr {
                    fwd = Some(value);
                }
            }
        }
        if fwd.is_some() {
            return fwd;
        }
        self.store_buffer
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.value)
    }

    /// Answer fetches deferred behind our own in-flight fills.
    fn answer_deferred_fetches(&mut self, now: Cycle, fab: &mut Fabric) {
        let due: Vec<(Cycle, LineAddr, NodeId, bool)> = self
            .deferred_fetches
            .iter()
            .filter(|(t, ..)| *t <= now)
            .copied()
            .collect();
        self.deferred_fetches.retain(|(t, ..)| *t > now);
        for (_, line, src, for_excl) in due {
            self.surrender_line(now, line, src, for_excl, fab);
        }
    }

    /// Give up (or downgrade) `line` in response to a directory fetch.
    fn surrender_line(
        &mut self,
        now: Cycle,
        line: LineAddr,
        dst: NodeId,
        for_excl: bool,
        fab: &mut Fabric,
    ) {
        let state = if for_excl {
            self.l1.invalidate(line)
        } else {
            let s = self.l1.state(line);
            if s.is_some() {
                self.l1.set_state(line, LineState::Shared);
            }
            s
        };
        if for_excl {
            self.on_lost_line(line);
        }
        fab.send(
            now,
            self.id(),
            dst,
            Message::FetchResp {
                line,
                dirty: state == Some(LineState::Dirty),
                had_line: state.is_some(),
            },
        );
    }

    /// The line left this cache (invalidation, fetch-excl, displacement):
    /// apply the model's speculation-repair rule.
    fn on_lost_line(&mut self, line: LineAddr) {
        match self.model {
            BaselineModel::Rc => {}
            BaselineModel::Sc => {
                // Revalidate speculatively completed loads: re-issue.
                let mut hit = false;
                for s in self.window.iter_mut() {
                    if let Instr::Load { addr, .. } = s.instr {
                        if addr.line() == line && s.state == SlotState::Done {
                            s.state = SlotState::Waiting;
                            s.value = None;
                            hit = true;
                        }
                    }
                }
                if hit {
                    self.stats.load_reissues += 1;
                }
            }
            BaselineModel::Scpp => {
                let victim = self
                    .epochs
                    .iter()
                    .find(|e| e.reads.contains(&line) || e.writes.contains(&line))
                    .map(|e| e.id);
                if let Some(eid) = victim {
                    self.squash_to_epoch(eid);
                }
            }
        }
    }

    /// Current SC++ epoch length, shrunk exponentially under repeated
    /// squashes.
    fn epoch_len(&self) -> u64 {
        (EPOCH_INSTRS >> self.epoch_squash_streak.min(7)).max(8)
    }

    /// SC++ rollback: discard all work of epochs `>= eid` and restore the
    /// checkpoint.
    fn squash_to_epoch(&mut self, eid: u64) {
        self.epoch_squash_streak += 1;
        let pos = self
            .epochs
            .iter()
            .position(|e| e.id == eid)
            .expect("squash target exists");
        // Restore the program (and pending feed/stash) to the epoch's
        // start.
        self.program = self.epochs[pos].checkpoint.clone_box();
        self.feed = self.epochs[pos].checkpoint_feed;
        self.stash = self.epochs[pos].checkpoint_stash;
        self.program_done = false;
        // Count wasted work: everything retired in the squashed epochs
        // plus everything still in the window.
        let mut wasted = self.window.squash_all();
        for e in self.epochs.iter().skip(pos) {
            wasted += e.retired;
        }
        self.stats.retired = self
            .stats
            .retired
            .saturating_sub(self.epochs.iter().skip(pos).map(|e| e.retired).sum::<u64>());
        self.stats.squashes += 1;
        self.stats.squashed_instrs += wasted;
        // Drop speculative stores of the squashed epochs.
        self.store_buffer.retain(|e| e.epoch < eid);
        // Clear waiting-load registrations (slots are gone); keep the
        // line interests so in-flight data still fills the cache.
        for m in self.misses.values_mut() {
            m.waiting_loads.clear();
        }
        self.completions.clear();
        self.awaiting = None;
        self.slot_epochs.clear();
        self.epochs.truncate(pos);
        self.open_epoch();
    }
}

fn head_line(i: Instr) -> LineAddr {
    i.addr().expect("memory instruction").line()
}
