//! Core pipeline parameters (Table 2 of the paper).

use bulksc_net::Cycle;

/// Pipeline and L1 parameters of one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instruction-window (ROB) capacity, in dynamic instructions.
    pub window_size: u32,
    /// Issue-window (scheduler) depth: memory operations may only enter
    /// the memory system from the oldest this-many dynamic instructions
    /// (Table 2: I-window 80, ROB 176). This bounds how early prefetches
    /// launch, which is what exposes store stalls under SC.
    pub issue_window: u32,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// L1 hit latency (cycles, round trip).
    pub l1_latency: Cycle,
    /// Maximum outstanding L1 misses (MSHRs).
    pub mshrs: u32,
    /// Store-buffer entries (RC and SC++).
    pub store_buffer: u32,
    /// Cycles to wait before retrying a Nacked request.
    pub nack_retry: Cycle,
    /// SC only: how many memory operations (in program order) the
    /// hardware prefetcher may run ahead of the oldest unperformed one.
    /// Large values make prefetching cover the whole window; small values
    /// model a conservative SC implementation and are used by the
    /// ablation benches.
    pub sc_prefetch_depth: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        // Table 2: fetch/issue/comm 6/4/5, ROB 176, L1 round trip 2 cycles,
        // 8 MSHRs, 56-entry store queue.
        CoreConfig {
            window_size: 176,
            issue_window: 80,
            fetch_width: 6,
            retire_width: 5,
            l1_latency: 2,
            mshrs: 8,
            store_buffer: 56,
            nack_retry: 20,
            sc_prefetch_depth: 48,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = CoreConfig::default();
        assert_eq!(c.window_size, 176);
        assert_eq!(c.issue_window, 80);
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.retire_width, 5);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.mshrs, 8);
        assert_eq!(c.store_buffer, 56);
    }
}
