//! Core timing engine and baseline consistency models.
//!
//! This crate models the processor side of the machine in Table 2 of the
//! BulkSC paper: an out-of-order core abstraction (instruction window,
//! fetch/retire widths, MSHRs, store buffer) with a private L1, speaking
//! the directory protocol of [`bulksc_mem`] over the fabric of
//! [`bulksc_net`].
//!
//! Three complete baseline consistency implementations live here (the
//! models BulkSC is evaluated against in §7):
//!
//! * SC with read prefetching, exclusive write prefetching, and R10000-
//!   style speculative-load revalidation;
//! * RC with a draining store buffer and speculation across fences;
//! * SC++, modelled at epoch granularity with checkpoint rollback.
//!
//! The BulkSC core itself lives in the `bulksc` crate; it shares this
//! crate's [`window`], [`ValueStore`], and [`CoreConfig`] building blocks.

pub mod config;
pub mod node;
pub mod window;

pub use bulksc_mem::ValueStore;
pub use config::CoreConfig;
pub use node::{BaselineModel, BaselineNode, CoreStats};
pub use window::{InstrWindow, Slot, SlotId, SlotState};
