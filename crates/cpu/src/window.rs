//! The instruction window (ROB) shared by all core models.
//!
//! A [`InstrWindow`] holds fetched-but-not-retired instructions in program
//! order. Capacity is counted in *dynamic* instructions, so a
//! `Compute(50)` batch occupies 50 entries — that keeps the window
//! pressure realistic while letting programs emit computation in batches.

use std::collections::VecDeque;

use bulksc_workloads::Instr;

/// Identifies a slot for the lifetime of the window (monotonic, never
/// reused).
pub type SlotId = u64;

/// Execution state of a window slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotState {
    /// Not yet issued to the memory system (or compute not started).
    Waiting,
    /// Access in flight.
    Issued,
    /// Complete; for reads, `value` holds the loaded value.
    Done,
}

/// One in-flight instruction.
#[derive(Clone, Debug)]
pub struct Slot {
    /// Stable identity.
    pub id: SlotId,
    /// The instruction.
    pub instr: Instr,
    /// Execution state.
    pub state: SlotState,
    /// Result value (reads), captured at completion.
    pub value: Option<u64>,
    /// Dynamic instructions left to retire (compute batches drain over
    /// multiple cycles).
    pub remaining: u32,
}

/// Program-ordered window of in-flight instructions.
///
/// # Example
///
/// ```
/// use bulksc_cpu::window::{InstrWindow, SlotState};
/// use bulksc_workloads::Instr;
///
/// let mut w = InstrWindow::new(8);
/// let id = w.push(Instr::Compute(3)).unwrap();
/// assert_eq!(w.occupancy(), 3);
/// assert_eq!(w.oldest().unwrap().id, id);
/// ```
#[derive(Clone, Debug)]
pub struct InstrWindow {
    slots: VecDeque<Slot>,
    next_id: SlotId,
    capacity: u32,
    occupancy: u64,
}

impl InstrWindow {
    /// An empty window holding up to `capacity` dynamic instructions.
    pub fn new(capacity: u32) -> Self {
        InstrWindow {
            slots: VecDeque::new(),
            next_id: 0,
            capacity,
            occupancy: 0,
        }
    }

    /// Dynamic instructions currently in flight.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// True if `instr` fits right now. A single instruction larger than
    /// the whole capacity is admitted into an empty window (a compute
    /// batch must not deadlock fetch).
    pub fn has_room(&self, instr: &Instr) -> bool {
        self.occupancy + instr.dynamic_count() <= self.capacity as u64 || self.slots.is_empty()
    }

    /// Append an instruction in program order; `None` if there is no room.
    pub fn push(&mut self, instr: Instr) -> Option<SlotId> {
        if !self.has_room(&instr) {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.occupancy += instr.dynamic_count();
        let remaining = match instr {
            Instr::Compute(n) => n,
            _ => 1,
        };
        self.slots.push_back(Slot {
            id,
            instr,
            state: SlotState::Waiting,
            value: None,
            remaining,
        });
        Some(id)
    }

    /// The oldest in-flight instruction.
    pub fn oldest(&self) -> Option<&Slot> {
        self.slots.front()
    }

    /// Mutable access to the oldest in-flight instruction.
    pub fn oldest_mut(&mut self) -> Option<&mut Slot> {
        self.slots.front_mut()
    }

    /// Retire the oldest instruction entirely, returning it.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn pop_oldest(&mut self) -> Slot {
        let slot = self.slots.pop_front().expect("pop from empty window");
        self.occupancy -= slot.remaining as u64; // remaining dynamic instrs
        if !matches!(slot.instr, Instr::Compute(_)) {
            // non-compute slots carry remaining == 1
        }
        slot
    }

    /// Account the partial retirement of `n` dynamic instructions from the
    /// oldest (compute) slot.
    ///
    /// # Panics
    ///
    /// Panics if the oldest slot has fewer than `n` remaining.
    pub fn drain_oldest_compute(&mut self, n: u32) {
        let slot = self.slots.front_mut().expect("no oldest slot");
        assert!(slot.remaining >= n, "draining more than remains");
        slot.remaining -= n;
        self.occupancy -= n as u64;
    }

    /// Look up a slot by id.
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut Slot> {
        self.slots.iter_mut().find(|s| s.id == id)
    }

    /// Iterate slots oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Slot> {
        self.slots.iter()
    }

    /// Iterate slots mutably, oldest-first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Slot> {
        self.slots.iter_mut()
    }

    /// Drop every in-flight instruction (window squash), returning how
    /// many dynamic instructions were discarded.
    pub fn squash_all(&mut self) -> u64 {
        let dropped = self.occupancy;
        self.slots.clear();
        self.occupancy = 0;
        dropped
    }

    /// Drop the newest slots while `drop(id)` holds (a program-order
    /// suffix squash, as when one chunk of several is discarded).
    /// Returns the dynamic instructions discarded.
    pub fn squash_newest_while(&mut self, drop: impl Fn(SlotId) -> bool) -> u64 {
        let mut dropped = 0u64;
        while let Some(back) = self.slots.back() {
            if !drop(back.id) {
                break;
            }
            let slot = self.slots.pop_back().expect("checked");
            dropped += slot.remaining as u64;
        }
        self.occupancy -= dropped;
        dropped
    }

    /// Number of slots (not dynamic instructions).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulksc_sig::Addr;

    fn load(a: u64) -> Instr {
        Instr::Load {
            addr: Addr(a),
            consume: false,
        }
    }

    #[test]
    fn capacity_counts_dynamic_instructions() {
        let mut w = InstrWindow::new(10);
        assert!(w.push(Instr::Compute(8)).is_some());
        assert!(w.push(load(0)).is_some());
        assert!(w.push(load(1)).is_some());
        assert_eq!(w.occupancy(), 10);
        assert!(w.push(load(2)).is_none(), "window full");
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn oversized_batch_admitted_when_empty() {
        let mut w = InstrWindow::new(10);
        assert!(w.push(Instr::Compute(50)).is_some());
        assert_eq!(w.occupancy(), 50);
        assert!(w.push(load(0)).is_none());
    }

    #[test]
    fn pop_restores_capacity() {
        let mut w = InstrWindow::new(4);
        w.push(load(0)).unwrap();
        w.push(load(1)).unwrap();
        let s = w.pop_oldest();
        assert_eq!(s.instr, load(0));
        assert_eq!(w.occupancy(), 1);
        assert_eq!(w.oldest().unwrap().instr, load(1));
    }

    #[test]
    fn compute_drains_incrementally() {
        let mut w = InstrWindow::new(10);
        w.push(Instr::Compute(7)).unwrap();
        w.drain_oldest_compute(5);
        assert_eq!(w.occupancy(), 2);
        assert_eq!(w.oldest().unwrap().remaining, 2);
        w.drain_oldest_compute(2);
        assert_eq!(w.occupancy(), 0);
        let s = w.pop_oldest();
        assert_eq!(s.remaining, 0);
    }

    #[test]
    #[should_panic(expected = "draining more than remains")]
    fn overdrain_panics() {
        let mut w = InstrWindow::new(10);
        w.push(Instr::Compute(2)).unwrap();
        w.drain_oldest_compute(3);
    }

    #[test]
    fn ids_are_stable_and_lookup_works() {
        let mut w = InstrWindow::new(10);
        let a = w.push(load(0)).unwrap();
        let b = w.push(load(1)).unwrap();
        assert_ne!(a, b);
        w.get_mut(b).unwrap().state = SlotState::Issued;
        assert_eq!(w.get_mut(b).unwrap().state, SlotState::Issued);
        assert_eq!(w.get_mut(a).unwrap().state, SlotState::Waiting);
        w.pop_oldest();
        assert!(w.get_mut(a).is_none(), "retired slots are gone");
    }

    #[test]
    fn squash_suffix_drops_only_newest() {
        let mut w = InstrWindow::new(20);
        let a = w.push(load(0)).unwrap();
        let b = w.push(Instr::Compute(5)).unwrap();
        let c = w.push(load(1)).unwrap();
        let dropped = w.squash_newest_while(|id| id >= b);
        assert_eq!(dropped, 6);
        assert_eq!(w.occupancy(), 1);
        assert_eq!(w.oldest().unwrap().id, a);
        assert!(w.get_mut(c).is_none());
    }

    #[test]
    fn squash_drops_everything() {
        let mut w = InstrWindow::new(20);
        w.push(Instr::Compute(5)).unwrap();
        w.push(load(0)).unwrap();
        assert_eq!(w.squash_all(), 6);
        assert!(w.is_empty());
        assert_eq!(w.occupancy(), 0);
    }
}
