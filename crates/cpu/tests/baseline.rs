//! Integration tests of the baseline cores against the directory: a
//! miniature system (N cores + 1 directory + fabric) driven to completion.
//!
//! These tests validate the substrate the BulkSC comparison stands on:
//! values flow correctly through MESI, the SC baseline really is
//! sequentially consistent (litmus), and RC really is weaker (the
//! store-buffering outcome is reachable).

use bulksc_cpu::{BaselineModel, BaselineNode, CoreConfig, ValueStore};
use bulksc_mem::{CacheConfig, DirConfig, DirOrganization, Directory};
use bulksc_net::{Envelope, Fabric, FabricConfig, NodeId};
use bulksc_sig::Addr;
use bulksc_workloads::{litmus, Instr, ScriptOp, ScriptProgram, ThreadProgram};

struct Mini {
    nodes: Vec<BaselineNode>,
    dir: Directory,
    fab: Fabric,
    values: ValueStore,
    now: u64,
}

fn dir_of(_: bulksc_sig::LineAddr) -> u32 {
    0
}

impl Mini {
    fn new(model: BaselineModel, programs: Vec<Box<dyn ThreadProgram>>) -> Self {
        let nodes = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                BaselineNode::new(
                    i as u32,
                    model,
                    CoreConfig::default(),
                    CacheConfig::l1_default(),
                    p,
                    u64::MAX,
                    dir_of,
                )
            })
            .collect();
        Mini {
            nodes,
            dir: Directory::new(
                NodeId::Dir(0),
                DirConfig {
                    organization: DirOrganization::FullMap { sets: 1024 },
                    mem_extra: 50,
                    l2_extra: 2,
                    ..DirConfig::default()
                },
            ),
            fab: Fabric::new(FabricConfig { hop_latency: 3 }),
            values: ValueStore::new(),
            now: 0,
        }
    }

    fn step(&mut self) {
        let due: Vec<Envelope> = self.fab.deliver_due(self.now);
        for env in due {
            match env.dst {
                NodeId::Core(c) => {
                    self.nodes[c as usize].handle(self.now, env, &mut self.fab, &mut self.values)
                }
                NodeId::Dir(_) => self.dir.handle(self.now, env, &mut self.fab, &self.values),
                other => panic!("unexpected destination {other:?}"),
            }
        }
        for n in &mut self.nodes {
            n.tick(self.now, &mut self.fab, &mut self.values);
        }
        self.now += 1;
    }

    fn run(&mut self, max_cycles: u64) -> bool {
        while self.now < max_cycles {
            if self.nodes.iter().all(|n| n.finished()) && self.fab.is_idle() {
                return true;
            }
            self.step();
        }
        false
    }

    fn observations(&self) -> Vec<Vec<u64>> {
        self.nodes
            .iter()
            .map(|n| n.program().observations())
            .collect()
    }
}

fn script(ops: Vec<ScriptOp>) -> Box<dyn ThreadProgram> {
    Box::new(ScriptProgram::new(ops))
}

#[test]
fn single_core_executes_and_stores_values() {
    for model in [BaselineModel::Sc, BaselineModel::Rc, BaselineModel::Scpp] {
        let p = script(vec![
            ScriptOp::Op(Instr::Compute(20)),
            ScriptOp::Op(Instr::Store {
                addr: Addr(100),
                value: 7,
            }),
            ScriptOp::Op(Instr::Store {
                addr: Addr(200),
                value: 8,
            }),
            ScriptOp::Record(Addr(100)),
        ]);
        let mut m = Mini::new(model, vec![p]);
        assert!(m.run(100_000), "{model:?} did not finish");
        assert_eq!(m.values.read(Addr(100)), 7, "{model:?}");
        assert_eq!(m.values.read(Addr(200)), 8, "{model:?}");
        assert_eq!(m.observations()[0], vec![7], "{model:?}");
    }
}

#[test]
fn values_flow_between_cores() {
    // Core 0 writes, then sets a flag; core 1 spins on the flag and reads.
    for model in [BaselineModel::Sc, BaselineModel::Rc, BaselineModel::Scpp] {
        let t0 = script(vec![
            ScriptOp::Op(Instr::Store {
                addr: Addr(100),
                value: 55,
            }),
            ScriptOp::Op(Instr::Store {
                addr: Addr(200),
                value: 1,
            }),
        ]);
        let t1 = script(vec![
            ScriptOp::SpinUntilEq {
                addr: Addr(200),
                value: 1,
                pad: 4,
            },
            ScriptOp::Record(Addr(100)),
        ]);
        let mut m = Mini::new(model, vec![t0, t1]);
        assert!(m.run(500_000), "{model:?} did not finish");
        // Under SC and SC++ (and even RC here: the store buffer drains in
        // order) the data must be visible once the flag is.
        if model != BaselineModel::Rc {
            assert_eq!(m.observations()[1], vec![55], "{model:?}");
        }
    }
}

#[test]
fn locks_serialize_critical_sections() {
    let lock = Addr(0);
    let counter = Addr(64);
    let incr = |tag: u64| {
        script(vec![
            ScriptOp::AcquireLock(lock),
            ScriptOp::Record(counter),
            ScriptOp::Op(Instr::Store {
                addr: counter,
                value: tag,
            }),
            ScriptOp::ReleaseLock(lock),
        ])
    };
    let mut m = Mini::new(BaselineModel::Sc, vec![incr(1), incr(2)]);
    assert!(m.run(2_000_000), "lock test did not finish");
    let obs = m.observations();
    let (a, b) = (obs[0][0], obs[1][0]);
    assert!(
        (a == 0 && b == 1) || (b == 0 && a == 2),
        "critical sections interleaved: a={a}, b={b}"
    );
    assert_eq!(m.values.read(lock), 0, "lock released at the end");
}

#[test]
fn sc_baseline_is_sequentially_consistent_on_litmus() {
    for test in litmus::catalog() {
        for skew in 0..12u32 {
            let skews: Vec<u32> = (0..test.threads())
                .map(|t| (skew + t as u32 * 3) % 17)
                .collect();
            let mut m = Mini::new(BaselineModel::Sc, test.programs(&skews));
            assert!(m.run(1_000_000), "{}: did not finish", test.name);
            let obs = m.observations();
            assert!(
                !(test.forbidden)(&obs),
                "{}: SC baseline produced forbidden outcome {obs:?} (skew {skew})",
                test.name
            );
        }
    }
}

#[test]
fn rc_exhibits_store_buffering_reordering() {
    // RC's store buffer lets both loads of the SB litmus read 0 — the
    // outcome SC forbids. It should appear with symmetric timing.
    let test = litmus::store_buffering();
    let mut seen_forbidden = false;
    for skew in 0..20u32 {
        let mut m = Mini::new(
            BaselineModel::Rc,
            test.programs(&[skew % 5, (skew * 7) % 5]),
        );
        assert!(m.run(1_000_000), "did not finish");
        if (test.forbidden)(&m.observations()) {
            seen_forbidden = true;
            break;
        }
    }
    assert!(
        seen_forbidden,
        "RC never reordered store->load; the baseline is too strict"
    );
}

#[test]
fn scpp_squashes_on_remote_conflicts_but_stays_live() {
    // Core 0 repeatedly writes a line core 1 keeps reading: core 1 (SC++)
    // must absorb invalidation-induced squashes and still finish.
    let t0 = script(
        (0..50)
            .flat_map(|i| {
                vec![
                    ScriptOp::Op(Instr::Store {
                        addr: Addr(100),
                        value: i,
                    }),
                    ScriptOp::Op(Instr::Compute(30)),
                ]
            })
            .collect(),
    );
    let t1 = script(
        (0..50)
            .flat_map(|_| {
                vec![
                    ScriptOp::Op(Instr::Load {
                        addr: Addr(100),
                        consume: false,
                    }),
                    ScriptOp::Op(Instr::Load {
                        addr: Addr(164),
                        consume: false,
                    }),
                    ScriptOp::Op(Instr::Compute(25)),
                ]
            })
            .collect(),
    );
    let mut m = Mini::new(BaselineModel::Scpp, vec![t0, t1]);
    assert!(m.run(2_000_000), "SC++ livelocked under conflicts");
    let squashes: u64 = m.nodes.iter().map(|n| n.stats().squashes).sum();
    assert!(
        squashes > 0,
        "expected at least one SC++ squash in this pattern"
    );
}

#[test]
fn l1_stats_accumulate() {
    let p = script(vec![
        // A consuming load stalls fetch until it retires, so the second
        // load issues after the fill and hits in the L1.
        ScriptOp::Record(Addr(100)),
        ScriptOp::Op(Instr::Load {
            addr: Addr(100),
            consume: false,
        }),
    ]);
    let mut m = Mini::new(BaselineModel::Rc, vec![p]);
    assert!(m.run(100_000));
    let s = m.nodes[0].stats();
    assert_eq!(s.l1_misses, 1, "second load hits");
    assert!(s.l1_hits >= 1);
    assert!(s.finished_at.is_some());
    assert_eq!(s.retired, 2);
}

#[test]
fn io_serializes_and_completes() {
    let p = script(vec![
        ScriptOp::Op(Instr::Store {
            addr: Addr(100),
            value: 1,
        }),
        ScriptOp::Op(Instr::Io),
        ScriptOp::Op(Instr::Store {
            addr: Addr(200),
            value: 2,
        }),
    ]);
    for model in [BaselineModel::Sc, BaselineModel::Rc] {
        let mut m = Mini::new(model, vec![p.clone_box()]);
        assert!(m.run(200_000), "{model:?} io did not finish");
        assert_eq!(m.values.read(Addr(200)), 2);
    }
}
// appended debug test
