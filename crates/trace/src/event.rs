//! The structured event vocabulary of the simulator.
//!
//! Every event is cycle-stamped by the emitter (the cycle rides next to the
//! event through [`crate::Tracer::record`], not inside it) and identifies
//! the component it happened at. The taxonomy follows the chunk lifecycle
//! of the paper — a chunk starts, requests commit permission from the
//! arbiter, is granted or denied, commits (expanding its W signature in the
//! directory) or squashes — plus the memory-system side effects (cache and
//! directory displacements, Private-Buffer supplies) and raw network
//! send/deliver hops.

use std::fmt;

/// Which component an endpoint is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndpointKind {
    Core,
    Dir,
    Arbiter,
    GArbiter,
}

/// A node on the interconnect, in trace vocabulary (kept free of the `net`
/// crate's types so `net` itself can depend on this crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endpoint {
    pub kind: EndpointKind,
    pub index: u32,
}

impl Endpoint {
    pub fn core(index: u32) -> Endpoint {
        Endpoint {
            kind: EndpointKind::Core,
            index,
        }
    }
    pub fn dir(index: u32) -> Endpoint {
        Endpoint {
            kind: EndpointKind::Dir,
            index,
        }
    }
    pub fn arbiter(index: u32) -> Endpoint {
        Endpoint {
            kind: EndpointKind::Arbiter,
            index,
        }
    }
    pub fn garbiter() -> Endpoint {
        Endpoint {
            kind: EndpointKind::GArbiter,
            index: 0,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EndpointKind::Core => write!(f, "core{}", self.index),
            EndpointKind::Dir => write!(f, "dir{}", self.index),
            EndpointKind::Arbiter => write!(f, "arb{}", self.index),
            EndpointKind::GArbiter => write!(f, "garb"),
        }
    }
}

/// Why a chunk was squashed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SquashCause {
    /// Signature aliasing: the W ∩ R/W test fired on addresses the chunk
    /// never touched (false positive of the Bloom encoding).
    Alias,
    /// True sharing: a real cross-chunk conflict.
    TrueSharing,
    /// Cache-set overflow: the chunk's footprint no longer fits.
    Overflow,
}

impl SquashCause {
    pub fn label(self) -> &'static str {
        match self {
            SquashCause::Alias => "alias",
            SquashCause::TrueSharing => "true-sharing",
            SquashCause::Overflow => "overflow",
        }
    }

    /// Every cause, in a stable order (drives name-derivation tests and
    /// per-cause tallies).
    pub const ALL: [SquashCause; 3] = [
        SquashCause::Alias,
        SquashCause::TrueSharing,
        SquashCause::Overflow,
    ];
}

/// Upper bound on witness lines one attributed event carries. Keeps xray
/// streams bounded on pathological all-to-all sharers while never
/// dropping the one witness that distinguishes true sharing (nonempty)
/// from pure aliasing (empty).
pub const XRAY_WITNESS_CAP: usize = 8;

/// Causal attribution of a squash or commit denial (schema v5's `--xray`
/// forensics). Attached as an `Option` so attribution-off runs serialize
/// byte-identically to pre-v5 streams: the fields only appear when the
/// emitter actually computed them.
#[derive(Clone, Debug, PartialEq)]
pub struct ConflictAttr {
    /// The committing *aggressor* core whose W-set (or arbitration slot)
    /// caused this squash/denial. `None` when there is no other party
    /// (e.g. a cache-set overflow self-squash or a distributed-arbiter
    /// vote denial, where the conflicting entry lives at another arbiter).
    pub agg_core: Option<u32>,
    /// The aggressor's chunk sequence number, when known. A pre-arbitration
    /// lockout knows the holder core but not its chunk, so this can be
    /// `None` with `agg_core` set.
    pub agg_seq: Option<u64>,
    /// Where the conflict was detected: `"wsig"` (committing-W
    /// disambiguation at the victim cache), `"displacement"` (directory
    /// displacement sweep), `"overflow"` (cache-set overflow),
    /// `"arb"`/`"prearb"` (arbiter collision / pre-arbitration lockout),
    /// `"garb-fast"`/`"garb-vote"` (G-arbiter fast path / vote).
    pub site: &'static str,
    /// Exact-shadow witness lines (lowest addresses first, capped by the
    /// emitter). Empty ⇒ the Bloom encodings collided but the exact shadows
    /// did not: a pure-alias false positive.
    pub witnesses: Vec<u64>,
}

impl ConflictAttr {
    fn append_fields(&self, out: &mut Vec<(&'static str, crate::Json)>) {
        if let Some(c) = self.agg_core {
            out.push(("agg_core", c.into()));
        }
        if let Some(s) = self.agg_seq {
            out.push(("agg_seq", s.into()));
        }
        out.push(("site", self.site.into()));
        out.push((
            "witness",
            crate::Json::Arr(self.witnesses.iter().map(|&l| l.into()).collect()),
        ));
    }
}

/// One cycle-stamped simulator event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A core opened a new chunk (`seq` is per-core, monotonically rising).
    ChunkStart { core: u32, seq: u64 },
    /// A core asked the arbiter for permission to commit.
    CommitRequest {
        core: u32,
        seq: u64,
        w_lines: u32,
        carries_rsig: bool,
    },
    /// The (G-)arbiter granted commit permission.
    CommitGrant { core: u32, seq: u64 },
    /// The (G-)arbiter denied commit permission (the core will retry).
    /// `xray` carries conflict attribution when the emitter runs with
    /// attribution on (schema v5); `None` serializes exactly like v4.
    CommitDeny {
        core: u32,
        seq: u64,
        xray: Option<Box<ConflictAttr>>,
    },
    /// A chunk finished committing and retired its instructions.
    ChunkCommit {
        core: u32,
        seq: u64,
        read_lines: u32,
        write_lines: u32,
        priv_lines: u32,
    },
    /// A core discarded a still-empty trailing chunk at the end of its
    /// program (no instructions were lost; nothing will re-execute).
    /// Terminates the chunk's span like a commit or squash does.
    ChunkAbandon { core: u32, seq: u64 },
    /// A chunk was squashed and will re-execute from its checkpoint.
    /// `xray` as on [`Event::CommitDeny`].
    Squash {
        core: u32,
        seq: u64,
        cause: SquashCause,
        squashed_instrs: u64,
        xray: Option<Box<ConflictAttr>>,
    },
    /// The directory expanded a committing W signature (Table 1's DirBDM
    /// walk): `lookups`/`updates` count the directory accesses it took,
    /// `inv_targets` the sharer caches it invalidated.
    SigExpand {
        dir: u32,
        core: u32,
        seq: u64,
        lookups: u64,
        updates: u64,
        inv_targets: u64,
    },
    /// A directory-cache entry was displaced (its owner must flush).
    DirDisplacement { dir: u32, line: u64 },
    /// An L1 cache line with speculative read-set footprint was displaced.
    CacheDisplacement { core: u32, line: u64 },
    /// The Private Buffer supplied a dirty line instead of memory (§5.2).
    PrivSupply { core: u32, line: u64 },
    /// Value trace: a retired load observed `value` at `addr` (emitted at
    /// retire for baseline models; buffered per chunk and emitted at
    /// commit for BulkSC, so squashed work never appears). `seq` is the
    /// owning chunk (0 for baselines); `po` is the per-core program-order
    /// index; `retired_at` is the retire cycle (the stamped `t` is the
    /// emission cycle, which for BulkSC is the commit-grant cycle).
    ValLoad {
        core: u32,
        seq: u64,
        po: u64,
        addr: u64,
        value: u64,
        retired_at: u64,
    },
    /// Value trace: a store of `value` to `addr` became globally visible.
    /// Stream order of `val_store`/`val_rmw` events at one address *is*
    /// the coherence order: every emission site sits next to the
    /// `ValueStore::write` that publishes the value.
    ValStore {
        core: u32,
        seq: u64,
        po: u64,
        addr: u64,
        value: u64,
        retired_at: u64,
    },
    /// Value trace: an atomic read-modify-write observed `old` and
    /// published `new` at `addr`, indivisibly.
    ValRmw {
        core: u32,
        seq: u64,
        po: u64,
        addr: u64,
        old: u64,
        new: u64,
        retired_at: u64,
    },
    /// A message entered the interconnect.
    NetSend {
        src: Endpoint,
        dst: Endpoint,
        kind: &'static str,
        bytes: u64,
    },
    /// A message left the interconnect at its destination.
    NetDeliver {
        src: Endpoint,
        dst: Endpoint,
        kind: &'static str,
    },
}

impl Event {
    /// Number of event kinds (the size of the [`Event::KIND_NAMES`] table
    /// and the width of a BTF block's kind bitmap).
    pub const KIND_COUNT: usize = 16;

    /// Every event name, indexed by [`Event::kind_id`]. The order is the
    /// wire order of the BTF codec — append-only; never reorder.
    pub const KIND_NAMES: [&'static str; Event::KIND_COUNT] = [
        "chunk_start",
        "commit_request",
        "commit_grant",
        "commit_deny",
        "chunk_commit",
        "chunk_abandon",
        "squash",
        "sig_expand",
        "dir_displacement",
        "cache_displacement",
        "priv_supply",
        "val_load",
        "val_store",
        "val_rmw",
        "net_send",
        "net_deliver",
    ];

    /// Stable numeric kind (the BTF record tag and kind-bitmap bit).
    pub fn kind_id(&self) -> u8 {
        match self {
            Event::ChunkStart { .. } => 0,
            Event::CommitRequest { .. } => 1,
            Event::CommitGrant { .. } => 2,
            Event::CommitDeny { .. } => 3,
            Event::ChunkCommit { .. } => 4,
            Event::ChunkAbandon { .. } => 5,
            Event::Squash { .. } => 6,
            Event::SigExpand { .. } => 7,
            Event::DirDisplacement { .. } => 8,
            Event::CacheDisplacement { .. } => 9,
            Event::PrivSupply { .. } => 10,
            Event::ValLoad { .. } => 11,
            Event::ValStore { .. } => 12,
            Event::ValRmw { .. } => 13,
            Event::NetSend { .. } => 14,
            Event::NetDeliver { .. } => 15,
        }
    }

    /// The kind id for an event name, if it names one.
    pub fn kind_id_of(name: &str) -> Option<u8> {
        Event::KIND_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| i as u8)
    }

    /// The issuing core, for events that carry a `core` field (drives the
    /// BTF per-block core bitmap and `query --core`).
    pub fn core_id(&self) -> Option<u32> {
        match *self {
            Event::ChunkStart { core, .. }
            | Event::CommitRequest { core, .. }
            | Event::CommitGrant { core, .. }
            | Event::CommitDeny { core, .. }
            | Event::ChunkCommit { core, .. }
            | Event::ChunkAbandon { core, .. }
            | Event::Squash { core, .. }
            | Event::SigExpand { core, .. }
            | Event::CacheDisplacement { core, .. }
            | Event::PrivSupply { core, .. }
            | Event::ValLoad { core, .. }
            | Event::ValStore { core, .. }
            | Event::ValRmw { core, .. } => Some(core),
            Event::DirDisplacement { .. } | Event::NetSend { .. } | Event::NetDeliver { .. } => {
                None
            }
        }
    }

    /// The line/word address this event is about, if it carries one
    /// (drives the BTF per-block address range and `query --line`).
    pub fn line_addr(&self) -> Option<u64> {
        match *self {
            Event::DirDisplacement { line, .. }
            | Event::CacheDisplacement { line, .. }
            | Event::PrivSupply { line, .. } => Some(line),
            Event::ValLoad { addr, .. }
            | Event::ValStore { addr, .. }
            | Event::ValRmw { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// The squash cause, for squash events.
    pub fn squash_cause(&self) -> Option<SquashCause> {
        match *self {
            Event::Squash { cause, .. } => Some(cause),
            _ => None,
        }
    }

    /// The conflict-attribution site, when this event carries xray data.
    pub fn xray_site(&self) -> Option<&'static str> {
        match self {
            Event::CommitDeny { xray, .. } | Event::Squash { xray, .. } => {
                xray.as_ref().map(|a| a.site)
            }
            _ => None,
        }
    }

    /// Stable snake_case name (the `ev` field of the JSONL encoding).
    pub fn name(&self) -> &'static str {
        match self {
            Event::ChunkStart { .. } => "chunk_start",
            Event::CommitRequest { .. } => "commit_request",
            Event::CommitGrant { .. } => "commit_grant",
            Event::CommitDeny { .. } => "commit_deny",
            Event::ChunkCommit { .. } => "chunk_commit",
            Event::ChunkAbandon { .. } => "chunk_abandon",
            Event::Squash { .. } => "squash",
            Event::SigExpand { .. } => "sig_expand",
            Event::DirDisplacement { .. } => "dir_displacement",
            Event::CacheDisplacement { .. } => "cache_displacement",
            Event::PrivSupply { .. } => "priv_supply",
            Event::ValLoad { .. } => "val_load",
            Event::ValStore { .. } => "val_store",
            Event::ValRmw { .. } => "val_rmw",
            Event::NetSend { .. } => "net_send",
            Event::NetDeliver { .. } => "net_deliver",
        }
    }

    /// The component this event happened at (used as the Chrome-trace
    /// thread id so Perfetto lanes events per component).
    pub fn actor(&self) -> Endpoint {
        match *self {
            Event::ChunkStart { core, .. }
            | Event::CommitRequest { core, .. }
            | Event::CommitGrant { core, .. }
            | Event::CommitDeny { core, .. }
            | Event::ChunkCommit { core, .. }
            | Event::ChunkAbandon { core, .. }
            | Event::Squash { core, .. }
            | Event::CacheDisplacement { core, .. }
            | Event::PrivSupply { core, .. }
            | Event::ValLoad { core, .. }
            | Event::ValStore { core, .. }
            | Event::ValRmw { core, .. } => Endpoint::core(core),
            Event::SigExpand { dir, .. } | Event::DirDisplacement { dir, .. } => Endpoint::dir(dir),
            Event::NetSend { src, .. } => src,
            Event::NetDeliver { dst, .. } => dst,
        }
    }

    /// The `(key, value)` payload fields, in a stable order.
    pub fn fields(&self) -> Vec<(&'static str, crate::Json)> {
        match *self {
            Event::ChunkStart { core, seq } => {
                vec![("core", core.into()), ("seq", seq.into())]
            }
            Event::CommitRequest {
                core,
                seq,
                w_lines,
                carries_rsig,
            } => vec![
                ("core", core.into()),
                ("seq", seq.into()),
                ("w_lines", w_lines.into()),
                ("carries_rsig", carries_rsig.into()),
            ],
            Event::CommitGrant { core, seq } | Event::ChunkAbandon { core, seq } => {
                vec![("core", core.into()), ("seq", seq.into())]
            }
            Event::CommitDeny {
                core,
                seq,
                ref xray,
            } => {
                let mut out = vec![("core", core.into()), ("seq", seq.into())];
                if let Some(attr) = xray {
                    attr.append_fields(&mut out);
                }
                out
            }
            Event::ChunkCommit {
                core,
                seq,
                read_lines,
                write_lines,
                priv_lines,
            } => vec![
                ("core", core.into()),
                ("seq", seq.into()),
                ("read_lines", read_lines.into()),
                ("write_lines", write_lines.into()),
                ("priv_lines", priv_lines.into()),
            ],
            Event::Squash {
                core,
                seq,
                cause,
                squashed_instrs,
                ref xray,
            } => {
                let mut out = vec![
                    ("core", core.into()),
                    ("seq", seq.into()),
                    ("cause", cause.label().into()),
                    ("squashed_instrs", squashed_instrs.into()),
                ];
                if let Some(attr) = xray {
                    attr.append_fields(&mut out);
                }
                out
            }
            Event::SigExpand {
                dir,
                core,
                seq,
                lookups,
                updates,
                inv_targets,
            } => vec![
                ("dir", dir.into()),
                ("core", core.into()),
                ("seq", seq.into()),
                ("lookups", lookups.into()),
                ("updates", updates.into()),
                ("inv_targets", inv_targets.into()),
            ],
            Event::DirDisplacement { dir, line } => {
                vec![("dir", dir.into()), ("line", line.into())]
            }
            Event::CacheDisplacement { core, line } | Event::PrivSupply { core, line } => {
                vec![("core", core.into()), ("line", line.into())]
            }
            Event::ValLoad {
                core,
                seq,
                po,
                addr,
                value,
                retired_at,
            }
            | Event::ValStore {
                core,
                seq,
                po,
                addr,
                value,
                retired_at,
            } => vec![
                ("core", core.into()),
                ("seq", seq.into()),
                ("po", po.into()),
                ("addr", addr.into()),
                ("value", value.into()),
                ("retired_at", retired_at.into()),
            ],
            Event::ValRmw {
                core,
                seq,
                po,
                addr,
                old,
                new,
                retired_at,
            } => vec![
                ("core", core.into()),
                ("seq", seq.into()),
                ("po", po.into()),
                ("addr", addr.into()),
                ("old", old.into()),
                ("new", new.into()),
                ("retired_at", retired_at.into()),
            ],
            Event::NetSend {
                src,
                dst,
                kind,
                bytes,
            } => vec![
                ("src", src.to_string().into()),
                ("dst", dst.to_string().into()),
                ("kind", kind.into()),
                ("bytes", bytes.into()),
            ],
            Event::NetDeliver { src, dst, kind } => vec![
                ("src", src.to_string().into()),
                ("dst", dst.to_string().into()),
                ("kind", kind.into()),
            ],
        }
    }

    /// One JSONL line (no trailing newline): `{"t":cycle,"ev":name,...}`.
    pub fn jsonl(&self, cycle: u64) -> String {
        let mut obj = crate::Json::obj([("t", cycle.into()), ("ev", self.name().into())]);
        for (k, v) in self.fields() {
            obj.push(k, v);
        }
        obj.to_string()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @{}", self.name(), self.actor())?;
        for (k, v) in self.fields() {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_display() {
        assert_eq!(Endpoint::core(3).to_string(), "core3");
        assert_eq!(Endpoint::dir(0).to_string(), "dir0");
        assert_eq!(Endpoint::arbiter(1).to_string(), "arb1");
        assert_eq!(Endpoint::garbiter().to_string(), "garb");
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let events = [
            Event::ChunkStart { core: 0, seq: 1 },
            Event::CommitRequest {
                core: 0,
                seq: 1,
                w_lines: 3,
                carries_rsig: true,
            },
            Event::CommitGrant { core: 0, seq: 1 },
            Event::CommitDeny {
                core: 1,
                seq: 9,
                xray: None,
            },
            Event::CommitDeny {
                core: 1,
                seq: 9,
                xray: Some(Box::new(ConflictAttr {
                    agg_core: Some(0),
                    agg_seq: Some(7),
                    site: "arb",
                    witnesses: vec![0xbeef, 0xcafe],
                })),
            },
            Event::ChunkCommit {
                core: 0,
                seq: 1,
                read_lines: 20,
                write_lines: 3,
                priv_lines: 8,
            },
            Event::ChunkAbandon { core: 3, seq: 40 },
            Event::Squash {
                core: 1,
                seq: 9,
                cause: SquashCause::Alias,
                squashed_instrs: 412,
                xray: None,
            },
            Event::Squash {
                core: 1,
                seq: 9,
                cause: SquashCause::TrueSharing,
                squashed_instrs: 412,
                xray: Some(Box::new(ConflictAttr {
                    agg_core: Some(3),
                    agg_seq: Some(41),
                    site: "wsig",
                    witnesses: vec![0x100],
                })),
            },
            Event::SigExpand {
                dir: 0,
                core: 0,
                seq: 1,
                lookups: 4,
                updates: 2,
                inv_targets: 1,
            },
            Event::DirDisplacement {
                dir: 0,
                line: 0xfeed,
            },
            Event::CacheDisplacement {
                core: 2,
                line: 0xbeef,
            },
            Event::PrivSupply {
                core: 2,
                line: 0xcafe,
            },
            Event::ValLoad {
                core: 1,
                seq: 4,
                po: 17,
                addr: 0x1_0008,
                value: 42,
                retired_at: 99,
            },
            Event::ValStore {
                core: 0,
                seq: 2,
                po: 3,
                addr: 0x1_0000,
                value: 1,
                retired_at: 80,
            },
            Event::ValRmw {
                core: 2,
                seq: 0,
                po: 9,
                addr: 0x1_0010,
                old: 0,
                new: 1,
                retired_at: 120,
            },
            Event::NetSend {
                src: Endpoint::core(0),
                dst: Endpoint::arbiter(0),
                kind: "CommitReq",
                bytes: 264,
            },
            Event::NetDeliver {
                src: Endpoint::core(0),
                dst: Endpoint::arbiter(0),
                kind: "CommitReq",
            },
        ];
        for (i, ev) in events.iter().enumerate() {
            let line = ev.jsonl(100 + i as u64);
            assert!(crate::json::is_valid(&line), "invalid JSONL: {line}");
            assert!(line.contains(&format!("\"ev\":\"{}\"", ev.name())));
            assert!(line.starts_with(&format!("{{\"t\":{}", 100 + i)));
        }
    }

    #[test]
    fn squash_causes_have_stable_labels() {
        assert_eq!(SquashCause::Alias.label(), "alias");
        assert_eq!(SquashCause::TrueSharing.label(), "true-sharing");
        assert_eq!(SquashCause::Overflow.label(), "overflow");
    }

    #[test]
    fn display_is_human_readable() {
        let e = Event::Squash {
            core: 1,
            seq: 9,
            cause: SquashCause::Overflow,
            squashed_instrs: 7,
            xray: None,
        };
        let s = e.to_string();
        assert!(s.contains("squash") && s.contains("core1") && s.contains("overflow"));
    }

    #[test]
    fn xray_attribution_serializes_only_when_present() {
        let bare = Event::Squash {
            core: 2,
            seq: 5,
            cause: SquashCause::Alias,
            squashed_instrs: 10,
            xray: None,
        }
        .jsonl(1);
        assert!(!bare.contains("site"), "{bare}");
        assert!(!bare.contains("witness"), "{bare}");

        let attributed = Event::Squash {
            core: 2,
            seq: 5,
            cause: SquashCause::TrueSharing,
            squashed_instrs: 10,
            xray: Some(Box::new(ConflictAttr {
                agg_core: Some(0),
                agg_seq: Some(3),
                site: "wsig",
                witnesses: vec![7, 9],
            })),
        }
        .jsonl(1);
        assert!(
            attributed.contains("\"agg_core\":0,\"agg_seq\":3,\"site\":\"wsig\",\"witness\":[7,9]"),
            "{attributed}"
        );

        // No aggressor (overflow self-squash): agg fields are omitted, not
        // null — old readers never see unknown nulls.
        let no_agg = Event::Squash {
            core: 2,
            seq: 5,
            cause: SquashCause::Overflow,
            squashed_instrs: 10,
            xray: Some(Box::new(ConflictAttr {
                agg_core: None,
                agg_seq: None,
                site: "overflow",
                witnesses: Vec::new(),
            })),
        }
        .jsonl(1);
        assert!(!no_agg.contains("agg_core"), "{no_agg}");
        assert!(
            no_agg.contains("\"site\":\"overflow\",\"witness\":[]"),
            "{no_agg}"
        );
    }
}
