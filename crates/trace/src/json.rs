//! Hand-rolled JSON: a value tree, a renderer, and a small validating
//! parser.
//!
//! The workspace builds fully offline with no external dependencies, so
//! run artifacts (`results/*.json`), JSONL event streams, and Chrome trace
//! files are serialized by this module instead of serde. The renderer is
//! deterministic — object fields keep insertion order, floats use Rust's
//! shortest-roundtrip formatting — which is what lets same-seed runs emit
//! byte-identical traces.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (cycle counts can exceed `f64`'s 2^53 mantissa).
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Append a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            _ => panic!("Json::push on a non-object"),
        }
    }

    /// Parse one complete JSON document into a value tree. Returns `None`
    /// on malformed input or trailing garbage. Numbers parse as `U64` when
    /// they are non-negative integers in range, `I64` for negative
    /// integers, and `F64` otherwise — matching what [`Json::write`]
    /// emits, so render → parse round-trips.
    pub fn parse(input: &str) -> Option<Json> {
        let bytes = input.as_bytes();
        let (value, next) = parse_tree(bytes, skip_ws(bytes, 0))?;
        (skip_ws(bytes, next) == bytes.len()).then_some(value)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Render into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips, and it
        // always includes a decimal point or exponent — valid JSON and
        // deterministic.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no NaN/Infinity.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Validate that `input` is one complete JSON value (with surrounding
/// whitespace allowed). Used by tests to check that emitted artifacts are
/// well-formed without an external JSON crate.
pub fn is_valid(input: &str) -> bool {
    let bytes = input.as_bytes();
    let mut pos = skip_ws(bytes, 0);
    match parse_value(bytes, pos) {
        Some(next) => {
            pos = skip_ws(bytes, next);
            pos == bytes.len()
        }
        None => false,
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

/// Parse one value starting at `i`; return the index just past it.
fn parse_value(b: &[u8], i: usize) -> Option<usize> {
    match b.get(i)? {
        b'{' => parse_obj(b, i),
        b'[' => parse_arr(b, i),
        b'"' => parse_string(b, i),
        b't' => parse_lit(b, i, b"true"),
        b'f' => parse_lit(b, i, b"false"),
        b'n' => parse_lit(b, i, b"null"),
        b'-' | b'0'..=b'9' => parse_number(b, i),
        _ => None,
    }
}

fn parse_lit(b: &[u8], i: usize, lit: &[u8]) -> Option<usize> {
    if b.len() >= i + lit.len() && &b[i..i + lit.len()] == lit {
        Some(i + lit.len())
    } else {
        None
    }
}

fn parse_string(b: &[u8], mut i: usize) -> Option<usize> {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'"' => return Some(i + 1),
            b'\\' => {
                let esc = *b.get(i + 1)?;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => i += 2,
                    b'u' => {
                        if i + 6 > b.len() || !b[i + 2..i + 6].iter().all(u8::is_ascii_hexdigit) {
                            return None;
                        }
                        i += 6;
                    }
                    _ => return None,
                }
            }
            0x00..=0x1f => return None,
            _ => i += 1,
        }
    }
    None
}

fn parse_number(b: &[u8], mut i: usize) -> Option<usize> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let digits = |b: &[u8], mut i: usize| -> Option<usize> {
        let s = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        (i > s).then_some(i)
    };
    i = digits(b, i)?;
    if b.get(i) == Some(&b'.') {
        i = digits(b, i + 1)?;
    }
    if matches!(b.get(i), Some(b'e') | Some(b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+') | Some(b'-')) {
            i += 1;
        }
        i = digits(b, i)?;
    }
    (i > start).then_some(i)
}

fn parse_arr(b: &[u8], i: usize) -> Option<usize> {
    let mut pos = skip_ws(b, i + 1);
    if b.get(pos) == Some(&b']') {
        return Some(pos + 1);
    }
    loop {
        pos = skip_ws(b, parse_value(b, pos)?);
        match b.get(pos)? {
            b',' => pos = skip_ws(b, pos + 1),
            b']' => return Some(pos + 1),
            _ => return None,
        }
    }
}

fn parse_obj(b: &[u8], i: usize) -> Option<usize> {
    let mut pos = skip_ws(b, i + 1);
    if b.get(pos) == Some(&b'}') {
        return Some(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return None;
        }
        pos = skip_ws(b, parse_string(b, pos)?);
        if b.get(pos) != Some(&b':') {
            return None;
        }
        pos = skip_ws(b, pos + 1);
        pos = skip_ws(b, parse_value(b, pos)?);
        match b.get(pos)? {
            b',' => pos = skip_ws(b, pos + 1),
            b'}' => return Some(pos + 1),
            _ => return None,
        }
    }
}

/// Parse one value starting at `i`, building the tree; return the value
/// and the index just past it.
fn parse_tree(b: &[u8], i: usize) -> Option<(Json, usize)> {
    match b.get(i)? {
        b'{' => {
            let mut fields = Vec::new();
            let mut pos = skip_ws(b, i + 1);
            if b.get(pos) == Some(&b'}') {
                return Some((Json::Obj(fields), pos + 1));
            }
            loop {
                if b.get(pos) != Some(&b'"') {
                    return None;
                }
                let (key, next) = parse_string_tree(b, pos)?;
                pos = skip_ws(b, next);
                if b.get(pos) != Some(&b':') {
                    return None;
                }
                let (value, next) = parse_tree(b, skip_ws(b, pos + 1))?;
                fields.push((key, value));
                pos = skip_ws(b, next);
                match b.get(pos)? {
                    b',' => pos = skip_ws(b, pos + 1),
                    b'}' => return Some((Json::Obj(fields), pos + 1)),
                    _ => return None,
                }
            }
        }
        b'[' => {
            let mut items = Vec::new();
            let mut pos = skip_ws(b, i + 1);
            if b.get(pos) == Some(&b']') {
                return Some((Json::Arr(items), pos + 1));
            }
            loop {
                let (value, next) = parse_tree(b, pos)?;
                items.push(value);
                pos = skip_ws(b, next);
                match b.get(pos)? {
                    b',' => pos = skip_ws(b, pos + 1),
                    b']' => return Some((Json::Arr(items), pos + 1)),
                    _ => return None,
                }
            }
        }
        b'"' => {
            let (s, next) = parse_string_tree(b, i)?;
            Some((Json::Str(s), next))
        }
        b't' => parse_lit(b, i, b"true").map(|n| (Json::Bool(true), n)),
        b'f' => parse_lit(b, i, b"false").map(|n| (Json::Bool(false), n)),
        b'n' => parse_lit(b, i, b"null").map(|n| (Json::Null, n)),
        b'-' | b'0'..=b'9' => {
            let next = parse_number(b, i)?;
            let text = std::str::from_utf8(&b[i..next]).ok()?;
            let value = if text.bytes().all(|c| c.is_ascii_digit()) {
                text.parse::<u64>()
                    .map(Json::U64)
                    .unwrap_or(Json::F64(text.parse().ok()?))
            } else if !text.contains(['.', 'e', 'E']) {
                text.parse::<i64>()
                    .map(Json::I64)
                    .unwrap_or(Json::F64(text.parse().ok()?))
            } else {
                Json::F64(text.parse().ok()?)
            };
            Some((value, next))
        }
        _ => None,
    }
}

/// Parse a string literal at `i` into its unescaped form.
fn parse_string_tree(b: &[u8], i: usize) -> Option<(String, usize)> {
    let end = parse_string(b, i)?;
    let raw = std::str::from_utf8(&b[i + 1..end - 1]).ok()?;
    if !raw.contains('\\') {
        return Some((raw.to_string(), end));
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                // Lone surrogates render as the replacement character; the
                // writer never emits surrogate pairs.
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            _ => return None,
        }
    }
    Some((out, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from(-3i64).to_string(), "-3");
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::from(3.0).to_string(), "3.0");
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from("a\"b\n").to_string(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn renders_collections_in_order() {
        let mut o = Json::obj([("b", Json::from(1u64))]);
        o.push("a", Json::Arr(vec![Json::Null, Json::from(2u64)]));
        assert_eq!(o.to_string(), "{\"b\":1,\"a\":[null,2]}");
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 1;
        assert_eq!(Json::from(big).to_string(), big.to_string());
    }

    #[test]
    fn validator_accepts_what_we_render() {
        let mut o = Json::obj([
            ("name", Json::from("fig9 \u{7} tab\t")),
            (
                "xs",
                Json::Arr(vec![Json::from(1.25), Json::from(-2i64), Json::Bool(false)]),
            ),
            ("nested", Json::obj([("empty", Json::Arr(Vec::new()))])),
        ]);
        o.push("last", Json::Null);
        assert!(is_valid(&o.to_string()));
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\"1}",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
            "nul",
            "--1",
            "1.e5",
            "\"bad \\q escape\"",
        ] {
            assert!(!is_valid(bad), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parse_round_trips_what_we_render() {
        let mut o = Json::obj([
            ("name", Json::from("fig9 \u{7} tab\t\"q\"")),
            (
                "xs",
                Json::Arr(vec![Json::from(1.25), Json::from(-2i64), Json::Bool(false)]),
            ),
            ("big", Json::from(u64::MAX)),
            ("neg", Json::from(i64::MIN)),
            ("nested", Json::obj([("empty", Json::Arr(Vec::new()))])),
            ("null", Json::Null),
        ]);
        o.push("f", Json::from(0.1));
        let text = o.to_string();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, o);
        // Re-render is byte-identical: parse is a faithful inverse.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "[1] x", "1e999x", "\"\\q\""] {
            assert!(Json::parse(bad).is_none(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_trees() {
        let doc = Json::parse("{\"a\":{\"b\":[1,-2,3.5,\"s\"]},\"n\":7}").unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        let items = arr.as_arr().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[1].as_f64(), Some(-2.0));
        assert_eq!(items[2].as_f64(), Some(3.5));
        assert_eq!(items[3].as_str(), Some("s"));
        assert_eq!(doc.as_obj().unwrap().len(), 2);
        assert!(doc.get("missing").is_none());
        assert!(items[0].get("x").is_none());
        assert!(items[0].as_arr().is_none());
    }

    #[test]
    fn parse_unescapes_strings() {
        let doc = Json::parse("\"a\\n\\t\\u0041\\\\\\\"/\\u00e9\"").unwrap();
        assert_eq!(doc.as_str(), Some("a\n\tA\\\"/é"));
    }

    #[test]
    fn validator_accepts_plain_forms() {
        for good in [
            "null",
            " true ",
            "[ ]",
            "{ }",
            "-1.5e-3",
            "[{\"k\":[]}]",
            "\"\\u00ff\"",
        ] {
            assert!(is_valid(good), "rejected: {good:?}");
        }
    }
}
