//! BTF: the binary trace format — a schema-stamped, blocked, indexed
//! encoding of the JSONL event stream.
//!
//! ROADMAP item 4 pins the motivation: the streaming SC checker is
//! parse-bound through the JSONL pipe, so long certifications pay for text
//! decoding, not checking. BTF keeps the *same* event vocabulary and the
//! same schema-version window ([`crate::schema_supported`]) but encodes
//! each event as a tagged varint record, groups records into blocks, and
//! appends a per-block footer index (byte offset, cycle range, core
//! bitmap, event-kind bitmap, address range) so readers can *skip* blocks
//! a query cannot match instead of decoding them.
//!
//! # Wire layout
//!
//! ```text
//! header   b"BTF1" | u32 LE schema_version                      (8 bytes)
//! blocks   0xB0 | u32 LE payload_len | u32 LE event_count | payload   (*)
//! index    0xB1 | u32 LE payload_len | u32 LE n_blocks | n × 64-byte meta
//! trailer  u64 LE index_offset | b"BTFE"                       (12 bytes)
//! ```
//!
//! Block payloads are self-contained: the per-block string table resets at
//! every block boundary (string-define records re-emitted), so any block
//! decodes with no state from earlier blocks — that is what makes the
//! index's random access sound. Within a block the first record carries an
//! absolute cycle; subsequent records carry zigzag varint deltas (cycles
//! are *not* assumed monotone — deltas wrap).
//!
//! Records: a tag byte that is either an event kind id
//! ([`Event::kind_id`], 0..16) or `0xFE` (string define: varint length +
//! UTF-8 bytes, appended to the block-local string table). Event fields
//! follow the tag in a fixed per-kind order as varints; strings (net
//! message kinds, xray sites) are table ids; [`SquashCause`] and
//! [`EndpointKind`] are single bytes.
//!
//! The codec follows the `sig::compress` wire conventions: magic + header,
//! a small error taxonomy ([`BtfError`]), strict rejection of truncated or
//! garbage input, and round-trip tests. Conversion to and from JSONL is
//! lossless — `jsonl → btf → jsonl` re-emission is byte-identical,
//! including the artifact's *original* schema version, which rides in the
//! BTF header so converted v3/v4 traces do not get silently restamped.

use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::{Mutex, OnceLock};

use crate::event::{ConflictAttr, Endpoint, EndpointKind, Event, SquashCause};
use crate::Json;

/// File magic: the first 4 bytes of every BTF artifact.
pub const MAGIC: &[u8; 4] = b"BTF1";
/// Trailer magic: the last 4 bytes of every complete BTF artifact.
pub const TRAILER_MAGIC: &[u8; 4] = b"BTFE";
/// Tag byte opening a block.
const TAG_BLOCK: u8 = 0xB0;
/// Tag byte opening the index footer.
const TAG_INDEX: u8 = 0xB1;
/// In-block tag: string-define record (varint len + UTF-8 bytes).
const TAG_STR: u8 = 0xFE;
/// Events per block before the writer seals it. Small enough that a
/// skipped block saves real work, large enough that per-block overhead
/// (9-byte header, string re-defines, 64-byte index row) stays noise.
pub const DEFAULT_BLOCK_EVENTS: usize = 4096;
/// Upper bound accepted for a single block/index payload: rejects absurd
/// length prefixes from corrupt input before allocating.
const MAX_PAYLOAD: u32 = 1 << 30;

/// Everything that can go wrong reading a BTF artifact.
#[derive(Debug)]
pub enum BtfError {
    /// Underlying I/O failure (not a format problem).
    Io(io::Error),
    /// The input does not start with [`MAGIC`] / end with [`TRAILER_MAGIC`].
    BadMagic,
    /// Header schema version outside the [`crate::schema_supported`] window.
    UnsupportedSchema(u64),
    /// Input ended mid-structure; the payload names what was being read.
    Truncated(&'static str),
    /// A tag byte that is neither an event kind, a string define, a block,
    /// nor the index.
    UnknownTag(u8),
    /// A record's fields don't decode (bad varint, bad enum byte, bad
    /// string id, UTF-8 failure, count mismatch...).
    InvalidRecord(String),
    /// The footer index is internally inconsistent or missing.
    BadIndex(String),
}

impl std::fmt::Display for BtfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BtfError::Io(e) => write!(f, "i/o error: {e}"),
            BtfError::BadMagic => write!(f, "not a BTF artifact (bad magic)"),
            BtfError::UnsupportedSchema(v) => write!(
                f,
                "unsupported schema version {v} (this tool reads {}..={})",
                crate::MIN_SCHEMA_VERSION,
                crate::SCHEMA_VERSION
            ),
            BtfError::Truncated(what) => write!(f, "truncated input while reading {what}"),
            BtfError::UnknownTag(t) => write!(f, "unknown record tag 0x{t:02x}"),
            BtfError::InvalidRecord(msg) => write!(f, "invalid record: {msg}"),
            BtfError::BadIndex(msg) => write!(f, "bad block index: {msg}"),
        }
    }
}

impl std::error::Error for BtfError {}

impl From<io::Error> for BtfError {
    fn from(e: io::Error) -> BtfError {
        BtfError::Io(e)
    }
}

/// Is this byte prefix a BTF artifact? (Format sniffing: JSONL starts with
/// `{`, BTF with [`MAGIC`].)
pub fn is_btf(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------- varints

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn get_varint(b: &[u8], pos: &mut usize) -> Result<u64, BtfError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *b.get(*pos).ok_or(BtfError::Truncated("varint"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(BtfError::InvalidRecord("varint overflows u64".into()));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(BtfError::InvalidRecord(
                "varint longer than 10 bytes".into(),
            ));
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------- intern

/// Strings the decoder expects to see in traces: xray conflict sites and
/// net message kinds. Anything else (future emitters) falls through to a
/// leak-once intern table so decoded events still carry `&'static str`.
const KNOWN: &[&str] = &[
    // xray sites (ConflictAttr::site)
    "wsig",
    "displacement",
    "overflow",
    "arb",
    "prearb",
    "garb-fast",
    "garb-vote",
    // net message kinds (Event::NetSend/NetDeliver::kind)
    "ArbCheck",
    "ArbCheckResp",
    "ArbDone",
    "ArbRelease",
    "CommitComplete",
    "CommitReq",
    "CommitResp",
    "Data",
    "DirDone",
    "DisplaceSig",
    "Fetch",
    "FetchResp",
    "Inv",
    "InvAck",
    "Nack",
    "PreArbGrant",
    "PreArbReq",
    "PrivSigToDir",
    "RSigReq",
    "RSigResp",
    "ReadExcl",
    "ReadShared",
    "Upgrade",
    "UpgradeAck",
    "WSigInv",
    "WSigInvAck",
    "WSigToDir",
    "Writeback",
];

/// Map a decoded string to a `&'static str` (the event vocabulary stores
/// net kinds and xray sites as statics). Known strings cost a linear scan
/// of [`KNOWN`]; unknown ones are leaked exactly once into a process-wide
/// table — bounded by the distinct-string vocabulary of the trace, not by
/// its length.
pub fn intern(s: &str) -> &'static str {
    if let Some(&k) = KNOWN.iter().find(|&&k| k == s) {
        return k;
    }
    static EXTRA: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = EXTRA
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("intern table poisoned");
    if let Some(&leaked) = map.get(s) {
        return leaked;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    map.insert(s.to_string(), leaked);
    leaked
}

// ------------------------------------------------------------ block meta

/// One row of the footer index: everything a query needs to decide whether
/// a block *can* match without decoding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// File offset of the block's `0xB0` tag byte.
    pub offset: u64,
    /// Payload length in bytes (excludes the 9-byte block header).
    pub len: u32,
    /// Events in the block.
    pub count: u32,
    /// Smallest cycle stamp in the block.
    pub min_cycle: u64,
    /// Largest cycle stamp in the block.
    pub max_cycle: u64,
    /// Bit `min(core, 63)` set for every event carrying a core id; cores
    /// ≥ 63 share the top bit (saturating, conservative).
    pub core_mask: u64,
    /// Bit [`Event::kind_id`] set for every event kind present.
    pub kind_mask: u32,
    /// Smallest line/word address in the block (`u64::MAX` if none).
    pub min_addr: u64,
    /// Largest line/word address in the block (`0` if none).
    pub max_addr: u64,
}

/// Serialized size of one index row.
const META_BYTES: usize = 64;

impl BlockMeta {
    fn empty(offset: u64) -> BlockMeta {
        BlockMeta {
            offset,
            len: 0,
            count: 0,
            min_cycle: u64::MAX,
            max_cycle: 0,
            core_mask: 0,
            kind_mask: 0,
            min_addr: u64::MAX,
            max_addr: 0,
        }
    }

    /// Conservative membership test: could this block contain an event
    /// from `core`? (Never a false negative; cores ≥ 63 alias.)
    pub fn may_contain_core(&self, core: u32) -> bool {
        self.core_mask & (1u64 << core.min(63)) != 0
    }

    /// Could this block contain an event of kind id `kind`?
    pub fn may_contain_kind(&self, kind: u8) -> bool {
        (kind as usize) < Event::KIND_COUNT && self.kind_mask & (1u32 << kind) != 0
    }

    /// Does the block's cycle range intersect `[lo, hi]` (inclusive)?
    pub fn overlaps_cycles(&self, lo: u64, hi: u64) -> bool {
        self.count > 0 && self.min_cycle <= hi && lo <= self.max_cycle
    }

    /// Could this block contain an event touching `addr`?
    pub fn may_contain_addr(&self, addr: u64) -> bool {
        self.min_addr <= addr && addr <= self.max_addr
    }

    fn absorb(&mut self, cycle: u64, ev: &Event) {
        self.count += 1;
        self.min_cycle = self.min_cycle.min(cycle);
        self.max_cycle = self.max_cycle.max(cycle);
        self.kind_mask |= 1u32 << ev.kind_id();
        if let Some(core) = ev.core_id() {
            self.core_mask |= 1u64 << core.min(63);
        }
        if let Some(addr) = ev.line_addr() {
            self.min_addr = self.min_addr.min(addr);
            self.max_addr = self.max_addr.max(addr);
        }
    }

    fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.min_cycle.to_le_bytes());
        out.extend_from_slice(&self.max_cycle.to_le_bytes());
        out.extend_from_slice(&self.core_mask.to_le_bytes());
        out.extend_from_slice(&self.kind_mask.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // pad to 64
        out.extend_from_slice(&self.min_addr.to_le_bytes());
        out.extend_from_slice(&self.max_addr.to_le_bytes());
    }

    fn deserialize(b: &[u8]) -> BlockMeta {
        let u64_at = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(b[i..i + 4].try_into().unwrap());
        BlockMeta {
            offset: u64_at(0),
            len: u32_at(8),
            count: u32_at(12),
            min_cycle: u64_at(16),
            max_cycle: u64_at(24),
            core_mask: u64_at(32),
            kind_mask: u32_at(40),
            // bytes 44..48 are padding
            min_addr: u64_at(48),
            max_addr: u64_at(56),
        }
    }
}

// ---------------------------------------------------------------- writer

/// Streaming BTF encoder over any `Write` sink (file, pipe, `Vec<u8>`).
///
/// Accumulates one block at a time, seals it at
/// [`BtfWriter::with_block_events`] events (default
/// [`DEFAULT_BLOCK_EVENTS`]), and writes the index + trailer on
/// [`BtfWriter::finish`]. Dropping a writer without `finish` leaves a
/// truncated artifact that readers reject — there is no silent partial
/// success.
pub struct BtfWriter<W: Write> {
    out: W,
    block_events: usize,
    /// Bytes written to `out` so far (the next block's offset).
    pos: u64,
    payload: Vec<u8>,
    meta: BlockMeta,
    prev_cycle: u64,
    strings: HashMap<&'static str, u64>,
    index: Vec<BlockMeta>,
}

impl<W: Write> BtfWriter<W> {
    /// A writer stamping the current [`crate::SCHEMA_VERSION`].
    pub fn new(out: W) -> io::Result<BtfWriter<W>> {
        BtfWriter::with_version(out, crate::SCHEMA_VERSION)
    }

    /// A writer stamping an explicit schema version — used by the JSONL
    /// converter so a v3 artifact stays v3 through a round trip.
    pub fn with_version(mut out: W, version: u64) -> io::Result<BtfWriter<W>> {
        out.write_all(MAGIC)?;
        out.write_all(&(version as u32).to_le_bytes())?;
        Ok(BtfWriter {
            out,
            block_events: DEFAULT_BLOCK_EVENTS,
            pos: 8,
            payload: Vec::new(),
            meta: BlockMeta::empty(8),
            prev_cycle: 0,
            strings: HashMap::new(),
            index: Vec::new(),
        })
    }

    /// Override the block size (events per block). Mostly for tests, which
    /// want many small blocks from few events.
    pub fn with_block_events(mut self, n: usize) -> BtfWriter<W> {
        self.block_events = n.max(1);
        self
    }

    /// Total events pushed so far.
    pub fn events(&self) -> u64 {
        self.index.iter().map(|m| m.count as u64).sum::<u64>() + self.meta.count as u64
    }

    /// Intern `s` into the current block's string table, emitting a define
    /// record on first use. Must run *before* the referencing record's tag
    /// byte is appended.
    fn string_id(&mut self, s: &'static str) -> u64 {
        if let Some(&id) = self.strings.get(s) {
            return id;
        }
        let id = self.strings.len() as u64;
        self.payload.push(TAG_STR);
        put_varint(&mut self.payload, s.len() as u64);
        self.payload.extend_from_slice(s.as_bytes());
        self.strings.insert(s, id);
        id
    }

    fn xray_string_id(&mut self, xray: &Option<Box<ConflictAttr>>) -> u64 {
        match xray {
            Some(attr) => self.string_id(attr.site),
            None => 0,
        }
    }

    /// Append one event.
    pub fn push(&mut self, cycle: u64, ev: &Event) -> io::Result<()> {
        // String defines must precede the record that references them.
        let sid = match ev {
            Event::NetSend { kind, .. } | Event::NetDeliver { kind, .. } => self.string_id(kind),
            Event::CommitDeny { xray, .. } | Event::Squash { xray, .. } => {
                self.xray_string_id(xray)
            }
            _ => 0,
        };

        self.payload.push(ev.kind_id());
        if self.meta.count == 0 {
            put_varint(&mut self.payload, cycle);
        } else {
            put_varint(
                &mut self.payload,
                zigzag(cycle.wrapping_sub(self.prev_cycle) as i64),
            );
        }
        self.prev_cycle = cycle;
        encode_fields(&mut self.payload, ev, sid);
        self.meta.absorb(cycle, ev);

        if self.meta.count as usize >= self.block_events {
            self.seal_block()?;
        }
        Ok(())
    }

    fn seal_block(&mut self) -> io::Result<()> {
        if self.meta.count == 0 {
            return Ok(());
        }
        self.meta.len = self.payload.len() as u32;
        self.out.write_all(&[TAG_BLOCK])?;
        self.out.write_all(&self.meta.len.to_le_bytes())?;
        self.out.write_all(&self.meta.count.to_le_bytes())?;
        self.out.write_all(&self.payload)?;
        self.pos += 9 + self.meta.len as u64;
        self.index.push(self.meta);
        self.payload.clear();
        self.strings.clear();
        self.meta = BlockMeta::empty(self.pos);
        Ok(())
    }

    /// Seal the partial block, write the index footer and trailer, flush,
    /// and hand back the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.seal_block()?;
        let index_offset = self.pos;
        let mut payload = Vec::with_capacity(4 + META_BYTES * self.index.len());
        payload.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for meta in &self.index {
            meta.serialize(&mut payload);
        }
        self.out.write_all(&[TAG_INDEX])?;
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&payload)?;
        self.out.write_all(&index_offset.to_le_bytes())?;
        self.out.write_all(TRAILER_MAGIC)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

// -------------------------------------------------------- record codecs

/// Endpoint kind on the wire. Append-only, mirrors [`EndpointKind`].
fn endpoint_kind_u8(k: EndpointKind) -> u8 {
    match k {
        EndpointKind::Core => 0,
        EndpointKind::Dir => 1,
        EndpointKind::Arbiter => 2,
        EndpointKind::GArbiter => 3,
    }
}

fn endpoint_kind_from_u8(b: u8) -> Result<EndpointKind, BtfError> {
    Ok(match b {
        0 => EndpointKind::Core,
        1 => EndpointKind::Dir,
        2 => EndpointKind::Arbiter,
        3 => EndpointKind::GArbiter,
        _ => return Err(BtfError::InvalidRecord(format!("endpoint kind byte {b}"))),
    })
}

fn put_endpoint(out: &mut Vec<u8>, ep: Endpoint) {
    out.push(endpoint_kind_u8(ep.kind));
    put_varint(out, ep.index as u64);
}

fn get_endpoint(b: &[u8], pos: &mut usize) -> Result<Endpoint, BtfError> {
    let kind_byte = *b.get(*pos).ok_or(BtfError::Truncated("endpoint kind"))?;
    *pos += 1;
    let kind = endpoint_kind_from_u8(kind_byte)?;
    let index = get_u32(b, pos, "endpoint index")?;
    Ok(Endpoint { kind, index })
}

fn get_u32(b: &[u8], pos: &mut usize, what: &str) -> Result<u32, BtfError> {
    let v = get_varint(b, pos)?;
    u32::try_from(v).map_err(|_| BtfError::InvalidRecord(format!("{what} {v} exceeds u32")))
}

fn cause_u8(c: SquashCause) -> u8 {
    SquashCause::ALL
        .iter()
        .position(|&x| x == c)
        .expect("cause in ALL") as u8
}

fn cause_from_u8(b: u8) -> Result<SquashCause, BtfError> {
    SquashCause::ALL
        .get(b as usize)
        .copied()
        .ok_or_else(|| BtfError::InvalidRecord(format!("squash cause byte {b}")))
}

/// Xray attribution blob: a flags byte (0 = absent; bit0 present, bit1
/// agg_core follows, bit2 agg_seq follows), then the optional varints, the
/// site string id, and the witness list.
fn put_xray(out: &mut Vec<u8>, xray: &Option<Box<ConflictAttr>>, site_id: u64) {
    let Some(attr) = xray else {
        out.push(0);
        return;
    };
    let mut flags = 1u8;
    if attr.agg_core.is_some() {
        flags |= 2;
    }
    if attr.agg_seq.is_some() {
        flags |= 4;
    }
    out.push(flags);
    if let Some(c) = attr.agg_core {
        put_varint(out, c as u64);
    }
    if let Some(s) = attr.agg_seq {
        put_varint(out, s);
    }
    put_varint(out, site_id);
    put_varint(out, attr.witnesses.len() as u64);
    for &w in &attr.witnesses {
        put_varint(out, w);
    }
}

fn get_xray(
    b: &[u8],
    pos: &mut usize,
    strings: &[&'static str],
) -> Result<Option<Box<ConflictAttr>>, BtfError> {
    let flags = *b.get(*pos).ok_or(BtfError::Truncated("xray flags"))?;
    *pos += 1;
    if flags == 0 {
        return Ok(None);
    }
    if flags & 1 == 0 || flags & !0b111 != 0 {
        return Err(BtfError::InvalidRecord(format!(
            "xray flags byte {flags:#x}"
        )));
    }
    let agg_core = if flags & 2 != 0 {
        Some(get_u32(b, pos, "agg_core")?)
    } else {
        None
    };
    let agg_seq = if flags & 4 != 0 {
        Some(get_varint(b, pos)?)
    } else {
        None
    };
    let site = get_string(b, pos, strings, "xray site")?;
    let n = get_varint(b, pos)? as usize;
    // Witness lists are emitter-capped; a huge count is corruption.
    if n > 4096 {
        return Err(BtfError::InvalidRecord(format!("witness count {n}")));
    }
    let mut witnesses = Vec::with_capacity(n);
    for _ in 0..n {
        witnesses.push(get_varint(b, pos)?);
    }
    Ok(Some(Box::new(ConflictAttr {
        agg_core,
        agg_seq,
        site,
        witnesses,
    })))
}

fn get_string(
    b: &[u8],
    pos: &mut usize,
    strings: &[&'static str],
    what: &str,
) -> Result<&'static str, BtfError> {
    let id = get_varint(b, pos)? as usize;
    strings
        .get(id)
        .copied()
        .ok_or_else(|| BtfError::InvalidRecord(format!("{what}: string id {id} undefined")))
}

/// Encode the per-kind fields (everything after tag + cycle). `sid` is the
/// pre-interned string id for kinds that carry one (net message kind, xray
/// site); 0 otherwise.
fn encode_fields(out: &mut Vec<u8>, ev: &Event, sid: u64) {
    match *ev {
        Event::ChunkStart { core, seq }
        | Event::CommitGrant { core, seq }
        | Event::ChunkAbandon { core, seq } => {
            put_varint(out, core as u64);
            put_varint(out, seq);
        }
        Event::CommitRequest {
            core,
            seq,
            w_lines,
            carries_rsig,
        } => {
            put_varint(out, core as u64);
            put_varint(out, seq);
            put_varint(out, w_lines as u64);
            out.push(carries_rsig as u8);
        }
        Event::CommitDeny {
            core,
            seq,
            ref xray,
        } => {
            put_varint(out, core as u64);
            put_varint(out, seq);
            put_xray(out, xray, sid);
        }
        Event::ChunkCommit {
            core,
            seq,
            read_lines,
            write_lines,
            priv_lines,
        } => {
            put_varint(out, core as u64);
            put_varint(out, seq);
            put_varint(out, read_lines as u64);
            put_varint(out, write_lines as u64);
            put_varint(out, priv_lines as u64);
        }
        Event::Squash {
            core,
            seq,
            cause,
            squashed_instrs,
            ref xray,
        } => {
            put_varint(out, core as u64);
            put_varint(out, seq);
            out.push(cause_u8(cause));
            put_varint(out, squashed_instrs);
            put_xray(out, xray, sid);
        }
        Event::SigExpand {
            dir,
            core,
            seq,
            lookups,
            updates,
            inv_targets,
        } => {
            put_varint(out, dir as u64);
            put_varint(out, core as u64);
            put_varint(out, seq);
            put_varint(out, lookups);
            put_varint(out, updates);
            put_varint(out, inv_targets);
        }
        Event::DirDisplacement { dir, line } => {
            put_varint(out, dir as u64);
            put_varint(out, line);
        }
        Event::CacheDisplacement { core, line } | Event::PrivSupply { core, line } => {
            put_varint(out, core as u64);
            put_varint(out, line);
        }
        Event::ValLoad {
            core,
            seq,
            po,
            addr,
            value,
            retired_at,
        }
        | Event::ValStore {
            core,
            seq,
            po,
            addr,
            value,
            retired_at,
        } => {
            put_varint(out, core as u64);
            put_varint(out, seq);
            put_varint(out, po);
            put_varint(out, addr);
            put_varint(out, value);
            put_varint(out, retired_at);
        }
        Event::ValRmw {
            core,
            seq,
            po,
            addr,
            old,
            new,
            retired_at,
        } => {
            put_varint(out, core as u64);
            put_varint(out, seq);
            put_varint(out, po);
            put_varint(out, addr);
            put_varint(out, old);
            put_varint(out, new);
            put_varint(out, retired_at);
        }
        Event::NetSend {
            src,
            dst,
            kind: _,
            bytes,
        } => {
            put_endpoint(out, src);
            put_endpoint(out, dst);
            put_varint(out, sid);
            put_varint(out, bytes);
        }
        Event::NetDeliver { src, dst, kind: _ } => {
            put_endpoint(out, src);
            put_endpoint(out, dst);
            put_varint(out, sid);
        }
    }
}

/// Decode the per-kind fields for kind id `kind` (tag + cycle already
/// consumed).
fn decode_fields(
    kind: u8,
    b: &[u8],
    pos: &mut usize,
    strings: &[&'static str],
) -> Result<Event, BtfError> {
    let ev = match kind {
        0 => Event::ChunkStart {
            core: get_u32(b, pos, "core")?,
            seq: get_varint(b, pos)?,
        },
        1 => {
            let core = get_u32(b, pos, "core")?;
            let seq = get_varint(b, pos)?;
            let w_lines = get_u32(b, pos, "w_lines")?;
            let flag = *b.get(*pos).ok_or(BtfError::Truncated("carries_rsig"))?;
            *pos += 1;
            if flag > 1 {
                return Err(BtfError::InvalidRecord(format!("bool byte {flag}")));
            }
            Event::CommitRequest {
                core,
                seq,
                w_lines,
                carries_rsig: flag == 1,
            }
        }
        2 => Event::CommitGrant {
            core: get_u32(b, pos, "core")?,
            seq: get_varint(b, pos)?,
        },
        3 => {
            let core = get_u32(b, pos, "core")?;
            let seq = get_varint(b, pos)?;
            let xray = get_xray(b, pos, strings)?;
            Event::CommitDeny { core, seq, xray }
        }
        4 => Event::ChunkCommit {
            core: get_u32(b, pos, "core")?,
            seq: get_varint(b, pos)?,
            read_lines: get_u32(b, pos, "read_lines")?,
            write_lines: get_u32(b, pos, "write_lines")?,
            priv_lines: get_u32(b, pos, "priv_lines")?,
        },
        5 => Event::ChunkAbandon {
            core: get_u32(b, pos, "core")?,
            seq: get_varint(b, pos)?,
        },
        6 => {
            let core = get_u32(b, pos, "core")?;
            let seq = get_varint(b, pos)?;
            let cause_byte = *b.get(*pos).ok_or(BtfError::Truncated("squash cause"))?;
            *pos += 1;
            let cause = cause_from_u8(cause_byte)?;
            let squashed_instrs = get_varint(b, pos)?;
            let xray = get_xray(b, pos, strings)?;
            Event::Squash {
                core,
                seq,
                cause,
                squashed_instrs,
                xray,
            }
        }
        7 => Event::SigExpand {
            dir: get_u32(b, pos, "dir")?,
            core: get_u32(b, pos, "core")?,
            seq: get_varint(b, pos)?,
            lookups: get_varint(b, pos)?,
            updates: get_varint(b, pos)?,
            inv_targets: get_varint(b, pos)?,
        },
        8 => Event::DirDisplacement {
            dir: get_u32(b, pos, "dir")?,
            line: get_varint(b, pos)?,
        },
        9 => Event::CacheDisplacement {
            core: get_u32(b, pos, "core")?,
            line: get_varint(b, pos)?,
        },
        10 => Event::PrivSupply {
            core: get_u32(b, pos, "core")?,
            line: get_varint(b, pos)?,
        },
        11 | 12 => {
            let core = get_u32(b, pos, "core")?;
            let seq = get_varint(b, pos)?;
            let po = get_varint(b, pos)?;
            let addr = get_varint(b, pos)?;
            let value = get_varint(b, pos)?;
            let retired_at = get_varint(b, pos)?;
            if kind == 11 {
                Event::ValLoad {
                    core,
                    seq,
                    po,
                    addr,
                    value,
                    retired_at,
                }
            } else {
                Event::ValStore {
                    core,
                    seq,
                    po,
                    addr,
                    value,
                    retired_at,
                }
            }
        }
        13 => Event::ValRmw {
            core: get_u32(b, pos, "core")?,
            seq: get_varint(b, pos)?,
            po: get_varint(b, pos)?,
            addr: get_varint(b, pos)?,
            old: get_varint(b, pos)?,
            new: get_varint(b, pos)?,
            retired_at: get_varint(b, pos)?,
        },
        14 => {
            let src = get_endpoint(b, pos)?;
            let dst = get_endpoint(b, pos)?;
            let kind = get_string(b, pos, strings, "net kind")?;
            let bytes = get_varint(b, pos)?;
            Event::NetSend {
                src,
                dst,
                kind,
                bytes,
            }
        }
        15 => {
            let src = get_endpoint(b, pos)?;
            let dst = get_endpoint(b, pos)?;
            let kind = get_string(b, pos, strings, "net kind")?;
            Event::NetDeliver { src, dst, kind }
        }
        other => return Err(BtfError::UnknownTag(other)),
    };
    Ok(ev)
}

/// Decode one complete block payload into `(cycle, event)` pairs.
///
/// Self-contained by construction: the string table starts empty and is
/// populated only by this payload's define records.
pub fn decode_block(payload: &[u8], expect_count: u32) -> Result<Vec<(u64, Event)>, BtfError> {
    let mut strings: Vec<&'static str> = Vec::new();
    let mut events = Vec::with_capacity(expect_count as usize);
    let mut pos = 0usize;
    let mut prev_cycle = 0u64;
    while pos < payload.len() {
        let tag = payload[pos];
        pos += 1;
        if tag == TAG_STR {
            let len = get_varint(payload, &mut pos)? as usize;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= payload.len())
                .ok_or(BtfError::Truncated("string define"))?;
            let s = std::str::from_utf8(&payload[pos..end])
                .map_err(|_| BtfError::InvalidRecord("string define is not UTF-8".into()))?;
            strings.push(intern(s));
            pos = end;
            continue;
        }
        if tag as usize >= Event::KIND_COUNT {
            return Err(BtfError::UnknownTag(tag));
        }
        let cycle = if events.is_empty() {
            get_varint(payload, &mut pos)?
        } else {
            prev_cycle.wrapping_add(unzigzag(get_varint(payload, &mut pos)?) as u64)
        };
        prev_cycle = cycle;
        let ev = decode_fields(tag, payload, &mut pos, &strings)?;
        events.push((cycle, ev));
    }
    if events.len() != expect_count as usize {
        return Err(BtfError::InvalidRecord(format!(
            "block header promised {expect_count} events, payload held {}",
            events.len()
        )));
    }
    Ok(events)
}

// ---------------------------------------------------------------- reader

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), BtfError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            BtfError::Truncated(what)
        } else {
            BtfError::Io(e)
        }
    })
}

fn checked_payload_len(len: u32, what: &'static str) -> Result<usize, BtfError> {
    if len > MAX_PAYLOAD {
        return Err(BtfError::BadIndex(format!(
            "{what} length {len} exceeds the {MAX_PAYLOAD}-byte cap"
        )));
    }
    Ok(len as usize)
}

/// Sequential (pipe-friendly) BTF reader: no `Seek`, one block at a time,
/// bounded memory. This is what the streaming checker consumes from stdin.
pub struct BtfReader<R: Read> {
    inner: R,
    version: u64,
    done: bool,
}

impl<R: Read> BtfReader<R> {
    /// Read and validate the 8-byte header.
    pub fn new(mut inner: R) -> Result<BtfReader<R>, BtfError> {
        let mut header = [0u8; 8];
        read_exact_or(&mut inner, &mut header, "header")?;
        if &header[..4] != MAGIC {
            return Err(BtfError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap()) as u64;
        if !crate::schema_supported(version) {
            return Err(BtfError::UnsupportedSchema(version));
        }
        Ok(BtfReader {
            inner,
            version,
            done: false,
        })
    }

    /// The schema version stamped in the header.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The next block's events, or `None` once the index footer has been
    /// reached (and the trailer validated). A stream that ends without an
    /// index is reported as truncated — a killed writer never passes for a
    /// complete artifact.
    pub fn next_block(&mut self) -> Result<Option<Vec<(u64, Event)>>, BtfError> {
        if self.done {
            return Ok(None);
        }
        let mut tag = [0u8; 1];
        read_exact_or(
            &mut self.inner,
            &mut tag,
            "block tag (stream ends before index)",
        )?;
        match tag[0] {
            TAG_BLOCK => {
                let mut head = [0u8; 8];
                read_exact_or(&mut self.inner, &mut head, "block header")?;
                let len = checked_payload_len(
                    u32::from_le_bytes(head[0..4].try_into().unwrap()),
                    "block",
                )?;
                let count = u32::from_le_bytes(head[4..8].try_into().unwrap());
                let mut payload = vec![0u8; len];
                read_exact_or(&mut self.inner, &mut payload, "block payload")?;
                Ok(Some(decode_block(&payload, count)?))
            }
            TAG_INDEX => {
                // Drain and discard the index, then validate the trailer.
                let mut lenb = [0u8; 4];
                read_exact_or(&mut self.inner, &mut lenb, "index header")?;
                let len = checked_payload_len(u32::from_le_bytes(lenb), "index")?;
                let mut payload = vec![0u8; len];
                read_exact_or(&mut self.inner, &mut payload, "index payload")?;
                let mut trailer = [0u8; 12];
                read_exact_or(&mut self.inner, &mut trailer, "trailer")?;
                if &trailer[8..12] != TRAILER_MAGIC {
                    return Err(BtfError::BadMagic);
                }
                self.done = true;
                Ok(None)
            }
            other => Err(BtfError::UnknownTag(other)),
        }
    }
}

/// Random-access BTF reader: loads the footer index up front, then decodes
/// only the blocks asked for. This is what `bulksc-analyze query` uses to
/// skip non-matching blocks.
pub struct IndexedBtf<R: Read + Seek> {
    inner: R,
    version: u64,
    file_len: u64,
    index: Vec<BlockMeta>,
}

impl IndexedBtf<std::fs::File> {
    /// Open a `.btf` file and load its index.
    pub fn open_path(
        path: impl AsRef<std::path::Path>,
    ) -> Result<IndexedBtf<std::fs::File>, BtfError> {
        IndexedBtf::new(std::fs::File::open(path)?)
    }
}

impl<R: Read + Seek> IndexedBtf<R> {
    /// Validate header + trailer and load the block index.
    pub fn new(mut inner: R) -> Result<IndexedBtf<R>, BtfError> {
        let file_len = inner.seek(SeekFrom::End(0))?;
        if file_len < 8 + 5 + 12 {
            return Err(BtfError::Truncated(
                "artifact (shorter than header + empty index + trailer)",
            ));
        }
        inner.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; 8];
        read_exact_or(&mut inner, &mut header, "header")?;
        if &header[..4] != MAGIC {
            return Err(BtfError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap()) as u64;
        if !crate::schema_supported(version) {
            return Err(BtfError::UnsupportedSchema(version));
        }
        inner.seek(SeekFrom::End(-12))?;
        let mut trailer = [0u8; 12];
        read_exact_or(&mut inner, &mut trailer, "trailer")?;
        if &trailer[8..12] != TRAILER_MAGIC {
            return Err(BtfError::BadMagic);
        }
        let index_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        if index_offset < 8 || index_offset + 12 > file_len {
            return Err(BtfError::BadIndex(format!(
                "index offset {index_offset} outside artifact of {file_len} bytes"
            )));
        }
        inner.seek(SeekFrom::Start(index_offset))?;
        let mut head = [0u8; 5];
        read_exact_or(&mut inner, &mut head, "index header")?;
        if head[0] != TAG_INDEX {
            return Err(BtfError::BadIndex(format!(
                "index offset points at tag 0x{:02x}, not the index",
                head[0]
            )));
        }
        let len = checked_payload_len(u32::from_le_bytes(head[1..5].try_into().unwrap()), "index")?;
        let mut payload = vec![0u8; len];
        read_exact_or(&mut inner, &mut payload, "index payload")?;
        if payload.len() < 4 {
            return Err(BtfError::BadIndex(
                "index payload shorter than its count".into(),
            ));
        }
        let n = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
        if payload.len() != 4 + n * META_BYTES {
            return Err(BtfError::BadIndex(format!(
                "index payload is {} bytes, expected {} for {n} blocks",
                payload.len(),
                4 + n * META_BYTES
            )));
        }
        let mut index = Vec::with_capacity(n);
        for i in 0..n {
            let meta =
                BlockMeta::deserialize(&payload[4 + i * META_BYTES..4 + (i + 1) * META_BYTES]);
            if meta.offset + 9 + meta.len as u64 > index_offset {
                return Err(BtfError::BadIndex(format!(
                    "block {i} at offset {} overruns the index",
                    meta.offset
                )));
            }
            index.push(meta);
        }
        Ok(IndexedBtf {
            inner,
            version,
            file_len,
            index,
        })
    }

    /// The schema version stamped in the header.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total artifact size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The block index, in file order.
    pub fn index(&self) -> &[BlockMeta] {
        &self.index
    }

    /// Decode block `i` (by index position). Seeks straight to the block;
    /// no other block is read.
    pub fn read_block(&mut self, i: usize) -> Result<Vec<(u64, Event)>, BtfError> {
        let meta = *self
            .index
            .get(i)
            .ok_or_else(|| BtfError::BadIndex(format!("block {i} out of range")))?;
        self.inner.seek(SeekFrom::Start(meta.offset))?;
        let mut head = [0u8; 9];
        read_exact_or(&mut self.inner, &mut head, "block header")?;
        if head[0] != TAG_BLOCK {
            return Err(BtfError::BadIndex(format!(
                "block {i}: offset {} holds tag 0x{:02x}, not a block",
                meta.offset, head[0]
            )));
        }
        let len = u32::from_le_bytes(head[1..5].try_into().unwrap());
        let count = u32::from_le_bytes(head[5..9].try_into().unwrap());
        if len != meta.len || count != meta.count {
            return Err(BtfError::BadIndex(format!(
                "block {i}: header says {len}B/{count} events, index says {}B/{}",
                meta.len, meta.count
            )));
        }
        let mut payload = vec![0u8; checked_payload_len(len, "block")?];
        read_exact_or(&mut self.inner, &mut payload, "block payload")?;
        decode_block(&payload, count)
    }
}

// ---------------------------------------------------------------- tracer

/// A [`crate::Tracer`] sink that accumulates a BTF artifact in memory —
/// the binary sibling of [`crate::JsonlTracer`]. Recording is infallible
/// (`Vec<u8>` sink); call [`BtfTracer::write_to`] (or take
/// [`BtfTracer::finish_bytes`]) once after the run.
pub struct BtfTracer {
    writer: Option<BtfWriter<Vec<u8>>>,
    events: u64,
}

impl Default for BtfTracer {
    fn default() -> BtfTracer {
        BtfTracer::new()
    }
}

impl BtfTracer {
    pub fn new() -> BtfTracer {
        BtfTracer {
            writer: Some(BtfWriter::new(Vec::new()).expect("Vec write is infallible")),
            events: 0,
        }
    }

    /// A shareable sink, ready for [`crate::TraceHandle::attach`].
    pub fn shared() -> std::rc::Rc<std::cell::RefCell<BtfTracer>> {
        std::rc::Rc::new(std::cell::RefCell::new(BtfTracer::new()))
    }

    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Seal the artifact and return its bytes. Further `record` calls
    /// panic — finishing is the end of the sink's life, matching how the
    /// harnesses write artifacts exactly once after a run.
    pub fn finish_bytes(&mut self) -> Vec<u8> {
        self.writer
            .take()
            .expect("BtfTracer already finished")
            .finish()
            .expect("Vec write is infallible")
    }

    /// Seal the artifact and write it to `path`.
    pub fn write_to(&mut self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        std::fs::write(path, self.finish_bytes())
    }
}

impl crate::Tracer for BtfTracer {
    fn record(&mut self, cycle: u64, event: &Event) {
        self.writer
            .as_mut()
            .expect("BtfTracer already finished")
            .push(cycle, event)
            .expect("Vec write is infallible");
        self.events += 1;
    }
}

// ------------------------------------------------------- jsonl ↔ btf

/// Parse the JSONL schema header line; returns the artifact version.
pub fn parse_jsonl_header(line: &str) -> Result<u64, String> {
    let obj = Json::parse(line.trim()).ok_or_else(|| "header line is not JSON".to_string())?;
    match obj.get("schema").and_then(Json::as_str) {
        Some("bulksc-trace") => {}
        Some(other) => return Err(format!("not a trace stream (schema {other:?})")),
        None => return Err("header has no \"schema\" field".to_string()),
    }
    let version = obj
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| "header has no \"version\" field".to_string())?;
    if !crate::schema_supported(version) {
        return Err(format!(
            "unsupported schema version {version} (this tool reads {}..={})",
            crate::MIN_SCHEMA_VERSION,
            crate::SCHEMA_VERSION
        ));
    }
    Ok(version)
}

fn parse_endpoint_str(s: &str) -> Result<Endpoint, String> {
    if s == "garb" {
        return Ok(Endpoint::garbiter());
    }
    for (prefix, make) in [
        ("core", Endpoint::core as fn(u32) -> Endpoint),
        ("dir", Endpoint::dir as fn(u32) -> Endpoint),
        ("arb", Endpoint::arbiter as fn(u32) -> Endpoint),
    ] {
        if let Some(rest) = s.strip_prefix(prefix) {
            if let Ok(i) = rest.parse::<u32>() {
                return Ok(make(i));
            }
        }
    }
    Err(format!("unrecognized endpoint {s:?}"))
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_u32(obj: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(obj, key)?).map_err(|_| format!("field {key:?} exceeds u32"))
}

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn field_endpoint(obj: &Json, key: &str) -> Result<Endpoint, String> {
    parse_endpoint_str(field_str(obj, key)?)
}

/// Optional xray blob: present iff the line carries a `"site"` key
/// (matching how [`ConflictAttr::append_fields`] serializes — `agg_core`
/// and `agg_seq` are *omitted*, never null, when unknown).
fn field_xray(obj: &Json) -> Result<Option<Box<ConflictAttr>>, String> {
    if obj.get("site").is_none() {
        return Ok(None);
    }
    let site = intern(field_str(obj, "site")?);
    let agg_core = match obj.get("agg_core") {
        Some(v) => Some(
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| "agg_core is not a u32".to_string())?,
        ),
        None => None,
    };
    let agg_seq = match obj.get("agg_seq") {
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| "agg_seq is not a u64".to_string())?,
        ),
        None => None,
    };
    let witnesses = obj
        .get("witness")
        .and_then(Json::as_arr)
        .ok_or_else(|| "xray blob lacks the witness array".to_string())?
        .iter()
        .map(|w| w.as_u64().ok_or_else(|| "witness is not a u64".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(Some(Box::new(ConflictAttr {
        agg_core,
        agg_seq,
        site,
        witnesses,
    })))
}

fn field_cause(obj: &Json) -> Result<SquashCause, String> {
    let label = field_str(obj, "cause")?;
    SquashCause::ALL
        .iter()
        .copied()
        .find(|c| c.label() == label)
        .ok_or_else(|| format!("unknown squash cause {label:?}"))
}

/// Parse one JSONL event object back into `(cycle, Event)`. Inverse of
/// [`Event::jsonl`]: `event_from_json(parse(ev.jsonl(t))) == (t, ev)`.
pub fn event_from_json(obj: &Json) -> Result<(u64, Event), String> {
    let t = field_u64(obj, "t")?;
    let name = field_str(obj, "ev")?;
    let ev = match name {
        "chunk_start" => Event::ChunkStart {
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
        },
        "commit_request" => Event::CommitRequest {
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
            w_lines: field_u32(obj, "w_lines")?,
            carries_rsig: obj
                .get("carries_rsig")
                .and_then(Json::as_bool)
                .ok_or_else(|| "missing or non-bool field \"carries_rsig\"".to_string())?,
        },
        "commit_grant" => Event::CommitGrant {
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
        },
        "commit_deny" => Event::CommitDeny {
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
            xray: field_xray(obj)?,
        },
        "chunk_commit" => Event::ChunkCommit {
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
            read_lines: field_u32(obj, "read_lines")?,
            write_lines: field_u32(obj, "write_lines")?,
            priv_lines: field_u32(obj, "priv_lines")?,
        },
        "chunk_abandon" => Event::ChunkAbandon {
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
        },
        "squash" => Event::Squash {
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
            cause: field_cause(obj)?,
            squashed_instrs: field_u64(obj, "squashed_instrs")?,
            xray: field_xray(obj)?,
        },
        "sig_expand" => Event::SigExpand {
            dir: field_u32(obj, "dir")?,
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
            lookups: field_u64(obj, "lookups")?,
            updates: field_u64(obj, "updates")?,
            inv_targets: field_u64(obj, "inv_targets")?,
        },
        "dir_displacement" => Event::DirDisplacement {
            dir: field_u32(obj, "dir")?,
            line: field_u64(obj, "line")?,
        },
        "cache_displacement" => Event::CacheDisplacement {
            core: field_u32(obj, "core")?,
            line: field_u64(obj, "line")?,
        },
        "priv_supply" => Event::PrivSupply {
            core: field_u32(obj, "core")?,
            line: field_u64(obj, "line")?,
        },
        "val_load" | "val_store" => {
            let core = field_u32(obj, "core")?;
            let seq = field_u64(obj, "seq")?;
            let po = field_u64(obj, "po")?;
            let addr = field_u64(obj, "addr")?;
            let value = field_u64(obj, "value")?;
            let retired_at = field_u64(obj, "retired_at")?;
            if name == "val_load" {
                Event::ValLoad {
                    core,
                    seq,
                    po,
                    addr,
                    value,
                    retired_at,
                }
            } else {
                Event::ValStore {
                    core,
                    seq,
                    po,
                    addr,
                    value,
                    retired_at,
                }
            }
        }
        "val_rmw" => Event::ValRmw {
            core: field_u32(obj, "core")?,
            seq: field_u64(obj, "seq")?,
            po: field_u64(obj, "po")?,
            addr: field_u64(obj, "addr")?,
            old: field_u64(obj, "old")?,
            new: field_u64(obj, "new")?,
            retired_at: field_u64(obj, "retired_at")?,
        },
        "net_send" => Event::NetSend {
            src: field_endpoint(obj, "src")?,
            dst: field_endpoint(obj, "dst")?,
            kind: intern(field_str(obj, "kind")?),
            bytes: field_u64(obj, "bytes")?,
        },
        "net_deliver" => Event::NetDeliver {
            src: field_endpoint(obj, "src")?,
            dst: field_endpoint(obj, "dst")?,
            kind: intern(field_str(obj, "kind")?),
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok((t, ev))
}

/// Convert a JSONL trace to BTF bytes, carrying the artifact's original
/// schema version through.
pub fn jsonl_to_btf(text: &str) -> Result<Vec<u8>, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| "empty input (no schema header)".to_string())?;
    let version = parse_jsonl_header(header)?;
    let mut writer = BtfWriter::with_version(Vec::new(), version).expect("Vec write is infallible");
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).ok_or_else(|| format!("line {}: not valid JSON", i + 1))?;
        let (cycle, ev) = event_from_json(&obj).map_err(|e| format!("line {}: {e}", i + 1))?;
        writer.push(cycle, &ev).expect("Vec write is infallible");
    }
    writer.finish().map_err(|e| format!("finish: {e}"))
}

/// Convert BTF bytes back to the JSONL text they came from. Byte-identical
/// to the original for any stream this workspace's tools emitted (the
/// header re-renders from the stored version; every event re-renders
/// through [`Event::jsonl`]).
pub fn btf_to_jsonl(bytes: &[u8]) -> Result<String, BtfError> {
    let mut reader = BtfReader::new(bytes)?;
    let mut out = Json::obj([
        ("schema", "bulksc-trace".into()),
        ("version", reader.version().into()),
    ])
    .to_string();
    out.push('\n');
    while let Some(block) = reader.next_block()? {
        for (cycle, ev) in block {
            out.push_str(&ev.jsonl(cycle));
            out.push('\n');
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;
    use std::io::Cursor;

    /// One of every event kind, with awkward values: non-monotone cycles
    /// are exercised separately.
    fn sample_events() -> Vec<(u64, Event)> {
        let xray = Some(Box::new(ConflictAttr {
            agg_core: Some(3),
            agg_seq: Some(41),
            site: "wsig",
            witnesses: vec![0x100, 0x9e37_79b9_7f4a_7c15],
        }));
        let no_agg = Some(Box::new(ConflictAttr {
            agg_core: None,
            agg_seq: None,
            site: "overflow",
            witnesses: Vec::new(),
        }));
        vec![
            (10, Event::ChunkStart { core: 0, seq: 1 }),
            (
                11,
                Event::CommitRequest {
                    core: 0,
                    seq: 1,
                    w_lines: 3,
                    carries_rsig: true,
                },
            ),
            (12, Event::CommitGrant { core: 0, seq: 1 }),
            (
                13,
                Event::CommitDeny {
                    core: 1,
                    seq: 9,
                    xray: xray.clone(),
                },
            ),
            (
                14,
                Event::ChunkCommit {
                    core: 0,
                    seq: 1,
                    read_lines: 20,
                    write_lines: 3,
                    priv_lines: 8,
                },
            ),
            (15, Event::ChunkAbandon { core: 3, seq: 40 }),
            (
                16,
                Event::Squash {
                    core: 1,
                    seq: 9,
                    cause: SquashCause::TrueSharing,
                    squashed_instrs: 412,
                    xray,
                },
            ),
            (
                17,
                Event::Squash {
                    core: 2,
                    seq: 5,
                    cause: SquashCause::Overflow,
                    squashed_instrs: 10,
                    xray: no_agg,
                },
            ),
            (
                18,
                Event::SigExpand {
                    dir: 0,
                    core: 0,
                    seq: 1,
                    lookups: 4,
                    updates: 2,
                    inv_targets: 1,
                },
            ),
            (
                19,
                Event::DirDisplacement {
                    dir: 0,
                    line: 0xfeed,
                },
            ),
            (
                20,
                Event::CacheDisplacement {
                    core: 2,
                    line: 0xbeef,
                },
            ),
            (
                21,
                Event::PrivSupply {
                    core: 2,
                    line: 0xcafe,
                },
            ),
            (
                22,
                Event::ValLoad {
                    core: 1,
                    seq: 4,
                    po: 17,
                    addr: 0x1_0008,
                    value: u64::MAX,
                    retired_at: 99,
                },
            ),
            (
                23,
                Event::ValStore {
                    core: 0,
                    seq: 2,
                    po: 3,
                    addr: 0x1_0000,
                    value: 1,
                    retired_at: 80,
                },
            ),
            (
                24,
                Event::ValRmw {
                    core: 2,
                    seq: 0,
                    po: 9,
                    addr: 0x1_0010,
                    old: 0,
                    new: 1,
                    retired_at: 120,
                },
            ),
            (
                25,
                Event::NetSend {
                    src: Endpoint::core(0),
                    dst: Endpoint::arbiter(0),
                    kind: "CommitReq",
                    bytes: 264,
                },
            ),
            (
                26,
                Event::NetDeliver {
                    src: Endpoint::arbiter(0),
                    dst: Endpoint::garbiter(),
                    kind: "CommitReq",
                },
            ),
            (
                27,
                Event::CommitDeny {
                    core: 4,
                    seq: 2,
                    xray: None,
                },
            ),
        ]
    }

    fn encode(events: &[(u64, Event)], block_events: usize) -> Vec<u8> {
        let mut w = BtfWriter::new(Vec::new())
            .unwrap()
            .with_block_events(block_events);
        for (cycle, ev) in events {
            w.push(*cycle, ev).unwrap();
        }
        w.finish().unwrap()
    }

    fn decode_all(bytes: &[u8]) -> Vec<(u64, Event)> {
        let mut r = BtfReader::new(bytes).unwrap();
        let mut out = Vec::new();
        while let Some(block) = r.next_block().unwrap() {
            out.extend(block);
        }
        out
    }

    #[test]
    fn round_trips_every_event_kind_across_blocks() {
        let events = sample_events();
        // Block size 4 → several full blocks plus a partial tail.
        let bytes = encode(&events, 4);
        let back = decode_all(&bytes);
        assert_eq!(back, events);
        // Every kind appears in the sample set.
        let kinds: std::collections::HashSet<u8> =
            events.iter().map(|(_, e)| e.kind_id()).collect();
        assert_eq!(kinds.len(), Event::KIND_COUNT);
    }

    #[test]
    fn header_stamps_schema_version() {
        let bytes = encode(&sample_events(), 4096);
        assert!(is_btf(&bytes));
        let r = BtfReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.version(), crate::SCHEMA_VERSION);
        let old = BtfWriter::with_version(Vec::new(), crate::MIN_SCHEMA_VERSION)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(
            BtfReader::new(old.as_slice()).unwrap().version(),
            crate::MIN_SCHEMA_VERSION
        );
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = BtfWriter::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(decode_all(&bytes), Vec::new());
        let idx = IndexedBtf::new(Cursor::new(bytes)).unwrap();
        assert!(idx.index().is_empty());
    }

    #[test]
    fn nonmonotone_cycles_survive_delta_coding() {
        let events: Vec<(u64, Event)> = [100u64, 5, u64::MAX, 0, 77]
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                (
                    t,
                    Event::ChunkStart {
                        core: i as u32,
                        seq: i as u64,
                    },
                )
            })
            .collect();
        let bytes = encode(&events, 2);
        assert_eq!(decode_all(&bytes), events);
    }

    #[test]
    fn indexed_reader_matches_sequential_and_meta_is_sound() {
        let events = sample_events();
        let bytes = encode(&events, 4);
        let sequential = decode_all(&bytes);
        let mut idx = IndexedBtf::new(Cursor::new(bytes)).unwrap();
        assert_eq!(idx.version(), crate::SCHEMA_VERSION);
        let metas: Vec<BlockMeta> = idx.index().to_vec();
        assert_eq!(
            metas.iter().map(|m| m.count as usize).sum::<usize>(),
            events.len()
        );
        let mut concat = Vec::new();
        for (i, meta) in metas.iter().enumerate() {
            let block = idx.read_block(i).unwrap();
            assert_eq!(block.len(), meta.count as usize);
            for (cycle, ev) in &block {
                // The meta is a sound over-approximation of its block.
                assert!(meta.min_cycle <= *cycle && *cycle <= meta.max_cycle);
                assert!(meta.may_contain_kind(ev.kind_id()));
                if let Some(core) = ev.core_id() {
                    assert!(meta.may_contain_core(core));
                }
                if let Some(addr) = ev.line_addr() {
                    assert!(meta.may_contain_addr(addr));
                }
            }
            concat.extend(block);
        }
        assert_eq!(concat, sequential);
    }

    #[test]
    fn blocks_decode_independently_of_order() {
        // String-carrying events in every block: if the string table leaked
        // across blocks, decoding block 1 before block 0 would fail or
        // mis-resolve.
        let events: Vec<(u64, Event)> = (0..8)
            .map(|i| {
                (
                    i,
                    Event::NetSend {
                        src: Endpoint::core(i as u32),
                        dst: Endpoint::dir(0),
                        kind: if i % 2 == 0 {
                            "ReadShared"
                        } else {
                            "Writeback"
                        },
                        bytes: 64,
                    },
                )
            })
            .collect();
        let bytes = encode(&events, 3); // blocks: 3 + 3 + 2
        let mut idx = IndexedBtf::new(Cursor::new(bytes)).unwrap();
        assert_eq!(idx.index().len(), 3);
        // Read the *last* block first.
        let last = idx.read_block(2).unwrap();
        assert_eq!(last, events[6..].to_vec());
        let first = idx.read_block(0).unwrap();
        assert_eq!(first, events[..3].to_vec());
    }

    #[test]
    fn core_mask_saturates_at_bit_63() {
        let events = vec![(1, Event::ChunkStart { core: 100, seq: 0 })];
        let bytes = encode(&events, 4096);
        let idx = IndexedBtf::new(Cursor::new(bytes)).unwrap();
        let meta = idx.index()[0];
        assert!(meta.may_contain_core(100));
        assert!(meta.may_contain_core(63));
        assert!(!meta.may_contain_core(5));
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        // Wrong magic.
        assert!(matches!(
            BtfReader::new(&b"NOPE\x05\x00\x00\x00rest"[..]),
            Err(BtfError::BadMagic)
        ));
        // Unsupported versions, both sides of the window.
        for bad in [crate::MIN_SCHEMA_VERSION - 1, crate::SCHEMA_VERSION + 1] {
            let mut bytes = MAGIC.to_vec();
            bytes.extend_from_slice(&(bad as u32).to_le_bytes());
            assert!(matches!(
                BtfReader::new(bytes.as_slice()),
                Err(BtfError::UnsupportedSchema(v)) if v == bad
            ));
        }
        // Header-only stream: truncated (no index footer).
        let mut header = MAGIC.to_vec();
        header.extend_from_slice(&(crate::SCHEMA_VERSION as u32).to_le_bytes());
        let mut r = BtfReader::new(header.as_slice()).unwrap();
        assert!(matches!(r.next_block(), Err(BtfError::Truncated(_))));
        // Cut mid-block: truncated.
        let full = encode(&sample_events(), 4096);
        let cut = &full[..full.len() / 2];
        let mut r = BtfReader::new(cut).unwrap();
        let mut err = None;
        loop {
            match r.next_block() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(BtfError::Truncated(_))), "{err:?}");
        // IndexedBtf rejects a clipped trailer.
        assert!(IndexedBtf::new(Cursor::new(cut.to_vec())).is_err());
        // Unknown block tag.
        let mut evil = header.clone();
        evil.push(0xCC);
        let mut r = BtfReader::new(evil.as_slice()).unwrap();
        assert!(matches!(r.next_block(), Err(BtfError::UnknownTag(0xCC))));
    }

    #[test]
    fn tracer_sink_matches_direct_writer() {
        let events = sample_events();
        let mut sink = BtfTracer::new();
        for (cycle, ev) in &events {
            sink.record(*cycle, ev);
        }
        assert_eq!(sink.events(), events.len() as u64);
        let bytes = sink.finish_bytes();
        assert_eq!(decode_all(&bytes), events);
    }

    #[test]
    fn jsonl_round_trip_is_byte_identical() {
        let mut jsonl = crate::JsonlTracer::new();
        for (cycle, ev) in sample_events() {
            jsonl.record(cycle, &ev);
        }
        let text = jsonl.contents().to_string();
        let btf = jsonl_to_btf(&text).unwrap();
        assert!(btf.len() < text.len(), "binary should be smaller");
        let back = btf_to_jsonl(&btf).unwrap();
        assert_eq!(back, text);
    }

    #[test]
    fn jsonl_converter_rejects_bad_input() {
        assert!(jsonl_to_btf("").is_err());
        assert!(jsonl_to_btf("{\"not\":\"a header\"}").is_err());
        assert!(
            jsonl_to_btf("{\"schema\":\"bulksc-trace\",\"version\":99}").is_err(),
            "future versions must be refused"
        );
        let bad_line = format!("{}\nnot json\n", crate::jsonl_header());
        assert!(jsonl_to_btf(&bad_line).unwrap_err().contains("line 2"));
        let bad_ev = format!(
            "{}\n{{\"t\":1,\"ev\":\"martian\"}}\n",
            crate::jsonl_header()
        );
        assert!(jsonl_to_btf(&bad_ev).unwrap_err().contains("martian"));
    }

    #[test]
    fn carries_v3_version_through_round_trip() {
        let text = format!(
            "{{\"schema\":\"bulksc-trace\",\"version\":{}}}\n{{\"t\":7,\"ev\":\"chunk_start\",\"core\":0,\"seq\":0}}\n",
            crate::MIN_SCHEMA_VERSION
        );
        let btf = jsonl_to_btf(&text).unwrap();
        assert_eq!(
            BtfReader::new(btf.as_slice()).unwrap().version(),
            crate::MIN_SCHEMA_VERSION
        );
        assert_eq!(btf_to_jsonl(&btf).unwrap(), text);
    }

    #[test]
    fn event_from_json_inverts_jsonl_rendering() {
        for (cycle, ev) in sample_events() {
            let line = ev.jsonl(cycle);
            let obj = Json::parse(&line).unwrap();
            let (t, back) = event_from_json(&obj).unwrap();
            assert_eq!((t, back), (cycle, ev), "through {line}");
        }
    }

    #[test]
    fn intern_returns_stable_pointers() {
        assert_eq!(intern("wsig"), "wsig");
        let a = intern("some-novel-site");
        let b = intern("some-novel-site");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn varints_round_trip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // An 11-byte varint is rejected, not wrapped.
        let overlong = [0xffu8; 11];
        assert!(get_varint(&overlong, &mut 0).is_err());
    }
}
