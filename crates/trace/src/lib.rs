//! Observability for the BulkSC reproduction: cycle-stamped structured
//! events, pluggable sinks, interval metrics, and hand-rolled JSON.
//!
//! The simulator's end-of-run aggregates (`SimReport`) answer *what*
//! happened; this crate answers *when* and *why*: every interesting step of
//! the chunk lifecycle — chunk start, commit permission request / grant /
//! deny, commit, squash (with cause), W-signature expansion in the
//! directory, cache and directory displacements, Private Buffer supplies —
//! plus raw network send/deliver hops, is an [`Event`] a component can emit
//! through a [`TraceHandle`].
//!
//! # Zero cost when off
//!
//! Tracing must never perturb the simulation it observes, and an untraced
//! run must not pay for the instrumentation. Two layers guarantee that:
//!
//! * [`TraceHandle`] is the *handle* components hold. With no sinks
//!   attached (the default), [`TraceHandle::emit`] is one inlined
//!   `Vec::is_empty` check and the event-constructing closure is never
//!   called — no allocation, no formatting, no dynamic dispatch.
//! * [`NopTracer`] is the do-nothing [`Tracer`] implementation; its
//!   `record` is an inlined empty body. Attaching it (or nothing at all)
//!   leaves simulated cycle counts bit-identical to an untraced build.
//!
//! Events never feed back into simulation state, so any sink combination
//! observes the same execution: traced and untraced runs retire the same
//! instructions in the same cycles.
//!
//! # Sinks
//!
//! * [`RingTracer`] — bounded last-K buffer, dumped with
//!   `System::debug_state()` when a run gets stuck;
//! * [`JsonlTracer`] — one JSON object per event, byte-deterministic for
//!   same-seed runs;
//! * [`ChromeTracer`] — Chrome trace-event JSON loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! # Thread confinement
//!
//! A [`TraceHandle`] shares its sinks through `Rc<RefCell<...>>`, which
//! makes it deliberately `!Send`: a handle — and therefore the `System`
//! holding it — is confined to the thread that built it. That is the
//! type-level guarantee the host-parallel sweep engine
//! (`bulksc_bench::pool`) leans on: each worker constructs its own
//! `System` + `TraceHandle` + sinks, the compiler rejects any attempt to
//! smuggle a handle across the scope boundary, and there is no locking on
//! the per-event hot path. Only the *rendered* results (strings,
//! [`Json`] values, reports) cross threads — those are plain data and
//! `Send`.
//!
//! ```compile_fail
//! // A TraceHandle cannot move to another thread (Rc<RefCell<...>> sinks).
//! let handle = bulksc_trace::TraceHandle::off();
//! std::thread::spawn(move || drop(handle));
//! ```
//!
//! # Example
//!
//! ```
//! use bulksc_trace::{Event, JsonlTracer, RingTracer, TraceHandle};
//!
//! let ring = RingTracer::shared(64);
//! let jsonl = JsonlTracer::shared();
//! let mut trace = TraceHandle::off();
//! assert!(!trace.enabled());
//! trace.attach(ring.clone());
//! trace.attach(jsonl.clone());
//!
//! trace.emit(17, || Event::ChunkStart { core: 0, seq: 0 });
//! assert_eq!(ring.borrow().seen(), 1);
//! // Line 1 is the schema header; events follow, one object per line.
//! let text = jsonl.borrow().contents().to_string();
//! assert!(text.starts_with("{\"schema\":\"bulksc-trace\""));
//! assert!(text.lines().nth(1).unwrap().starts_with("{\"t\":17"));
//! ```

use std::cell::RefCell;
use std::rc::Rc;

pub mod btf;
pub mod event;
pub mod json;
pub mod sampler;
pub mod sinks;

pub use btf::{BlockMeta, BtfError, BtfReader, BtfTracer, BtfWriter, IndexedBtf};
pub use event::{ConflictAttr, Endpoint, EndpointKind, Event, SquashCause, XRAY_WITNESS_CAP};
pub use json::Json;
pub use sampler::{GaugeSnapshot, IntervalSample, IntervalSeries};
pub use sinks::{ChromeTracer, JsonlTracer, RingTracer};

/// Version of every on-disk artifact schema this workspace emits: the
/// JSONL event stream header, the sampler series header, and the
/// `results/*.json` RunLog. Bump it when an event's fields, an event
/// name, or an artifact's layout changes incompatibly; `bulksc-analyze`
/// refuses artifacts whose version it does not understand.
///
/// Version history: 3 introduced value events; 4 added the monotonic
/// `wall_ns` field to interval-sampler rows and the sweep-metrics
/// artifacts (`*.metrics.jsonl`); 5 added the optional xray conflict
/// attribution fields (`agg_core`/`agg_seq`/`site`/`witness`) to `squash`
/// and `commit_deny` events and the per-cause squash fields to heartbeat
/// snapshots.
pub const SCHEMA_VERSION: u64 = 5;

/// Oldest artifact schema version current tooling still reads. Version-5
/// readers accept version-3 and version-4 artifacts (the v4/v5 additions
/// are new fields, which loaders treat as optional), so committed
/// baselines survive the bump; anything older is refused.
pub const MIN_SCHEMA_VERSION: u64 = 3;

/// True if tooling built at [`SCHEMA_VERSION`] can read an artifact
/// stamped `version` (shared by every loader so the acceptance window
/// cannot drift between them).
pub fn schema_supported(version: u64) -> bool {
    (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version)
}

/// The first line of every JSONL event stream:
/// `{"schema":"bulksc-trace","version":N}`.
pub fn jsonl_header() -> String {
    Json::obj([
        ("schema", "bulksc-trace".into()),
        ("version", SCHEMA_VERSION.into()),
    ])
    .to_string()
}

/// A consumer of cycle-stamped events.
///
/// Implementations must not observe or influence simulation state; they
/// only receive immutable event descriptions.
pub trait Tracer {
    /// Record one event at `cycle`.
    fn record(&mut self, cycle: u64, event: &Event);

    /// If this sink buffers a recent-event tail, render it (used by
    /// `System::debug_state` for stuck-run dumps).
    fn ring_dump(&self) -> Option<String> {
        None
    }
}

/// The default tracer: does nothing, costs nothing.
///
/// Exists so APIs can demand "some tracer" and callers can opt out; the
/// usual way to run untraced, though, is a sink-less [`TraceHandle`],
/// which skips even the dynamic dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NopTracer;

impl Tracer for NopTracer {
    #[inline(always)]
    fn record(&mut self, _cycle: u64, _event: &Event) {}
}

/// The handle simulator components hold and emit through.
///
/// Cloning is cheap and shares the underlying sinks: the `System` keeps
/// one handle and hands clones to every node, directory, arbiter, and the
/// fabric, so one attached sink sees the globally-ordered event stream.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sinks: Vec<Rc<RefCell<dyn Tracer>>>,
}

impl TraceHandle {
    /// A handle with no sinks: tracing off, zero cost.
    pub fn off() -> TraceHandle {
        TraceHandle::default()
    }

    /// Attach a sink. All subsequent events (from every clone of this
    /// handle made *after* the attach) reach it.
    pub fn attach<T: Tracer + 'static>(&mut self, sink: Rc<RefCell<T>>) {
        self.sinks.push(sink);
    }

    /// Is at least one sink attached?
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Emit an event. `make` runs only if a sink is attached, so hot paths
    /// pay nothing for the event construction when tracing is off.
    #[inline]
    pub fn emit(&self, cycle: u64, make: impl FnOnce() -> Event) {
        if self.sinks.is_empty() {
            return;
        }
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::TraceEmit);
        let event = make();
        for sink in &self.sinks {
            sink.borrow_mut().record(cycle, &event);
        }
    }

    /// The first attached sink's recent-event dump, if any sink keeps one.
    pub fn ring_dump(&self) -> Option<String> {
        self.sinks.iter().find_map(|s| s.borrow().ring_dump())
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceHandle({} sinks)", self.sinks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_builds_events() {
        let trace = TraceHandle::off();
        assert!(!trace.enabled());
        trace.emit(1, || panic!("event constructed while tracing off"));
        assert!(trace.ring_dump().is_none());
    }

    #[test]
    fn clones_share_sinks() {
        let ring = RingTracer::shared(8);
        let mut trace = TraceHandle::off();
        trace.attach(ring.clone());
        let clone = trace.clone();
        trace.emit(1, || Event::ChunkStart { core: 0, seq: 0 });
        clone.emit(2, || Event::ChunkStart { core: 1, seq: 0 });
        assert_eq!(ring.borrow().seen(), 2);
        assert!(trace.ring_dump().unwrap().contains("chunk_start"));
    }

    #[test]
    fn multiple_sinks_see_every_event() {
        let ring = RingTracer::shared(8);
        let jsonl = JsonlTracer::shared();
        let mut trace = TraceHandle::off();
        trace.attach(ring.clone());
        trace.attach(jsonl.clone());
        assert!(trace.enabled());
        trace.emit(5, || Event::CommitGrant { core: 2, seq: 3 });
        assert_eq!(ring.borrow().seen(), 1);
        assert_eq!(jsonl.borrow().lines(), 1);
    }

    #[test]
    fn rendered_outputs_are_send_even_though_handles_are_not() {
        // The pool-based sweep engine moves finished results between
        // threads; events and JSON values must stay plain data. (The
        // matching negative — TraceHandle is !Send — is the compile_fail
        // doctest in the crate docs.)
        fn assert_send<T: Send>() {}
        assert_send::<Event>();
        assert_send::<Json>();
        assert_send::<String>();
    }

    #[test]
    fn nop_tracer_is_attachable_and_silent() {
        let nop = Rc::new(RefCell::new(NopTracer));
        let mut trace = TraceHandle::off();
        trace.attach(nop);
        assert!(trace.enabled());
        trace.emit(1, || Event::CommitDeny {
            core: 0,
            seq: 0,
            xray: None,
        });
        assert!(trace.ring_dump().is_none());
    }
}
