//! The three concrete tracer sinks: ring buffer, JSONL writer, and Chrome
//! trace-event exporter.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::Path;
use std::rc::Rc;

use crate::event::Event;
use crate::{Json, Tracer};

/// A bounded last-K ring buffer of events.
///
/// Cheap enough to leave attached on long runs; its [`RingTracer::dump`]
/// is appended to `System::debug_state()` so a stuck simulation shows the
/// last things that happened, not just the final component states.
#[derive(Debug)]
pub struct RingTracer {
    capacity: usize,
    /// Total events seen (including ones the ring has already dropped).
    seen: u64,
    buf: VecDeque<(u64, Event)>,
}

impl RingTracer {
    /// A ring keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> RingTracer {
        RingTracer {
            capacity: capacity.max(1),
            seen: 0,
            buf: VecDeque::new(),
        }
    }

    /// A shareable ring, ready for [`crate::TraceHandle::attach`].
    pub fn shared(capacity: usize) -> Rc<RefCell<RingTracer>> {
        Rc::new(RefCell::new(RingTracer::new(capacity)))
    }

    /// Total events recorded, including those no longer buffered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The buffered `(cycle, event)` pairs, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, Event)> {
        self.buf.iter()
    }

    /// Human-readable dump of the buffered tail, one event per line.
    pub fn dump(&self) -> String {
        let mut out = format!(
            "trace ring: last {} of {} events\n",
            self.buf.len(),
            self.seen
        );
        for (cycle, ev) in &self.buf {
            out.push_str(&format!("  [{cycle:>8}] {ev}\n"));
        }
        out
    }
}

impl Tracer for RingTracer {
    fn record(&mut self, cycle: u64, event: &Event) {
        self.seen += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((cycle, event.clone()));
    }

    fn ring_dump(&self) -> Option<String> {
        Some(self.dump())
    }
}

/// A JSONL (one JSON object per line) event writer.
///
/// Accumulates in memory — the event volume of a simulation run is modest
/// and buffering keeps recording deterministic and infallible — and is
/// written out with [`JsonlTracer::write_to`] (or read back with
/// [`JsonlTracer::contents`]) after the run. The first line is always the
/// schema header ([`crate::jsonl_header`]); [`JsonlTracer::lines`] counts
/// events only.
#[derive(Debug)]
pub struct JsonlTracer {
    out: String,
    lines: u64,
}

impl Default for JsonlTracer {
    fn default() -> JsonlTracer {
        JsonlTracer::new()
    }
}

impl JsonlTracer {
    pub fn new() -> JsonlTracer {
        let mut out = crate::jsonl_header();
        out.push('\n');
        JsonlTracer { out, lines: 0 }
    }

    /// A shareable writer, ready for [`crate::TraceHandle::attach`].
    pub fn shared() -> Rc<RefCell<JsonlTracer>> {
        Rc::new(RefCell::new(JsonlTracer::new()))
    }

    /// The JSONL text so far (each line a complete JSON object).
    pub fn contents(&self) -> &str {
        &self.out
    }

    /// Number of lines (= events) recorded.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Write the stream to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, &self.out)
    }
}

impl Tracer for JsonlTracer {
    fn record(&mut self, cycle: u64, event: &Event) {
        self.out.push_str(&event.jsonl(cycle));
        self.out.push('\n');
        self.lines += 1;
    }
}

/// A Chrome trace-event exporter (the JSON Array Format understood by
/// `chrome://tracing` and <https://ui.perfetto.dev>).
///
/// Every simulator event becomes an *instant* event (`"ph":"i"`): `ts` is
/// the simulated cycle, `pid` the component kind, and `tid` the component
/// index, so Perfetto lays cores, directories, and arbiters out as
/// separate tracks. Chunk commits additionally emit a per-core counter
/// (`"ph":"C"`) of committed chunks, giving a cumulative-progress plot.
#[derive(Debug, Default)]
pub struct ChromeTracer {
    entries: Vec<String>,
    commits_per_core: Vec<u64>,
}

impl ChromeTracer {
    pub fn new() -> ChromeTracer {
        ChromeTracer::default()
    }

    /// A shareable exporter, ready for [`crate::TraceHandle::attach`].
    pub fn shared() -> Rc<RefCell<ChromeTracer>> {
        Rc::new(RefCell::new(ChromeTracer::new()))
    }

    /// The complete trace file contents (`{"traceEvents":[...]}`).
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }

    /// Write the trace file to `path` (open it in Perfetto).
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.finish())
    }

    /// Number of trace entries emitted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Tracer for ChromeTracer {
    fn record(&mut self, cycle: u64, event: &Event) {
        let actor = event.actor();
        let mut args = Json::Obj(Vec::new());
        for (k, v) in event.fields() {
            args.push(k, v);
        }
        let entry = Json::obj([
            ("name", event.name().into()),
            ("cat", format!("{:?}", actor.kind).to_lowercase().into()),
            ("ph", "i".into()),
            ("s", "t".into()),
            ("ts", cycle.into()),
            ("pid", Json::U64(0)),
            ("tid", actor.to_string().into()),
            ("args", args),
        ]);
        self.entries.push(entry.to_string());

        if let Event::ChunkCommit { core, .. } = *event {
            let idx = core as usize;
            if self.commits_per_core.len() <= idx {
                self.commits_per_core.resize(idx + 1, 0);
            }
            self.commits_per_core[idx] += 1;
            let counter = Json::obj([
                ("name", format!("chunks_committed core{core}").into()),
                ("ph", "C".into()),
                ("ts", cycle.into()),
                ("pid", Json::U64(0)),
                (
                    "args",
                    Json::obj([("count", self.commits_per_core[idx].into())]),
                ),
            ]);
            self.entries.push(counter.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SquashCause;
    use crate::json::is_valid;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::ChunkStart { core: 0, seq: 0 },
            Event::ChunkCommit {
                core: 0,
                seq: 0,
                read_lines: 5,
                write_lines: 1,
                priv_lines: 2,
            },
            Event::Squash {
                core: 1,
                seq: 4,
                cause: SquashCause::TrueSharing,
                squashed_instrs: 9,
                xray: None,
            },
        ]
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut ring = RingTracer::new(2);
        for (i, ev) in sample_events().iter().enumerate() {
            ring.record(i as u64, ev);
        }
        assert_eq!(ring.seen(), 3);
        let cycles: Vec<u64> = ring.events().map(|(c, _)| *c).collect();
        assert_eq!(cycles, vec![1, 2]);
        let dump = ring.dump();
        assert!(dump.contains("last 2 of 3 events"));
        assert!(dump.contains("squash"));
        assert!(ring.ring_dump().is_some());
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let mut w = JsonlTracer::new();
        for (i, ev) in sample_events().iter().enumerate() {
            w.record(i as u64 * 10, ev);
        }
        assert_eq!(w.lines(), 3, "lines() counts events, not the header");
        let lines: Vec<&str> = w.contents().lines().collect();
        assert_eq!(lines.len(), 4, "schema header + one line per event");
        assert!(lines[0].contains("\"schema\":\"bulksc-trace\""));
        assert!(lines[0].contains(&format!("\"version\":{}", crate::SCHEMA_VERSION)));
        for line in lines {
            assert!(is_valid(line), "bad line: {line}");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_counters() {
        let mut c = ChromeTracer::new();
        for (i, ev) in sample_events().iter().enumerate() {
            c.record(i as u64, ev);
        }
        // 3 instants + 1 counter for the commit.
        assert_eq!(c.len(), 4);
        let out = c.finish();
        assert!(is_valid(&out), "bad chrome trace: {out}");
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("\"tid\":\"core1\""));
    }
}
