//! Interval metrics: periodic snapshots of system occupancy.
//!
//! End-of-run aggregates (`SimReport`) say *what* happened; the interval
//! series says *when*. Every `every` cycles the system records per-core
//! retirement deltas (IPC), the arbiters' pending-W-signature count, the
//! fabric queue depth, and interconnect traffic deltas. The simulator may
//! fast-forward across idle stretches, so sampling is boundary-based: a
//! sample is taken at the first opportunity at or after each boundary and
//! deltas are normalized by the cycles actually elapsed.

use crate::Json;

/// One snapshot of the system at (approximately) an interval boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct IntervalSample {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Instructions retired per core since the previous sample.
    pub retired_delta: Vec<u64>,
    /// Per-core IPC over the elapsed window.
    pub ipc: Vec<f64>,
    /// W signatures currently held by the arbiters (committing chunks).
    pub pending_w: u64,
    /// Commit requests queued at the arbiters (R-sig waits + pre-arb
    /// queue), not yet granted or denied.
    pub arb_queue: u64,
    /// Cores currently in squash back-off (outstanding squashes being
    /// re-executed).
    pub squashing_cores: u64,
    /// Messages in flight in the fabric.
    pub fabric_depth: u64,
    /// Interconnect bytes moved since the previous sample.
    pub traffic_bytes_delta: u64,
    /// Interconnect messages sent since the previous sample.
    pub messages_delta: u64,
    /// Monotonic host nanoseconds (`bulksc_prof::clock::now_ns()`) at
    /// which the sample was recorded. Host-side only — it aligns samples
    /// from concurrent runs on a shared wall clock and never feeds back
    /// into simulated time. Schema v4.
    pub wall_ns: u64,
}

impl IntervalSample {
    /// JSON encoding (one element of the series array).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycle", self.cycle.into()),
            (
                "retired_delta",
                Json::Arr(self.retired_delta.iter().map(|&r| r.into()).collect()),
            ),
            (
                "ipc",
                Json::Arr(self.ipc.iter().map(|&x| x.into()).collect()),
            ),
            ("pending_w", self.pending_w.into()),
            ("arb_queue", self.arb_queue.into()),
            ("squashing_cores", self.squashing_cores.into()),
            ("fabric_depth", self.fabric_depth.into()),
            ("traffic_bytes_delta", self.traffic_bytes_delta.into()),
            ("messages_delta", self.messages_delta.into()),
            ("wall_ns", self.wall_ns.into()),
        ])
    }
}

/// The instantaneous gauges and cumulative totals handed to
/// [`IntervalSeries::record`] (grouped so the call site stays readable as
/// gauges are added).
#[derive(Clone, Copy, Debug, Default)]
pub struct GaugeSnapshot {
    /// W signatures currently held by the arbiters.
    pub pending_w: u64,
    /// Commit requests queued at the arbiters.
    pub arb_queue: u64,
    /// Cores currently in squash back-off.
    pub squashing_cores: u64,
    /// Messages in flight in the fabric.
    pub fabric_depth: u64,
    /// Cumulative interconnect bytes (the series takes deltas).
    pub traffic_bytes: u64,
    /// Cumulative interconnect messages (the series takes deltas).
    pub messages: u64,
}

/// The accumulating time series. The owner (the simulator's `System`)
/// checks [`IntervalSeries::due`] as time advances and calls
/// [`IntervalSeries::record`] with current totals; the series turns totals
/// into deltas.
#[derive(Clone, Debug)]
pub struct IntervalSeries {
    every: u64,
    next_at: u64,
    last_cycle: u64,
    last_retired: Vec<u64>,
    last_bytes: u64,
    last_messages: u64,
    samples: Vec<IntervalSample>,
}

impl IntervalSeries {
    /// A series sampling every `every` cycles (clamped to ≥ 1).
    pub fn new(every: u64) -> IntervalSeries {
        let every = every.max(1);
        IntervalSeries {
            every,
            next_at: every,
            last_cycle: 0,
            last_retired: Vec::new(),
            last_bytes: 0,
            last_messages: 0,
            samples: Vec::new(),
        }
    }

    /// The configured sampling interval.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Is a sample due at `now`? (True whenever `now` has reached or
    /// passed the next boundary — time jumps cost at most one sample.)
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_at
    }

    /// Re-baseline the series at `now` with the current cumulative totals.
    ///
    /// A series created mid-run would otherwise compute its first sample's
    /// deltas against cycle 0 and zero counters, averaging IPC and traffic
    /// over the entire unsampled prefix. Priming makes the first sample
    /// cover only the window since `now`; the next boundary is the first
    /// multiple of `every` strictly after `now`.
    pub fn prime(&mut self, now: u64, retired: &[u64], g: GaugeSnapshot) {
        self.last_cycle = now;
        self.last_retired = retired.to_vec();
        self.last_bytes = g.traffic_bytes;
        self.last_messages = g.messages;
        self.next_at = (now / self.every + 1) * self.every;
    }

    /// Record a snapshot from *cumulative* totals; deltas are computed
    /// against the previous sample.
    pub fn record(&mut self, now: u64, retired: &[u64], g: GaugeSnapshot) {
        let elapsed = now.saturating_sub(self.last_cycle).max(1);
        if self.last_retired.len() < retired.len() {
            self.last_retired.resize(retired.len(), 0);
        }
        let retired_delta: Vec<u64> = retired
            .iter()
            .zip(self.last_retired.iter())
            .map(|(&cur, &prev)| cur.saturating_sub(prev))
            .collect();
        let ipc: Vec<f64> = retired_delta
            .iter()
            .map(|&d| d as f64 / elapsed as f64)
            .collect();
        self.samples.push(IntervalSample {
            cycle: now,
            retired_delta,
            ipc,
            pending_w: g.pending_w,
            arb_queue: g.arb_queue,
            squashing_cores: g.squashing_cores,
            fabric_depth: g.fabric_depth,
            traffic_bytes_delta: g.traffic_bytes.saturating_sub(self.last_bytes),
            messages_delta: g.messages.saturating_sub(self.last_messages),
            wall_ns: bulksc_prof::clock::now_ns(),
        });
        self.last_cycle = now;
        self.last_retired = retired.to_vec();
        self.last_bytes = g.traffic_bytes;
        self.last_messages = g.messages;
        // Next boundary strictly after `now` (a fast-forward may have
        // jumped several boundaries; they collapse into this one sample).
        self.next_at = (now / self.every + 1) * self.every;
    }

    /// The samples taken so far.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// JSON encoding of the whole series.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", "bulksc-samples".into()),
            ("version", crate::SCHEMA_VERSION.into()),
            ("every", self.every.into()),
            (
                "samples",
                Json::Arr(self.samples.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_and_boundaries() {
        let mut s = IntervalSeries::new(100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.record(
            100,
            &[50, 10],
            GaugeSnapshot {
                pending_w: 2,
                arb_queue: 1,
                squashing_cores: 0,
                fabric_depth: 3,
                traffic_bytes: 1000,
                messages: 7,
            },
        );
        assert!(!s.due(100));
        assert!(s.due(200));
        s.record(
            205,
            &[150, 10],
            GaugeSnapshot {
                pending_w: 0,
                arb_queue: 0,
                squashing_cores: 2,
                fabric_depth: 0,
                traffic_bytes: 1600,
                messages: 9,
            },
        );
        let samples = s.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].retired_delta, vec![50, 10]);
        assert_eq!(samples[1].retired_delta, vec![100, 0]);
        assert!((samples[1].ipc[0] - 100.0 / 105.0).abs() < 1e-12);
        assert_eq!(samples[1].traffic_bytes_delta, 600);
        assert_eq!(samples[1].messages_delta, 2);
        assert_eq!(samples[0].arb_queue, 1);
        assert_eq!(samples[1].squashing_cores, 2);
        // Boundary realigned after the late sample.
        assert!(!s.due(299));
        assert!(s.due(300));
    }

    #[test]
    fn fast_forward_collapses_boundaries() {
        let mut s = IntervalSeries::new(10);
        // Time jumps from 0 to 75: one sample, next boundary at 80.
        assert!(s.due(75));
        s.record(75, &[75], GaugeSnapshot::default());
        assert_eq!(s.samples().len(), 1);
        assert!(!s.due(79));
        assert!(s.due(80));
    }

    #[test]
    fn priming_rebases_first_sample() {
        let mut s = IntervalSeries::new(100);
        s.prime(
            950,
            &[9000],
            GaugeSnapshot {
                traffic_bytes: 5000,
                messages: 50,
                ..Default::default()
            },
        );
        // Next boundary is strictly after the priming point.
        assert!(!s.due(999));
        assert!(s.due(1000));
        s.record(
            1000,
            &[9010],
            GaugeSnapshot {
                traffic_bytes: 5100,
                messages: 52,
                ..Default::default()
            },
        );
        let sample = &s.samples()[0];
        assert_eq!(sample.retired_delta, vec![10]);
        assert!((sample.ipc[0] - 10.0 / 50.0).abs() < 1e-12);
        assert_eq!(sample.traffic_bytes_delta, 100);
        assert_eq!(sample.messages_delta, 2);
    }

    #[test]
    fn json_shape() {
        let mut s = IntervalSeries::new(10);
        s.record(
            10,
            &[5],
            GaugeSnapshot {
                pending_w: 1,
                arb_queue: 4,
                squashing_cores: 2,
                fabric_depth: 2,
                traffic_bytes: 64,
                messages: 1,
            },
        );
        let j = s.to_json().to_string();
        assert!(crate::json::is_valid(&j));
        assert!(j.contains("\"every\":10"), "interval present in header");
        assert!(j.contains(&format!("\"version\":{}", crate::SCHEMA_VERSION)));
        assert!(j.contains("\"pending_w\":1"));
        assert!(j.contains("\"wall_ns\":"), "v4 wall-clock field present");
        assert!(j.contains("\"arb_queue\":4"));
        assert!(j.contains("\"squashing_cores\":2"));
    }
}
