//! Bulk signatures: the address-set hardware of the Bulk architecture.
//!
//! This crate implements the signature mechanism described in Section 2.2 of
//! *BulkSC: Bulk Enforcement of Sequential Consistency* (Ceze, Tuck,
//! Montesinos, Torrellas — ISCA 2007), which in turn comes from *Bulk
//! Disambiguation of Speculative Threads in Multiprocessors* (ISCA 2006).
//!
//! A signature is a fixed-size (by default 2 Kbit) Bloom-filter encoding of a
//! set of cache-line addresses. Addresses are accumulated by hashing
//! ("permuting") them into several banks of bits. Because the encoding is a
//! superset encoding, membership tests may produce false positives but never
//! false negatives — the property every BulkSC correctness argument leans on.
//!
//! The primitive operations of Figure 2(b) of the paper are all provided:
//!
//! | paper op | here |
//! |---|---|
//! | `∩` (intersection) | [`Signature::intersect`], [`Signature::intersects`] |
//! | `∪` (union) | [`Signature::union_with`] |
//! | `= ∅` (emptiness) | [`Signature::is_empty`] |
//! | `∈` (membership) | [`Signature::contains`] |
//! | `δ` (decode into cache sets) | [`Signature::decode_sets`] |
//!
//! Two additional pieces support the BulkSC evaluation:
//!
//! * [`ExactSet`] — an alias-free "magic" signature used by the paper's
//!   `BSCexact` configuration and by the statistics machinery to attribute
//!   costs to aliasing.
//! * [`TrackedSig`] — a signature that maintains *both* encodings so a
//!   simulation can disambiguate with one while measuring against the other.
//!
//! This crate also hosts the basic addressing vocabulary ([`Addr`],
//! [`LineAddr`]) shared by every other crate in the workspace, because it
//! sits at the bottom of the dependency graph.
//!
//! # Example
//!
//! ```
//! use bulksc_sig::{LineAddr, Signature, SignatureConfig};
//!
//! let cfg = SignatureConfig::default();
//! let mut w = Signature::new(&cfg);
//! w.insert(LineAddr(0x40));
//! w.insert(LineAddr(0x41));
//!
//! let mut r = Signature::new(&cfg);
//! r.insert(LineAddr(0x41));
//!
//! // A committing chunk with write signature `w` collides with a running
//! // chunk whose read signature is `r`:
//! assert!(w.intersects(&r));
//! assert!(w.contains(LineAddr(0x40)));
//! assert!(!w.is_empty());
//! ```

pub mod addr;
pub mod bloom;
pub mod compress;
pub mod exact;
pub mod tracked;

pub use addr::{Addr, LineAddr, LineData, LINE_BYTES, LINE_WORDS};
pub use bloom::{Signature, SignatureConfig};
pub use compress::{decode, encode, wire_bytes, CodecError};
pub use exact::ExactSet;
pub use tracked::{SigMode, TrackedSig};
