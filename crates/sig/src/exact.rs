//! Alias-free address sets.
//!
//! The paper evaluates a configuration called `BSCexact`: BulkSC with a
//! "magic" signature that never aliases. [`ExactSet`] provides that
//! signature, and is also kept as a shadow next to every Bloom signature so
//! the statistics machinery (Tables 3 and 4) can attribute squashes,
//! invalidations, and directory lookups to aliasing.

use std::collections::BTreeSet;

use crate::addr::LineAddr;

/// An exact (alias-free) set of cache-line addresses with the same operation
/// vocabulary as [`Signature`](crate::Signature).
///
/// Backed by a `BTreeSet` so iteration order is deterministic, which keeps
/// whole-simulation runs reproducible.
///
/// # Example
///
/// ```
/// use bulksc_sig::{ExactSet, LineAddr};
/// let mut w = ExactSet::new();
/// w.insert(LineAddr(3));
/// assert!(w.contains(LineAddr(3)));
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExactSet {
    lines: BTreeSet<LineAddr>,
}

impl ExactSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a line address.
    pub fn insert(&mut self, line: LineAddr) {
        self.lines.insert(line);
    }

    /// Remove a line address (used by the dynamically-private "add back to
    /// W" path, which moves lines between sets).
    pub fn remove(&mut self, line: LineAddr) -> bool {
        self.lines.remove(&line)
    }

    /// Exact membership test.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.lines.contains(&line)
    }

    /// True if no addresses have been inserted.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Number of distinct lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Remove every address.
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &ExactSet) {
        self.lines.extend(other.lines.iter().copied());
    }

    /// True if the two sets share any line.
    pub fn intersects(&self, other: &ExactSet) -> bool {
        // Iterate the smaller set.
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.lines.iter().any(|l| big.lines.contains(l))
    }

    /// The shared lines of the two sets.
    pub fn intersect(&self, other: &ExactSet) -> ExactSet {
        ExactSet {
            lines: self.lines.intersection(&other.lines).copied().collect(),
        }
    }

    /// Iterate the lines in address order.
    pub fn iter(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.lines.iter().copied()
    }

    /// The exact δ operation: set indices occupied in a cache with
    /// `num_sets` sets.
    pub fn decode_sets(&self, num_sets: u32) -> Vec<u32> {
        let mut sets: BTreeSet<u32> = BTreeSet::new();
        for l in &self.lines {
            sets.insert((l.0 % num_sets as u64) as u32);
        }
        sets.into_iter().collect()
    }
}

impl FromIterator<LineAddr> for ExactSet {
    fn from_iter<T: IntoIterator<Item = LineAddr>>(iter: T) -> Self {
        ExactSet {
            lines: iter.into_iter().collect(),
        }
    }
}

impl Extend<LineAddr> for ExactSet {
    fn extend<T: IntoIterator<Item = LineAddr>>(&mut self, iter: T) {
        self.lines.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = ExactSet::new();
        assert!(s.is_empty());
        s.insert(LineAddr(9));
        assert!(s.contains(LineAddr(9)));
        assert!(!s.contains(LineAddr(10)));
        assert!(s.remove(LineAddr(9)));
        assert!(!s.remove(LineAddr(9)));
        assert!(s.is_empty());
    }

    #[test]
    fn no_false_positives_ever() {
        let s: ExactSet = (0..1000).map(|i| LineAddr(2 * i)).collect();
        assert!((0..1000).all(|i| !s.contains(LineAddr(2 * i + 1))));
    }

    #[test]
    fn union_and_intersection() {
        let mut a: ExactSet = [LineAddr(1), LineAddr(2)].into_iter().collect();
        let b: ExactSet = [LineAddr(2), LineAddr(3)].into_iter().collect();
        assert!(a.intersects(&b));
        assert_eq!(a.intersect(&b).len(), 1);
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        let c: ExactSet = [LineAddr(99)].into_iter().collect();
        assert!(!a.intersects(&c));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn decode_sets_is_exact() {
        let s: ExactSet = [LineAddr(0), LineAddr(64), LineAddr(65)]
            .into_iter()
            .collect();
        assert_eq!(s.decode_sets(64), vec![0, 1]);
    }

    #[test]
    fn iteration_is_sorted() {
        let s: ExactSet = [LineAddr(5), LineAddr(1), LineAddr(3)]
            .into_iter()
            .collect();
        let v: Vec<u64> = s.iter().map(|l| l.0).collect();
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn extend_and_clear() {
        let mut s = ExactSet::new();
        s.extend((0..10).map(LineAddr));
        assert_eq!(s.len(), 10);
        s.clear();
        assert!(s.is_empty());
    }
}
