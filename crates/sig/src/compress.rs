//! Wire-size model for signature transfers.
//!
//! Section 2.2 of the paper: signatures are ≈2 Kbit in the processor but are
//! compressed to ≈350 bits (≈44 bytes) when communicated. We model the
//! compressed size as a short header plus a per-occupied-bank-0-bit cost,
//! which reproduces the paper's ≈44 B for a typical ~30-line chunk write set
//! and degrades gracefully toward the raw size for saturated signatures.

use crate::bloom::Signature;

/// Header bytes of a compressed signature message payload.
const HEADER_BYTES: u32 = 8;

/// Bits needed per occupied bank-0 position in the run-length-style encoding
/// (position delta plus the corresponding permuted-bank residues).
const BITS_PER_ENTRY: u32 = 9;

/// The number of bytes a signature occupies when transferred on the
/// interconnect.
///
/// An empty signature still costs a header (the message must say it is
/// empty). The size is capped at the raw signature size — compression never
/// loses to sending the raw bits.
///
/// # Example
///
/// ```
/// use bulksc_sig::{wire_bytes, LineAddr, Signature, SignatureConfig};
/// let cfg = SignatureConfig::default();
/// let sig = Signature::from_lines(&cfg, (0..30u64).map(|i| LineAddr(i * 97)));
/// let b = wire_bytes(&sig);
/// // ≈350 bits ≈ 44 bytes for a typical chunk write set (paper §2.2).
/// assert!(b >= 30 && b <= 60, "got {b}");
/// ```
pub fn wire_bytes(sig: &Signature) -> u32 {
    let raw_bytes = sig.config().total_bits() / 8;
    if sig.is_empty() {
        return HEADER_BYTES;
    }
    let entries = sig.bank0_popcount();
    let compressed = HEADER_BYTES + (entries * BITS_PER_ENTRY).div_ceil(8);
    compressed.min(raw_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;
    use crate::bloom::SignatureConfig;

    #[test]
    fn empty_signature_is_header_only() {
        let sig = Signature::new(&SignatureConfig::default());
        assert_eq!(wire_bytes(&sig), HEADER_BYTES);
    }

    #[test]
    fn typical_write_set_is_about_44_bytes() {
        let cfg = SignatureConfig::default();
        let sig = Signature::from_lines(&cfg, (0..30u64).map(|i| LineAddr(i * 97)));
        let b = wire_bytes(&sig);
        assert!((30..=60).contains(&b), "expected ≈44 B, got {b}");
    }

    #[test]
    fn saturated_signature_caps_at_raw_size() {
        let cfg = SignatureConfig::default();
        let mut sig = Signature::new(&cfg);
        for i in 0..100_000u64 {
            sig.insert(LineAddr(i));
        }
        assert_eq!(wire_bytes(&sig), cfg.total_bits() / 8);
    }

    #[test]
    fn size_is_monotone_in_set_size() {
        let cfg = SignatureConfig::default();
        let small = Signature::from_lines(&cfg, (0..5u64).map(|i| LineAddr(i * 101)));
        let large = Signature::from_lines(&cfg, (0..200u64).map(|i| LineAddr(i * 101)));
        assert!(wire_bytes(&small) <= wire_bytes(&large));
    }
}
