//! Wire-size model and wire codec for signature transfers.
//!
//! Section 2.2 of the paper: signatures are ≈2 Kbit in the processor but are
//! compressed to ≈350 bits (≈44 bytes) when communicated. We model the
//! compressed size as a short header plus a per-occupied-bank-0-bit cost,
//! which reproduces the paper's ≈44 B for a typical ~30-line chunk write set
//! and degrades gracefully toward the raw size for saturated signatures.
//!
//! Two layers live here:
//!
//! * [`wire_bytes`] — the analytical *cost model* the traffic accounting
//!   charges per signature hop (hardware-faithful ≈9 bits/entry).
//! * [`encode`] / [`decode`] — a concrete, lossless *codec* for the same
//!   signatures: an 8-byte header plus either a sparse list of set bit
//!   positions or the raw words, whichever is smaller. Geometry travels in
//!   the header, the permutation wiring does not (both endpoints share it,
//!   exactly as the hardware shares its permute networks), so [`decode`]
//!   needs the receiver's [`SignatureConfig`] and rejects a mismatched one.

use crate::bloom::{Signature, SignatureConfig};

/// Header bytes of a compressed signature message payload.
const HEADER_BYTES: u32 = 8;

/// Bits needed per occupied bank-0 position in the run-length-style encoding
/// (position delta plus the corresponding permuted-bank residues).
const BITS_PER_ENTRY: u32 = 9;

/// Codec header mode: payload is `count` little-endian `u16` bit positions.
const MODE_SPARSE: u8 = 0;

/// Codec header mode: payload is the raw backing words, little-endian.
const MODE_RAW: u8 = 1;

/// The number of bytes a signature occupies when transferred on the
/// interconnect.
///
/// An empty signature still costs a header (the message must say it is
/// empty). The size is capped at the raw signature size — compression never
/// loses to sending the raw bits.
///
/// # Example
///
/// ```
/// use bulksc_sig::{wire_bytes, LineAddr, Signature, SignatureConfig};
/// let cfg = SignatureConfig::default();
/// let sig = Signature::from_lines(&cfg, (0..30u64).map(|i| LineAddr(i * 97)));
/// let b = wire_bytes(&sig);
/// // ≈350 bits ≈ 44 bytes for a typical chunk write set (paper §2.2).
/// assert!(b >= 30 && b <= 60, "got {b}");
/// ```
pub fn wire_bytes(sig: &Signature) -> u32 {
    let raw_bytes = sig.config().total_bits() / 8;
    if sig.is_empty() {
        return HEADER_BYTES;
    }
    let entries = sig.bank0_popcount();
    let compressed = HEADER_BYTES + (entries * BITS_PER_ENTRY).div_ceil(8);
    compressed.min(raw_bytes)
}

/// Why a byte string failed to [`decode`] into a signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the header, or a payload shorter than the header
    /// promised.
    Truncated,
    /// The mode byte names no known payload layout.
    UnknownMode(u8),
    /// The header's geometry (banks / bank size / emptiness rule) does not
    /// match the receiver's configuration — distinct wire formats in
    /// hardware.
    GeometryMismatch,
    /// A sparse entry points past the end of the bit array, or bytes trail
    /// the declared payload.
    InvalidPayload,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "signature message truncated"),
            CodecError::UnknownMode(m) => write!(f, "unknown signature wire mode {m}"),
            CodecError::GeometryMismatch => write!(f, "signature geometry mismatch"),
            CodecError::InvalidPayload => write!(f, "invalid signature payload"),
        }
    }
}

/// Serialize a signature for the interconnect, losslessly.
///
/// Layout: `[mode, banks, bank_index_bits, flags, count: u32 LE]` (8 bytes,
/// the same header the [`wire_bytes`] model charges), then either `count`
/// little-endian `u16` set-bit positions ([`MODE_SPARSE`]) or the raw
/// backing words ([`MODE_RAW`]) — whichever is smaller, so a sparse chunk
/// write set costs a few dozen bytes while a saturated signature never
/// pays more than header + raw bits.
///
/// # Example
///
/// ```
/// use bulksc_sig::{decode, encode, LineAddr, Signature, SignatureConfig};
/// let cfg = SignatureConfig::default();
/// let sig = Signature::from_lines(&cfg, (0..30u64).map(|i| LineAddr(i * 97)));
/// let wire = encode(&sig);
/// assert_eq!(decode(&cfg, &wire).unwrap(), sig);
/// ```
pub fn encode(sig: &Signature) -> Vec<u8> {
    let cfg = sig.config();
    let positions: Vec<u16> = sig
        .words()
        .iter()
        .enumerate()
        .flat_map(|(w, &word)| {
            (0..64u32)
                .filter(move |b| word >> b & 1 != 0)
                .map(move |b| (w as u32 * 64 + b) as u16)
        })
        .collect();
    let raw_len = (cfg.total_bits() / 8) as usize;
    let sparse = positions.len() * 2 <= raw_len;
    let (mode, count) = if sparse {
        (MODE_SPARSE, positions.len() as u32)
    } else {
        (MODE_RAW, raw_len as u32)
    };
    let mut out = Vec::with_capacity(
        HEADER_BYTES as usize + if sparse { positions.len() * 2 } else { raw_len },
    );
    out.push(mode);
    out.push(cfg.banks as u8);
    out.push(cfg.bank_index_bits as u8);
    out.push(cfg.banked_empty as u8);
    out.extend_from_slice(&count.to_le_bytes());
    if sparse {
        for p in positions {
            out.extend_from_slice(&p.to_le_bytes());
        }
    } else {
        for word in sig.words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }
    out
}

/// Rebuild a signature from its [`encode`]d wire form.
///
/// `cfg` is the receiver's geometry (including the shared permutation
/// seed); the header must agree with it. Round-trips exactly:
/// `decode(&cfg, &encode(&sig)) == Ok(sig)` for any `sig` built with `cfg`.
pub fn decode(cfg: &SignatureConfig, bytes: &[u8]) -> Result<Signature, CodecError> {
    let header: &[u8; 8] = bytes
        .get(..8)
        .and_then(|h| h.try_into().ok())
        .ok_or(CodecError::Truncated)?;
    let (mode, banks, bank_index_bits, flags) = (header[0], header[1], header[2], header[3]);
    let count = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if u32::from(banks) != cfg.banks
        || u32::from(bank_index_bits) != cfg.bank_index_bits
        || flags != cfg.banked_empty as u8
    {
        return Err(CodecError::GeometryMismatch);
    }
    let payload = &bytes[8..];
    let mut sig = Signature::new(cfg);
    match mode {
        MODE_SPARSE => {
            if payload.len() != count * 2 {
                return Err(if payload.len() < count * 2 {
                    CodecError::Truncated
                } else {
                    CodecError::InvalidPayload
                });
            }
            for entry in payload.chunks_exact(2) {
                let pos = u16::from_le_bytes(entry.try_into().unwrap()) as u32;
                if pos >= cfg.total_bits() {
                    return Err(CodecError::InvalidPayload);
                }
                sig.set_bit(pos as usize);
            }
        }
        MODE_RAW => {
            if count != (cfg.total_bits() / 8) as usize {
                return Err(CodecError::InvalidPayload);
            }
            if payload.len() != count {
                return Err(if payload.len() < count {
                    CodecError::Truncated
                } else {
                    CodecError::InvalidPayload
                });
            }
            for (i, chunk) in payload.chunks_exact(8).enumerate() {
                let word = u64::from_le_bytes(chunk.try_into().unwrap());
                for b in 0..64u32 {
                    if word >> b & 1 != 0 {
                        sig.set_bit(i * 64 + b as usize);
                    }
                }
            }
        }
        other => return Err(CodecError::UnknownMode(other)),
    }
    Ok(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;
    use crate::bloom::SignatureConfig;

    #[test]
    fn empty_signature_is_header_only() {
        let sig = Signature::new(&SignatureConfig::default());
        assert_eq!(wire_bytes(&sig), HEADER_BYTES);
    }

    #[test]
    fn typical_write_set_is_about_44_bytes() {
        let cfg = SignatureConfig::default();
        let sig = Signature::from_lines(&cfg, (0..30u64).map(|i| LineAddr(i * 97)));
        let b = wire_bytes(&sig);
        assert!((30..=60).contains(&b), "expected ≈44 B, got {b}");
    }

    #[test]
    fn saturated_signature_caps_at_raw_size() {
        let cfg = SignatureConfig::default();
        let mut sig = Signature::new(&cfg);
        for i in 0..100_000u64 {
            sig.insert(LineAddr(i));
        }
        assert_eq!(wire_bytes(&sig), cfg.total_bits() / 8);
    }

    #[test]
    fn size_is_monotone_in_set_size() {
        let cfg = SignatureConfig::default();
        let small = Signature::from_lines(&cfg, (0..5u64).map(|i| LineAddr(i * 101)));
        let large = Signature::from_lines(&cfg, (0..200u64).map(|i| LineAddr(i * 101)));
        assert!(wire_bytes(&small) <= wire_bytes(&large));
    }

    #[test]
    fn empty_signature_round_trips_as_header_only() {
        let cfg = SignatureConfig::default();
        let sig = Signature::new(&cfg);
        let wire = encode(&sig);
        assert_eq!(wire.len(), HEADER_BYTES as usize);
        assert_eq!(decode(&cfg, &wire).unwrap(), sig);
    }

    #[test]
    fn sparse_write_set_round_trips_compactly() {
        let cfg = SignatureConfig::default();
        let sig = Signature::from_lines(&cfg, (0..30u64).map(|i| LineAddr(i * 97)));
        let wire = encode(&sig);
        let back = decode(&cfg, &wire).unwrap();
        assert_eq!(back, sig);
        for i in 0..30u64 {
            assert!(back.contains(LineAddr(i * 97)));
        }
        // A ~30-line write set must beat shipping the raw 2 Kbit.
        assert!(
            wire.len() < (cfg.total_bits() / 8) as usize,
            "sparse form ({}) should undercut raw form",
            wire.len()
        );
    }

    #[test]
    fn saturated_signature_round_trips_in_raw_mode() {
        let cfg = SignatureConfig::default();
        let mut sig = Signature::new(&cfg);
        for i in 0..100_000u64 {
            sig.insert(LineAddr(i.wrapping_mul(6_364_136_223_846_793_005) >> 24));
        }
        assert!(sig.popcount() > 2_000, "should be nearly saturated");
        let wire = encode(&sig);
        // Raw mode: never more than header + raw bits, even fully dense.
        assert_eq!(wire.len(), (HEADER_BYTES + cfg.total_bits() / 8) as usize);
        assert_eq!(decode(&cfg, &wire).unwrap(), sig);
    }

    #[test]
    fn round_trip_across_geometries() {
        for bits in [512u32, 1024, 2048, 4096] {
            let cfg = SignatureConfig::with_total_bits(bits);
            let sig = Signature::from_lines(&cfg, (0..50u64).map(|i| LineAddr(i * 131 + 7)));
            assert_eq!(decode(&cfg, &encode(&sig)).unwrap(), sig, "{bits} bits");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let cfg = SignatureConfig::default();
        assert_eq!(decode(&cfg, &[]), Err(CodecError::Truncated));
        assert_eq!(decode(&cfg, &[0u8; 5]), Err(CodecError::Truncated));

        let sig = Signature::from_lines(&cfg, [LineAddr(1), LineAddr(2)]);
        let good = encode(&sig);

        let mut bad_mode = good.clone();
        bad_mode[0] = 7;
        assert_eq!(decode(&cfg, &bad_mode), Err(CodecError::UnknownMode(7)));

        let truncated = &good[..good.len() - 1];
        assert_eq!(decode(&cfg, truncated), Err(CodecError::Truncated));

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode(&cfg, &trailing), Err(CodecError::InvalidPayload));

        let mut out_of_range = good;
        let n = out_of_range.len();
        // Overwrite the last sparse entry with a position past the array.
        out_of_range[n - 2..].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(decode(&cfg, &out_of_range), Err(CodecError::InvalidPayload));
    }

    #[test]
    fn decode_rejects_mismatched_geometry() {
        let small = SignatureConfig::with_total_bits(1024);
        let sig = Signature::from_lines(&small, [LineAddr(9)]);
        let wire = encode(&sig);
        assert_eq!(
            decode(&SignatureConfig::default(), &wire),
            Err(CodecError::GeometryMismatch)
        );
        let unbanked = SignatureConfig {
            banked_empty: false,
            ..SignatureConfig::with_total_bits(1024)
        };
        assert_eq!(decode(&unbanked, &wire), Err(CodecError::GeometryMismatch));
    }
}
