//! The Bloom-filter signature of the Bulk architecture (Figure 2 of the
//! paper).
//!
//! A [`Signature`] is a bit array divided into `banks` banks of
//! `2^bank_index_bits` bits each. Inserting a line address sets one bit in
//! every bank; the bit within bank `i` is selected by a per-bank "permute"
//! hash of the address. Bank 0 is special: it is indexed by the *low bits of
//! the line address directly* (no permutation). In the hardware this is what
//! allows the decode (δ) operation to recover the set of cache sets that may
//! hold lines of the signature without traversing the cache — the cache set
//! index is a slice of those same low address bits.
//!
//! Banks `1..` use hardware-style *bit permutations* of the line address
//! (Figure 2(a) of the paper): the low address bits are rearranged by a
//! fixed per-bank wire permutation and the low slice of the result indexes
//! the bank. This matters for fidelity — bit permutations alias heavily on
//! strided access patterns (every address in a stride shares the bits the
//! permutation happens to select), which is precisely the behaviour behind
//! the paper's radix results. A thoroughly-mixing hash would hide it.

use crate::addr::LineAddr;

/// Address bits that participate in the permutation (2^26 lines = 2 GiB of
/// address space at 32 B lines; higher bits are XOR-folded in).
const PERMUTE_BITS: u32 = 26;

/// Geometry of a Bloom signature.
///
/// The default matches the paper: 2 Kbit total (`4` banks × `512` bits).
///
/// # Example
///
/// ```
/// use bulksc_sig::SignatureConfig;
/// let cfg = SignatureConfig::default();
/// assert_eq!(cfg.total_bits(), 2048);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignatureConfig {
    /// Number of Bloom banks (hash functions).
    pub banks: u32,
    /// log2 of the number of bits per bank.
    pub bank_index_bits: u32,
    /// Seed for the per-bank permutation hashes. Two signatures can only be
    /// intersected if they share a seed (and the rest of the geometry).
    pub permute_seed: u64,
    /// Emptiness test granularity. `true` (the default) uses the per-bank
    /// rule — an encoded member needs one bit in every bank, so an
    /// intersection counts only if every bank overlaps. This matches the
    /// false-positive rates the paper reports (≈1–2% aliasing squashes for
    /// most applications). `false` is the cruder any-surviving-bit rule,
    /// kept for the signature-design ablation.
    pub banked_empty: bool,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig {
            banks: 4,
            bank_index_bits: 9, // 512 bits per bank; 4 * 512 = 2048 = 2 Kbit
            permute_seed: 0x9e37_79b9_7f4a_7c15,
            banked_empty: true,
        }
    }
}

impl SignatureConfig {
    /// A configuration with the given total size in bits, keeping 4 banks.
    ///
    /// # Panics
    ///
    /// Panics if `total_bits` is not `4 * 2^k` for some `k >= 6`.
    pub fn with_total_bits(total_bits: u32) -> Self {
        assert!(
            total_bits.is_multiple_of(4) && (total_bits / 4).is_power_of_two() && total_bits >= 256,
            "total_bits must be 4 * 2^k with k >= 6, got {total_bits}"
        );
        SignatureConfig {
            banks: 4,
            bank_index_bits: (total_bits / 4).trailing_zeros(),
            ..SignatureConfig::default()
        }
    }

    /// Bits in one bank.
    pub fn bank_bits(&self) -> u32 {
        1 << self.bank_index_bits
    }

    /// Total bits in the signature.
    pub fn total_bits(&self) -> u32 {
        self.banks * self.bank_bits()
    }

    /// Words of backing storage required.
    fn words(&self) -> usize {
        (self.total_bits() as usize).div_ceil(64)
    }
}

/// Build the fixed bit permutation of bank `bank`: a pseudorandom
/// rearrangement (Fisher–Yates over a xorshift stream) of the low
/// [`PERMUTE_BITS`] bit positions. This models the hardware permute network
/// of Figure 2(a): cheap, deterministic, and — deliberately — weak against
/// strided address patterns.
fn make_permutation(seed: u64, bank: u32) -> [u8; PERMUTE_BITS as usize] {
    let mut positions: [u8; PERMUTE_BITS as usize] = [0; PERMUTE_BITS as usize];
    for (i, p) in positions.iter_mut().enumerate() {
        *p = i as u8;
    }
    let mut state = seed ^ (bank as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for i in (1..PERMUTE_BITS as usize).rev() {
        // xorshift64
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        positions.swap(i, j);
    }
    positions
}

/// A Bloom-filter signature over cache-line addresses.
///
/// See the [crate docs](crate) and [`SignatureConfig`] for the encoding.
/// All binary operations require both operands to share the same
/// configuration; mismatches panic (they would be distinct wire formats in
/// hardware).
#[derive(Clone, PartialEq, Eq)]
pub struct Signature {
    banks: u32,
    bank_index_bits: u32,
    permute_seed: u64,
    banked_empty: bool,
    /// Per-bank wire permutations for banks `1..banks`, shared between
    /// clones (they are a pure function of the geometry).
    perms: std::sync::Arc<Vec<[u8; PERMUTE_BITS as usize]>>,
    bits: Vec<u64>,
}

impl Signature {
    /// An empty signature with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has banks smaller than 64 bits.
    pub fn new(cfg: &SignatureConfig) -> Self {
        assert!(cfg.bank_index_bits >= 6, "banks must be at least 64 bits");
        let perms = (1..cfg.banks)
            .map(|bank| make_permutation(cfg.permute_seed, bank))
            .collect();
        Signature {
            banks: cfg.banks,
            bank_index_bits: cfg.bank_index_bits,
            permute_seed: cfg.permute_seed,
            banked_empty: cfg.banked_empty,
            perms: std::sync::Arc::new(perms),
            bits: vec![0; cfg.words()],
        }
    }

    /// A signature containing exactly the given addresses.
    pub fn from_lines<I: IntoIterator<Item = LineAddr>>(cfg: &SignatureConfig, lines: I) -> Self {
        let mut s = Signature::new(cfg);
        for l in lines {
            s.insert(l);
        }
        s
    }

    /// The geometry this signature was built with.
    pub fn config(&self) -> SignatureConfig {
        SignatureConfig {
            banks: self.banks,
            bank_index_bits: self.bank_index_bits,
            permute_seed: self.permute_seed,
            banked_empty: self.banked_empty,
        }
    }

    fn assert_compatible(&self, other: &Signature) {
        assert!(
            self.banks == other.banks
                && self.bank_index_bits == other.bank_index_bits
                && self.permute_seed == other.permute_seed,
            "signature geometry mismatch"
        );
    }

    /// The bit selected in `bank` by `line` (index within that bank).
    fn bank_index(&self, bank: u32, line: LineAddr) -> u32 {
        let mask = (1u32 << self.bank_index_bits) - 1;
        if bank == 0 {
            // Bank 0 is indexed by the low line-address bits directly so
            // that δ (decode into cache sets) is possible.
            (line.0 as u32) & mask
        } else {
            // XOR-fold the address into the permuted window, then apply
            // the per-bank wire permutation and take the low slice.
            let folded = line.0 ^ (line.0 >> PERMUTE_BITS);
            let perm = &self.perms[(bank - 1) as usize];
            let mut out = 0u64;
            for (src, &dst) in perm.iter().enumerate() {
                out |= ((folded >> src) & 1) << dst;
            }
            (out as u32) & mask
        }
    }

    fn bit_position(&self, bank: u32, line: LineAddr) -> usize {
        let within = self.bank_index(bank, line);
        (bank << self.bank_index_bits | within) as usize
    }

    /// Set a bit by absolute position (used by the wire codec to rebuild
    /// a received signature).
    pub(crate) fn set_bit(&mut self, pos: usize) {
        self.bits[pos / 64] |= 1u64 << (pos % 64);
    }

    /// The raw backing words (used by the wire codec).
    pub(crate) fn words(&self) -> &[u64] {
        &self.bits
    }

    fn get_bit(&self, pos: usize) -> bool {
        self.bits[pos / 64] & (1u64 << (pos % 64)) != 0
    }

    /// Accumulate a line address into the signature.
    pub fn insert(&mut self, line: LineAddr) {
        for bank in 0..self.banks {
            let pos = self.bit_position(bank, line);
            self.set_bit(pos);
        }
    }

    /// Membership test (`∈` of Figure 2(b)). May return false positives,
    /// never false negatives.
    pub fn contains(&self, line: LineAddr) -> bool {
        (0..self.banks).all(|bank| self.get_bit(self.bit_position(bank, line)))
    }

    /// Emptiness test (`= ∅` of Figure 2(b)).
    ///
    /// With the default (paper-faithful) unbanked rule, a signature is
    /// non-empty as soon as any bit is set. With `banked_empty`, the
    /// encoded set is empty as soon as any single bank is all zeroes
    /// (every inserted address sets one bit per bank), which makes
    /// intersections far more precise.
    pub fn is_empty(&self) -> bool {
        if self.banked_empty {
            self.bank_words().any(|bank| bank.iter().all(|&w| w == 0))
        } else {
            self.bits.iter().all(|&w| w == 0)
        }
    }

    /// Iterate over the backing words of each bank.
    fn bank_words(&self) -> impl Iterator<Item = &[u64]> {
        let words_per_bank = (self.config().bank_bits() as usize) / 64;
        self.bits.chunks(words_per_bank)
    }

    /// Remove every address (reused when a chunk commits or squashes).
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// In-place union (`∪` of Figure 2(b)): bit-wise OR.
    pub fn union_with(&mut self, other: &Signature) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        self.assert_compatible(other);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Intersection (`∩` of Figure 2(b)): bit-wise AND, returning a new
    /// signature.
    pub fn intersect(&self, other: &Signature) -> Signature {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        self.assert_compatible(other);
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
        out
    }

    /// `!(self ∩ other).is_empty()`, without materializing the intersection.
    ///
    /// This is the bulk-disambiguation primitive: a committing chunk's W
    /// signature is tested against a running chunk's R and W signatures.
    /// The emptiness rule of [`Signature::is_empty`] applies: the default
    /// hardware declares a collision on any surviving bit.
    pub fn intersects(&self, other: &Signature) -> bool {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        self.assert_compatible(other);
        if self.banked_empty {
            self.bank_words()
                .zip(other.bank_words())
                .all(|(a, b)| a.iter().zip(b).any(|(x, y)| x & y != 0))
        } else {
            self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
        }
    }

    /// Decode (`δ` of Figure 2(b)): the cache-set indices that may contain
    /// lines encoded in this signature, for a cache with `num_sets` sets.
    ///
    /// Bank 0 is indexed by the low line-address bits, and a cache set index
    /// is `line % num_sets`, so every line in the signature has its bank-0
    /// bit at a position congruent to its set index. The decode is exact when
    /// `num_sets` divides the bank size and conservative otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is zero or not a power of two.
    pub fn decode_sets(&self, num_sets: u32) -> Vec<u32> {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        assert!(
            num_sets.is_power_of_two(),
            "num_sets must be a power of two"
        );
        let bank_bits = self.config().bank_bits();
        let mut out = vec![false; num_sets as usize];
        if num_sets >= bank_bits {
            // Coarser signature than cache: each set whose low bits match a
            // set bank-0 bit is a candidate.
            for idx in 0..bank_bits {
                if self.get_bit(idx as usize) {
                    let mut s = idx;
                    while s < num_sets {
                        out[s as usize] = true;
                        s += bank_bits;
                    }
                }
            }
        } else {
            for idx in 0..bank_bits {
                if self.get_bit(idx as usize) {
                    out[(idx % num_sets) as usize] = true;
                }
            }
        }
        out.iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect()
    }

    /// Number of set bits (used by the wire-size model and by tests).
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of set bits in bank 0 (a lower bound on distinct set indices
    /// touched; drives the compressed wire-size model).
    pub fn bank0_popcount(&self) -> u32 {
        let words = (self.config().bank_bits() as usize).div_ceil(64);
        self.bits[..words].iter().map(|w| w.count_ones()).sum()
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signature")
            .field("banks", &self.banks)
            .field("bank_bits", &(1u32 << self.bank_index_bits))
            .field("popcount", &self.popcount())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SignatureConfig {
        SignatureConfig::default()
    }

    #[test]
    fn default_geometry_is_2kbit() {
        assert_eq!(cfg().total_bits(), 2048);
        assert_eq!(cfg().bank_bits(), 512);
    }

    #[test]
    fn with_total_bits_builds_requested_size() {
        assert_eq!(SignatureConfig::with_total_bits(1024).total_bits(), 1024);
        assert_eq!(SignatureConfig::with_total_bits(4096).total_bits(), 4096);
    }

    #[test]
    #[should_panic(expected = "total_bits")]
    fn with_total_bits_rejects_odd_sizes() {
        SignatureConfig::with_total_bits(1000);
    }

    #[test]
    fn no_false_negatives() {
        let mut s = Signature::new(&cfg());
        for i in 0..200 {
            s.insert(LineAddr(i * 37));
        }
        for i in 0..200 {
            assert!(s.contains(LineAddr(i * 37)));
        }
    }

    #[test]
    fn empty_contains_nothing() {
        let s = Signature::new(&cfg());
        assert!(s.is_empty());
        assert!(!s.contains(LineAddr(42)));
    }

    #[test]
    fn clear_empties() {
        let mut s = Signature::new(&cfg());
        s.insert(LineAddr(1));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.popcount(), 0);
    }

    #[test]
    fn union_is_superset_of_both() {
        let mut a = Signature::from_lines(&cfg(), [LineAddr(1), LineAddr(2)]);
        let b = Signature::from_lines(&cfg(), [LineAddr(3)]);
        a.union_with(&b);
        for l in [1, 2, 3] {
            assert!(a.contains(LineAddr(l)));
        }
    }

    #[test]
    fn intersect_detects_shared_line() {
        let a = Signature::from_lines(&cfg(), [LineAddr(10), LineAddr(11)]);
        let b = Signature::from_lines(&cfg(), [LineAddr(11), LineAddr(12)]);
        assert!(a.intersects(&b));
        assert!(!a.intersect(&b).is_empty());
    }

    #[test]
    fn disjoint_small_sets_do_not_intersect_with_banked_rule() {
        // The banked emptiness rule is far more precise: a handful of
        // well-spread addresses should not alias.
        let banked = SignatureConfig {
            banked_empty: true,
            ..cfg()
        };
        let a = Signature::from_lines(&banked, (0..8).map(|i| LineAddr(i * 1009)));
        let b = Signature::from_lines(&banked, (0..8).map(|i| LineAddr(1_000_000 + i * 977)));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn unbanked_rule_is_conservative_superset_of_banked() {
        // Whenever the banked rule reports a collision, the unbanked
        // (default hardware) rule must as well.
        let banked_cfg = SignatureConfig {
            banked_empty: true,
            ..cfg()
        };
        for k in 0..20u64 {
            let lines_a: Vec<LineAddr> = (0..32).map(|i| LineAddr(i * 97 + k * 7)).collect();
            let lines_b: Vec<LineAddr> = (0..32).map(|i| LineAddr(i * 89 + k * 13 + 1)).collect();
            let (ab, bb) = (
                Signature::from_lines(&banked_cfg, lines_a.iter().copied()),
                Signature::from_lines(&banked_cfg, lines_b.iter().copied()),
            );
            let (au, bu) = (
                Signature::from_lines(&cfg(), lines_a.iter().copied()),
                Signature::from_lines(&cfg(), lines_b.iter().copied()),
            );
            if ab.intersects(&bb) {
                assert!(au.intersects(&bu), "unbanked must be conservative");
            }
        }
    }

    #[test]
    fn intersects_matches_intersect_emptiness() {
        let a = Signature::from_lines(&cfg(), (0..64).map(|i| LineAddr(i * 3)));
        let b = Signature::from_lines(&cfg(), (0..64).map(|i| LineAddr(i * 5)));
        assert_eq!(a.intersects(&b), !a.intersect(&b).is_empty());
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn mismatched_geometry_panics() {
        let a = Signature::new(&cfg());
        let b = Signature::new(&SignatureConfig::with_total_bits(1024));
        let _ = a.intersects(&b);
    }

    #[test]
    fn decode_sets_covers_inserted_lines() {
        // Cache with 64 sets: every inserted line's set index must appear.
        let lines: Vec<LineAddr> = (0..40).map(|i| LineAddr(i * 131)).collect();
        let s = Signature::from_lines(&cfg(), lines.clone());
        let sets = s.decode_sets(64);
        for l in lines {
            let set = (l.0 % 64) as u32;
            assert!(sets.contains(&set), "set {set} for line {l} missing");
        }
    }

    #[test]
    fn decode_sets_exact_when_sets_divide_bank() {
        // One line => bank-0 has one bit => decode to cache with as many sets
        // as bank bits yields exactly one set.
        let s = Signature::from_lines(&cfg(), [LineAddr(77)]);
        let sets = s.decode_sets(512);
        assert_eq!(sets, vec![77u32], "line 77 mod 512 sets");
    }

    #[test]
    fn decode_sets_with_more_sets_than_bank_bits() {
        let s = Signature::from_lines(&cfg(), [LineAddr(3)]);
        let sets = s.decode_sets(1024); // 1024 sets > 512 bank bits
                                        // Conservative: both aliases of bank-bit 3 are candidates.
        assert!(sets.contains(&3));
        assert!(sets.contains(&(3 + 512)));
    }

    #[test]
    fn decode_empty_is_empty() {
        let s = Signature::new(&cfg());
        assert!(s.decode_sets(64).is_empty());
    }

    #[test]
    fn aliasing_exists_at_scale() {
        // The superset encoding must alias once enough addresses are
        // inserted — this is what BSCexact removes. Insert many lines that
        // all share the bank-0 slot of a probe line (bank 0 is
        // direct-indexed by the low address bits), then probe lines with
        // that slot that were never inserted: the permuted banks saturate
        // and false positives appear.
        let bank_bits = cfg().bank_bits() as u64;
        let mut s = Signature::new(&cfg());
        for i in 1..=4096u64 {
            s.insert(LineAddr(i * bank_bits)); // all map to bank-0 index 0
        }
        let fp = (4097..8193u64)
            .filter(|i| s.contains(LineAddr(i * bank_bits)))
            .count();
        assert!(fp > 0, "expected false positives at this density");
    }

    #[test]
    fn popcount_grows_then_saturates() {
        let mut s = Signature::new(&cfg());
        s.insert(LineAddr(5));
        let one = s.popcount();
        assert!((1..=4).contains(&one));
        for i in 0..100_000u64 {
            // Pseudo-random lines: sequential lines would only exercise the
            // bit positions a stride reaches.
            s.insert(LineAddr(i.wrapping_mul(6_364_136_223_846_793_005) >> 24));
        }
        assert!(s.popcount() <= 2048);
        assert!(s.popcount() > 2000, "should be nearly saturated");
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Signature::new(&cfg());
        assert!(!format!("{s:?}").is_empty());
    }
}
