//! Addressing vocabulary shared by the whole workspace.
//!
//! The simulated machine uses 64-bit word-granular addresses. Caches,
//! directories, and signatures all operate on *cache-line* addresses
//! ([`LineAddr`]), which are word addresses shifted down by the line size.
//!
//! The line size is fixed at 32 bytes (4 words), matching Table 2 of the
//! BulkSC paper (32 B lines in both L1 and L2).

use std::fmt;

/// Bytes per cache line (Table 2 of the paper: 32 B).
pub const LINE_BYTES: u64 = 32;

/// 64-bit words per cache line.
pub const LINE_WORDS: u64 = LINE_BYTES / 8;

/// The value payload of one cache line, as carried by data responses on
/// the interconnect.
pub type LineData = [u64; LINE_WORDS as usize];

/// A word-granular memory address.
///
/// `Addr(n)` names the `n`-th 64-bit word of the simulated address space.
/// Word granularity (rather than byte) keeps the value store simple while
/// still letting distinct variables share a cache line, which is all the
/// false-sharing behaviour the paper's experiments require.
///
/// # Example
///
/// ```
/// use bulksc_sig::{Addr, LineAddr};
/// let a = Addr(7);
/// assert_eq!(a.line(), LineAddr(1)); // words 4..8 form line 1
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A cache-line-granular memory address.
///
/// This is the unit signatures, caches, and the directory operate on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl Addr {
    /// The cache line containing this word.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_WORDS)
    }

    /// Offset of this word within its cache line (`0..LINE_WORDS`).
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_WORDS
    }
}

impl LineAddr {
    /// The first word of this line.
    pub fn base_word(self) -> Addr {
        Addr(self.0 * LINE_WORDS)
    }

    /// Iterate over the words of this line.
    pub fn words(self) -> impl Iterator<Item = Addr> {
        let base = self.0 * LINE_WORDS;
        (base..base + LINE_WORDS).map(Addr)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_map_to_lines() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(3).line(), LineAddr(0));
        assert_eq!(Addr(4).line(), LineAddr(1));
        assert_eq!(Addr(4).line_offset(), 0);
        assert_eq!(Addr(7).line_offset(), 3);
    }

    #[test]
    fn line_words_roundtrip() {
        let line = LineAddr(9);
        let words: Vec<Addr> = line.words().collect();
        assert_eq!(words.len(), LINE_WORDS as usize);
        for w in words {
            assert_eq!(w.line(), line);
        }
        assert_eq!(line.base_word().line(), line);
    }

    #[test]
    fn conversions_and_display() {
        let l: LineAddr = Addr(12).into();
        assert_eq!(l, LineAddr(3));
        assert_eq!(format!("{}", Addr(255)), "0xff");
        assert_eq!(format!("{}", LineAddr(255)), "L0xff");
        assert_eq!(format!("{:?}", LineAddr(16)), "Line(0x10)");
    }
}
