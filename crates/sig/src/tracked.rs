//! Signatures that carry both a Bloom encoding and an exact shadow set.
//!
//! The simulator needs both at once: the configured encoding drives the
//! machine (disambiguation, arbitration, expansion), while the exact shadow
//! measures what an alias-free machine would have done — the difference is
//! exactly the aliasing cost the paper reports in Tables 3 and 4 and in the
//! `BSCexact` bars of Figures 9–11.

use crate::addr::LineAddr;
use crate::bloom::{Signature, SignatureConfig};
use crate::exact::ExactSet;

/// Which encoding the machine consults for disambiguation decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SigMode {
    /// Use the Bloom signature (real hardware; may alias).
    Bloom,
    /// Use the exact shadow set (the paper's "magic" alias-free signature,
    /// configuration `BSCexact`).
    Exact,
}

/// A signature maintaining both encodings simultaneously.
///
/// All mutation goes through [`TrackedSig::insert`] and
/// [`TrackedSig::clear`] so the two encodings can never drift apart; the
/// Bloom side is always a superset of the exact side.
///
/// # Example
///
/// ```
/// use bulksc_sig::{LineAddr, SigMode, SignatureConfig, TrackedSig};
/// let cfg = SignatureConfig::default();
/// let mut w = TrackedSig::new(&cfg, SigMode::Bloom);
/// w.insert(LineAddr(7));
/// assert!(w.contains(LineAddr(7)));
/// assert_eq!(w.exact().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TrackedSig {
    mode: SigMode,
    bloom: Signature,
    exact: ExactSet,
}

impl TrackedSig {
    /// An empty tracked signature.
    pub fn new(cfg: &SignatureConfig, mode: SigMode) -> Self {
        TrackedSig {
            mode,
            bloom: Signature::new(cfg),
            exact: ExactSet::new(),
        }
    }

    /// The encoding used for machine decisions.
    pub fn mode(&self) -> SigMode {
        self.mode
    }

    /// The Bloom encoding (what goes on the wire).
    pub fn bloom(&self) -> &Signature {
        &self.bloom
    }

    /// The exact shadow set (for statistics and `BSCexact`).
    pub fn exact(&self) -> &ExactSet {
        &self.exact
    }

    /// Accumulate an address into both encodings.
    pub fn insert(&mut self, line: LineAddr) {
        self.bloom.insert(line);
        self.exact.insert(line);
    }

    /// Membership as the machine sees it (mode-dependent).
    pub fn contains(&self, line: LineAddr) -> bool {
        match self.mode {
            SigMode::Bloom => self.bloom.contains(line),
            SigMode::Exact => self.exact.contains(line),
        }
    }

    /// Membership in the exact shadow (no aliasing).
    pub fn contains_exact(&self, line: LineAddr) -> bool {
        self.exact.contains(line)
    }

    /// Emptiness as the machine sees it.
    ///
    /// Note the Bloom signature is empty iff the exact set is, so this is
    /// mode-independent in practice; it exists for symmetry.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Number of distinct lines actually inserted.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Clear both encodings (chunk commit or squash).
    pub fn clear(&mut self) {
        self.bloom.clear();
        self.exact.clear();
    }

    /// In-place union of both encodings.
    pub fn union_with(&mut self, other: &TrackedSig) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        self.bloom.union_with(&other.bloom);
        self.exact.union_with(&other.exact);
    }

    /// Collision test as the machine sees it (mode-dependent). The caller's
    /// mode decides; the operand's encodings are consulted accordingly.
    pub fn intersects(&self, other: &TrackedSig) -> bool {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        match self.mode {
            SigMode::Bloom => self.bloom.intersects(&other.bloom),
            SigMode::Exact => self.exact.intersects(&other.exact),
        }
    }

    /// Collision test against the exact shadows only: "would an alias-free
    /// machine have collided?" Used to classify squashes as true or aliased.
    pub fn intersects_exact(&self, other: &TrackedSig) -> bool {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        self.exact.intersects(&other.exact)
    }

    /// The lowest-addressed lines both exact shadows share, capped at
    /// `cap`. These are the *witnesses* of a true-sharing conflict: the
    /// addresses through which a committing W-set actually collided with a
    /// victim chunk. An empty result with a Bloom collision means the
    /// collision was pure aliasing. Deterministic (the shadow iterates in
    /// address order); only the xray attribution path calls this.
    pub fn exact_witnesses(&self, other: &TrackedSig, cap: usize) -> Vec<LineAddr> {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        self.exact
            .intersect(&other.exact)
            .iter()
            .take(cap)
            .collect()
    }

    /// δ as the machine sees it: candidate set indices in a structure with
    /// `num_sets` sets.
    pub fn decode_sets(&self, num_sets: u32) -> Vec<u32> {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::SigOps);
        match self.mode {
            SigMode::Bloom => self.bloom.decode_sets(num_sets),
            SigMode::Exact => self.exact.decode_sets(num_sets),
        }
    }

    /// Bytes this signature occupies on the interconnect (see
    /// [`wire_bytes`](crate::compress::wire_bytes)).
    pub fn wire_bytes(&self) -> u32 {
        match self.mode {
            SigMode::Bloom => crate::compress::wire_bytes(&self.bloom),
            // A magic exact signature is modelled with the same wire cost as
            // the Bloom one so Figure 11's E bars isolate *aliasing*, not
            // encoding size.
            SigMode::Exact => crate::compress::wire_bytes(&self.bloom),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(mode: SigMode, lines: &[u64]) -> TrackedSig {
        let mut s = TrackedSig::new(&SignatureConfig::default(), mode);
        for &l in lines {
            s.insert(LineAddr(l));
        }
        s
    }

    #[test]
    fn both_encodings_agree_on_members() {
        let s = mk(SigMode::Bloom, &[1, 2, 3]);
        for l in [1, 2, 3] {
            assert!(s.contains(LineAddr(l)));
            assert!(s.contains_exact(LineAddr(l)));
            assert!(s.bloom().contains(LineAddr(l)));
        }
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn exact_mode_never_aliases() {
        let mut s = TrackedSig::new(&SignatureConfig::default(), SigMode::Exact);
        for i in 0..10_000 {
            s.insert(LineAddr(2 * i));
        }
        assert!((0..10_000).all(|i| !s.contains(LineAddr(2 * i + 1))));
    }

    #[test]
    fn bloom_mode_is_superset_of_exact() {
        let s = mk(SigMode::Bloom, &(0..500).map(|i| 3 * i).collect::<Vec<_>>());
        // Anything in exact must be in bloom.
        for l in s.exact().iter() {
            assert!(s.bloom().contains(l));
        }
    }

    #[test]
    fn intersects_respects_mode() {
        // Construct two exact-disjoint dense sets: random lines with bit 9
        // cleared vs. the same lines with bit 9 set. They are provably
        // exact-disjoint, share every bank-0 slot, and at this density the
        // permuted banks are near-saturated, so the Bloom encodings must
        // collide while the exact sets cannot.
        let base: Vec<u64> = (0..3000u64)
            .map(|i| (i.wrapping_mul(6_364_136_223_846_793_005) >> 24) & !512)
            .collect();
        let a_lines: Vec<u64> = base.clone();
        let b_lines: Vec<u64> = base.iter().map(|l| l | 512).collect();
        let a_bloom = mk(SigMode::Bloom, &a_lines);
        let b_bloom = mk(SigMode::Bloom, &b_lines);
        let a_exact = mk(SigMode::Exact, &a_lines);
        let b_exact = mk(SigMode::Exact, &b_lines);
        assert!(!a_exact.intersects(&b_exact));
        assert!(!a_bloom.intersects_exact(&b_bloom));
        // At this density the Bloom encodings must collide.
        assert!(a_bloom.intersects(&b_bloom));
    }

    #[test]
    fn exact_witnesses_are_sorted_and_capped() {
        let a = mk(SigMode::Bloom, &[9, 1, 5, 3]);
        let b = mk(SigMode::Bloom, &[5, 1, 9, 77]);
        let all: Vec<u64> = a.exact_witnesses(&b, 8).iter().map(|l| l.0).collect();
        assert_eq!(all, vec![1, 5, 9]);
        let capped: Vec<u64> = a.exact_witnesses(&b, 2).iter().map(|l| l.0).collect();
        assert_eq!(capped, vec![1, 5]);
        let none = mk(SigMode::Bloom, &[1000]);
        assert!(a.exact_witnesses(&none, 8).is_empty());
    }

    #[test]
    fn clear_resets_both() {
        let mut s = mk(SigMode::Bloom, &[1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert!(s.bloom().is_empty());
        assert!(s.exact().is_empty());
    }

    #[test]
    fn union_unions_both() {
        let mut a = mk(SigMode::Bloom, &[1]);
        let b = mk(SigMode::Bloom, &[2]);
        a.union_with(&b);
        assert!(a.contains(LineAddr(1)) && a.contains(LineAddr(2)));
        assert_eq!(a.exact().len(), 2);
    }

    #[test]
    fn decode_sets_mode_dependent() {
        let e = mk(SigMode::Exact, &[0, 64]);
        assert_eq!(e.decode_sets(64), vec![0]);
        let b = mk(SigMode::Bloom, &[0, 64]);
        assert!(b.decode_sets(64).contains(&0));
    }
}
