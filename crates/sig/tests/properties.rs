//! Property-based tests of the signature invariants everything in BulkSC
//! leans on: a Bloom signature is always a *superset* encoding of the exact
//! set it was built from, and its operations are conservative approximations
//! of set operations.

use bulksc_sig::{ExactSet, LineAddr, SigMode, Signature, SignatureConfig, TrackedSig};
use proptest::prelude::*;

fn lines() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..1_000_000, 0..200)
}

fn sig_of(cfg: &SignatureConfig, v: &[u64]) -> Signature {
    Signature::from_lines(cfg, v.iter().map(|&l| LineAddr(l)))
}

fn exact_of(v: &[u64]) -> ExactSet {
    v.iter().map(|&l| LineAddr(l)).collect()
}

proptest! {
    /// No false negatives: everything inserted is a member.
    #[test]
    fn membership_has_no_false_negatives(v in lines()) {
        let cfg = SignatureConfig::default();
        let s = sig_of(&cfg, &v);
        for &l in &v {
            prop_assert!(s.contains(LineAddr(l)));
        }
    }

    /// If the exact sets intersect, the Bloom signatures must intersect
    /// (conservatism of ∩).
    #[test]
    fn intersection_is_conservative(a in lines(), b in lines()) {
        let cfg = SignatureConfig::default();
        let (sa, sb) = (sig_of(&cfg, &a), sig_of(&cfg, &b));
        let (ea, eb) = (exact_of(&a), exact_of(&b));
        if ea.intersects(&eb) {
            prop_assert!(sa.intersects(&sb));
        }
    }

    /// Union is a homomorphism: sig(A) ∪ sig(B) == sig(A ∪ B).
    #[test]
    fn union_is_homomorphic(a in lines(), b in lines()) {
        let cfg = SignatureConfig::default();
        let mut u = sig_of(&cfg, &a);
        u.union_with(&sig_of(&cfg, &b));
        let mut ab = a.clone();
        ab.extend(&b);
        prop_assert_eq!(u, sig_of(&cfg, &ab));
    }

    /// Emptiness is exact: a signature is empty iff nothing was inserted.
    #[test]
    fn emptiness_is_exact(v in lines()) {
        let cfg = SignatureConfig::default();
        let s = sig_of(&cfg, &v);
        prop_assert_eq!(s.is_empty(), v.is_empty());
    }

    /// δ covers: every inserted line's cache set appears among the decoded
    /// sets, for any power-of-two set count.
    #[test]
    fn decode_covers_all_lines(v in lines(), sets_log in 4u32..12) {
        let cfg = SignatureConfig::default();
        let s = sig_of(&cfg, &v);
        let num_sets = 1u32 << sets_log;
        let decoded = s.decode_sets(num_sets);
        for &l in &v {
            prop_assert!(decoded.contains(&((l % num_sets as u64) as u32)));
        }
    }

    /// Exact decode is minimal: decoded sets are exactly the occupied sets.
    #[test]
    fn exact_decode_is_minimal(v in lines(), sets_log in 4u32..12) {
        let e = exact_of(&v);
        let num_sets = 1u32 << sets_log;
        let decoded = e.decode_sets(num_sets);
        let mut expect: Vec<u32> = v.iter().map(|&l| (l % num_sets as u64) as u32).collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(decoded, expect);
    }

    /// The tracked signature keeps its two encodings consistent: bloom is a
    /// superset of exact, and clearing resets both.
    #[test]
    fn tracked_invariants(v in lines()) {
        let cfg = SignatureConfig::default();
        let mut t = TrackedSig::new(&cfg, SigMode::Bloom);
        for &l in &v {
            t.insert(LineAddr(l));
        }
        for l in t.exact().iter() {
            prop_assert!(t.bloom().contains(l));
        }
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(t.len(), sorted.len());
        t.clear();
        prop_assert!(t.is_empty() && t.bloom().is_empty() && t.exact().is_empty());
    }

    /// Exact-mode disambiguation agrees with set intersection precisely.
    #[test]
    fn exact_mode_matches_set_semantics(a in lines(), b in lines()) {
        let cfg = SignatureConfig::default();
        let mut ta = TrackedSig::new(&cfg, SigMode::Exact);
        let mut tb = TrackedSig::new(&cfg, SigMode::Exact);
        for &l in &a { ta.insert(LineAddr(l)); }
        for &l in &b { tb.insert(LineAddr(l)); }
        prop_assert_eq!(ta.intersects(&tb), exact_of(&a).intersects(&exact_of(&b)));
    }

    /// Wire size never exceeds the raw signature and is monotone under
    /// insertion.
    #[test]
    fn wire_size_bounds(v in lines()) {
        let cfg = SignatureConfig::default();
        let mut s = Signature::new(&cfg);
        let mut prev = bulksc_sig::wire_bytes(&s);
        for &l in &v {
            s.insert(LineAddr(l));
            let now = bulksc_sig::wire_bytes(&s);
            prop_assert!(now >= prev);
            prop_assert!(now <= cfg.total_bits() / 8);
            prev = now;
        }
    }
}
