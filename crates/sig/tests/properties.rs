//! Randomized tests of the signature invariants everything in BulkSC
//! leans on: a Bloom signature is always a *superset* encoding of the exact
//! set it was built from, and its operations are conservative approximations
//! of set operations.
//!
//! These were proptest properties; each is now a deterministic seeded loop
//! over `SplitMix64`-generated line sets (no external dependencies), so
//! failures reproduce bit-for-bit from the case number.

use bulksc_sig::{ExactSet, LineAddr, SigMode, Signature, SignatureConfig, TrackedSig};
use bulksc_stats::SplitMix64;

const CASES: u64 = 64;

/// A random line set: up to 200 lines drawn from `0..1_000_000`, like the
/// old proptest strategy.
fn lines(rng: &mut SplitMix64) -> Vec<u64> {
    let len = rng.gen_index(200);
    (0..len).map(|_| rng.gen_range(0..1_000_000)).collect()
}

fn rng_for(test: u64, case: u64) -> SplitMix64 {
    SplitMix64::new(0x516_fa11 ^ (test << 32) ^ case)
}

fn sig_of(cfg: &SignatureConfig, v: &[u64]) -> Signature {
    Signature::from_lines(cfg, v.iter().map(|&l| LineAddr(l)))
}

fn exact_of(v: &[u64]) -> ExactSet {
    v.iter().map(|&l| LineAddr(l)).collect()
}

/// No false negatives: everything inserted is a member.
#[test]
fn membership_has_no_false_negatives() {
    let cfg = SignatureConfig::default();
    for case in 0..CASES {
        let v = lines(&mut rng_for(1, case));
        let s = sig_of(&cfg, &v);
        for &l in &v {
            assert!(s.contains(LineAddr(l)), "case {case}: lost line {l}");
        }
    }
}

/// If the exact sets intersect, the Bloom signatures must intersect
/// (conservatism of ∩).
#[test]
fn intersection_is_conservative() {
    let cfg = SignatureConfig::default();
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let (a, b) = (lines(&mut rng), lines(&mut rng));
        let (sa, sb) = (sig_of(&cfg, &a), sig_of(&cfg, &b));
        let (ea, eb) = (exact_of(&a), exact_of(&b));
        if ea.intersects(&eb) {
            assert!(
                sa.intersects(&sb),
                "case {case}: missed a real intersection"
            );
        }
    }
}

/// Union is a homomorphism: sig(A) ∪ sig(B) == sig(A ∪ B).
#[test]
fn union_is_homomorphic() {
    let cfg = SignatureConfig::default();
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let (a, b) = (lines(&mut rng), lines(&mut rng));
        let mut u = sig_of(&cfg, &a);
        u.union_with(&sig_of(&cfg, &b));
        let mut ab = a.clone();
        ab.extend(&b);
        assert_eq!(u, sig_of(&cfg, &ab), "case {case}");
    }
}

/// Emptiness is exact: a signature is empty iff nothing was inserted.
#[test]
fn emptiness_is_exact() {
    let cfg = SignatureConfig::default();
    for case in 0..CASES {
        let v = lines(&mut rng_for(4, case));
        let s = sig_of(&cfg, &v);
        assert_eq!(s.is_empty(), v.is_empty(), "case {case}");
    }
}

/// δ covers: every inserted line's cache set appears among the decoded
/// sets, for any power-of-two set count.
#[test]
fn decode_covers_all_lines() {
    let cfg = SignatureConfig::default();
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let v = lines(&mut rng);
        let sets_log = 4 + rng.gen_range(0..8) as u32;
        let s = sig_of(&cfg, &v);
        let num_sets = 1u32 << sets_log;
        let decoded = s.decode_sets(num_sets);
        for &l in &v {
            assert!(
                decoded.contains(&((l % num_sets as u64) as u32)),
                "case {case}: line {l} not covered with {num_sets} sets"
            );
        }
    }
}

/// Exact decode is minimal: decoded sets are exactly the occupied sets.
#[test]
fn exact_decode_is_minimal() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let v = lines(&mut rng);
        let sets_log = 4 + rng.gen_range(0..8) as u32;
        let e = exact_of(&v);
        let num_sets = 1u32 << sets_log;
        let decoded = e.decode_sets(num_sets);
        let mut expect: Vec<u32> = v.iter().map(|&l| (l % num_sets as u64) as u32).collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(decoded, expect, "case {case}");
    }
}

/// The tracked signature keeps its two encodings consistent: bloom is a
/// superset of exact, and clearing resets both.
#[test]
fn tracked_invariants() {
    let cfg = SignatureConfig::default();
    for case in 0..CASES {
        let v = lines(&mut rng_for(7, case));
        let mut t = TrackedSig::new(&cfg, SigMode::Bloom);
        for &l in &v {
            t.insert(LineAddr(l));
        }
        for l in t.exact().iter() {
            assert!(t.bloom().contains(l), "case {case}");
        }
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(t.len(), sorted.len(), "case {case}");
        t.clear();
        assert!(
            t.is_empty() && t.bloom().is_empty() && t.exact().is_empty(),
            "case {case}"
        );
    }
}

/// Exact-mode disambiguation agrees with set intersection precisely.
#[test]
fn exact_mode_matches_set_semantics() {
    let cfg = SignatureConfig::default();
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let (a, b) = (lines(&mut rng), lines(&mut rng));
        let mut ta = TrackedSig::new(&cfg, SigMode::Exact);
        let mut tb = TrackedSig::new(&cfg, SigMode::Exact);
        for &l in &a {
            ta.insert(LineAddr(l));
        }
        for &l in &b {
            tb.insert(LineAddr(l));
        }
        assert_eq!(
            ta.intersects(&tb),
            exact_of(&a).intersects(&exact_of(&b)),
            "case {case}"
        );
    }
}

/// Wire size never exceeds the raw signature and is monotone under
/// insertion.
#[test]
fn wire_size_bounds() {
    let cfg = SignatureConfig::default();
    for case in 0..CASES {
        let v = lines(&mut rng_for(9, case));
        let mut s = Signature::new(&cfg);
        let mut prev = bulksc_sig::wire_bytes(&s);
        for &l in &v {
            s.insert(LineAddr(l));
            let now = bulksc_sig::wire_bytes(&s);
            assert!(now >= prev, "case {case}: wire size shrank");
            assert!(
                now <= cfg.total_bits() / 8,
                "case {case}: wire size over raw"
            );
            prev = now;
        }
    }
}
