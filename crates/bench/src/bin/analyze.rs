//! `bulksc-analyze`: post-process run artifacts and event traces.
//!
//! ```text
//! bulksc-analyze report    <results.json|trace.btf>...
//! bulksc-analyze timeline  <trace.jsonl|.btf> [--out <chrome.json>]
//! bulksc-analyze diff      <a.json> <b.json> [--threshold <pct>]
//! bulksc-analyze check     <trace.jsonl|.btf|->... [--jobs N] [--metrics[=MS]]
//!                          [--stream[=WINDOW]] [--window N] [--max-rss-mb MB]
//! bulksc-analyze query     <trace.btf|.jsonl> [--core N] [--kind NAME]...
//!                          [--cycles A..B] [--line ADDR] [--count-by kind|core|cause|site]
//!                          [--limit N] [--stats]
//! bulksc-analyze convert   <in.jsonl|in.btf> <out>
//! bulksc-analyze synth-trace <N> [--cores C] [--words W] [--format jsonl|btf]
//! bulksc-analyze prof      <perf.json> [--chrome <out.json>] [--max-trace-overhead <x>]
//!                          [--max-metrics-overhead <x>] [--max-xray-overhead <x>]
//! bulksc-analyze perf-diff <old.json> <new.json> [--threshold <pct>]
//! bulksc-analyze metrics   <name.metrics.jsonl>...
//! bulksc-analyze trend     <BENCH_label.json>...
//! bulksc-analyze xray      <name.xray.jsonl|.btf> [--dot <out.dot>] [--top N]
//! ```
//!
//! * `report` prints per-phase commit-latency percentiles, the per-core
//!   cycle-loss attribution (validated to sum to the run's cycles), and
//!   the signature false-positive rate for every run in each artifact.
//! * `timeline` rebuilds per-chunk spans from a JSONL event stream,
//!   writes a Chrome trace (open in <https://ui.perfetto.dev>), and fails
//!   if any `chunk_start` never reached a commit, squash, or abandon.
//! * `diff` compares two artifacts run-by-run; any metric whose relative
//!   delta exceeds the threshold (default 0%) makes the exit code
//!   nonzero, so CI can gate on regressions.
//! * `check` runs the `bulksc-check` SC conformance oracle over a
//!   value-traced event stream (a run recorded with value tracing on):
//!   prints the certificate summary on success, the full violation
//!   report — offending accesses, edge kinds, surrounding chunk
//!   lifecycle — on failure. `-` reads the trace from stdin. Input is
//!   consumed line-at-a-time in both modes; parse errors name the file
//!   and 1-based line. With `--stream[=WINDOW]` (window also settable
//!   via `--window N`, default 2^20 accesses) the trace is certified
//!   through the windowed streaming checker in bounded memory — traces
//!   of any length — and the pool accelerates each window seal instead
//!   of fanning out over traces. `--max-rss-mb MB` fails the run with
//!   exit 1 if the process's peak RSS exceeded the bound, which is how
//!   CI proves the streaming oracle's memory stays flat. In batch mode,
//!   multiple traces are verified concurrently on the
//!   `bulksc_bench::pool` worker pool (`--jobs N`, default
//!   `BULKSC_JOBS`/available parallelism); results print in argument
//!   order, so output is identical at any width.
//! * `synth-trace` writes a synthetic N-access legal trace (the
//!   million-soak pattern: unique-value stores, loads of the current
//!   value, periodic RMWs) as JSONL on stdout with per-word generator
//!   state only — pipe it into `check - --stream` to exercise the
//!   oracle at sizes that never fit in memory.
//! * `prof` renders a `bulksc-perf` artifact's per-phase host-time
//!   breakdown; `--chrome` also writes it as a Chrome trace
//!   (flame-chart of where host time went), and `--max-trace-overhead`
//!   fails if the tracing slowdown (bsc8 / bsc8_trace KIPS) exceeds the
//!   given factor.
//! * `perf-diff` compares two `bulksc-perf` artifacts scenario-by-
//!   scenario and fails on any median-KIPS drop beyond the threshold
//!   (default 10%) — the host-throughput regression gate for CI.
//! * `metrics` renders a `--metrics` heartbeat stream
//!   (`results/<name>.metrics.jsonl`): one row per snapshot plus
//!   per-interval completion rates from the monotonic wall stamps.
//! * `trend` tabulates a `BENCH_<label>.json` trajectory: per-scenario
//!   median KIPS across every recorded suite run with last-entry deltas.
//! * `xray` reads a conflict-forensics capture (an experiment binary run
//!   with `--xray`) and renders the squash post-mortem: the
//!   victim-by-aggressor conflict matrix, the hottest conflict lines
//!   split into alias (Bloom false positive) vs true sharing, the
//!   squash-cascade depth histogram, and the per-core
//!   squashed/denied/aggressor balance. `--dot` also writes the
//!   victim→aggressor causality graph in Graphviz form; `--top N`
//!   widens the hot-line table (default 10).
//! * `query` filters a trace by core, event kind, cycle range, and/or
//!   line address, printing matching events as JSONL (capped by
//!   `--limit`, default 20, 0 = unlimited) and optionally a
//!   `--count-by kind|core|cause|site` aggregation. On a `.btf` artifact
//!   the footer index lets whole blocks be *skipped* without decoding;
//!   `--stats` prints the total/decoded/skipped block counts as proof.
//!   JSONL input falls back to a full scan with identical results.
//! * `convert` transcodes a trace between JSONL and BTF (direction
//!   sniffed from the input bytes), losslessly: `jsonl → btf → jsonl`
//!   re-emission is byte-identical, original schema version included.
//!
//! Trace-consuming subcommands (`check`, `timeline`, `xray`, `query`,
//! `report`) sniff the input format — magic bytes for BTF, `{` for JSONL
//! — so `.btf` artifacts are consumed transparently everywhere a `.jsonl`
//! is.
//!
//! Exit codes: 0 success, 1 validation/regression failure, 2 usage or
//! unreadable/unsupported input.

use bulksc_bench::{analyze, perf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bulksc-analyze report <results.json|trace.btf>...\n\
         \x20      bulksc-analyze timeline <trace.jsonl|.btf> [--out <chrome.json>]\n\
         \x20      bulksc-analyze diff <a.json> <b.json> [--threshold <pct>]\n\
         \x20      bulksc-analyze check <trace.jsonl|.btf|->... [--jobs N] [--metrics[=MS]]\n\
         \x20                           [--stream[=WINDOW]] [--window N] [--max-rss-mb MB]\n\
         \x20      bulksc-analyze query <trace.btf|.jsonl> [--core N] [--kind NAME]...\n\
         \x20                           [--cycles A..B] [--line ADDR] \
         [--count-by kind|core|cause|site] [--limit N] [--stats]\n\
         \x20      bulksc-analyze convert <in.jsonl|in.btf> <out>\n\
         \x20      bulksc-analyze synth-trace <N> [--cores C] [--words W] [--format jsonl|btf]\n\
         \x20      bulksc-analyze prof <perf.json> [--chrome <out.json>] \
         [--max-trace-overhead <x>] [--max-metrics-overhead <x>] [--max-xray-overhead <x>]\n\
         \x20      bulksc-analyze perf-diff <old.json> <new.json> [--threshold <pct>]\n\
         \x20      bulksc-analyze metrics <name.metrics.jsonl>...\n\
         \x20      bulksc-analyze trend <BENCH_label.json>...\n\
         \x20      bulksc-analyze xray <name.xray.jsonl|.btf> [--dot <out.dot>] [--top N]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("bulksc-analyze: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

/// Read a trace in either format as JSONL text: BTF input (sniffed by
/// magic, not extension) is transcoded in memory, so every text-based
/// consumer works on `.btf` artifacts unchanged.
fn read_trace(path: &str) -> Result<String, ExitCode> {
    let bytes = std::fs::read(path).map_err(|e| {
        eprintln!("bulksc-analyze: cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    if bulksc_trace::btf::is_btf(&bytes) {
        bulksc_trace::btf::btf_to_jsonl(&bytes).map_err(|e| {
            eprintln!("bulksc-analyze: {path}: {e}");
            ExitCode::from(2)
        })
    } else {
        String::from_utf8(bytes).map_err(|e| {
            eprintln!("bulksc-analyze: {path}: not UTF-8 (and not BTF): {e}");
            ExitCode::from(2)
        })
    }
}

/// Parse an address argument: `0x`-prefixed hex or plain decimal.
fn parse_addr(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u64>().ok()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match (cmd.as_str(), &args[1..]) {
        ("report", paths) if !paths.is_empty() => {
            for path in paths {
                let bytes = match std::fs::read(path) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("bulksc-analyze: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                if bulksc_trace::btf::is_btf(&bytes) {
                    // A trace artifact, not a results file: report its
                    // format, size, and block-index shape instead.
                    match bulksc_trace::IndexedBtf::new(std::io::Cursor::new(bytes)) {
                        Ok(btf) => print!("{}", analyze::btf_stats(&btf, path)),
                        Err(e) => {
                            eprintln!("bulksc-analyze: {path}: {e}");
                            return ExitCode::from(1);
                        }
                    }
                    continue;
                }
                let text = match String::from_utf8(bytes) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("bulksc-analyze: {path}: not UTF-8 (and not BTF): {e}");
                        return ExitCode::from(2);
                    }
                };
                match analyze::report(&text, path) {
                    Ok(out) => {
                        println!("# {path}");
                        print!("{out}");
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: {path}: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ("timeline", rest) if !rest.is_empty() => {
            let path = &rest[0];
            let out_path = match rest[1..] {
                [] => None,
                [ref flag, ref p] if flag == "--out" => Some(p.clone()),
                _ => return usage(),
            };
            let text = match read_trace(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let tl = match analyze::timeline(&text, path) {
                Ok(tl) => tl,
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    return ExitCode::from(2);
                }
            };
            println!("{path}: {}", tl.summary());
            if tl.events == 0 {
                // Valid but empty (tracer attached, nothing emitted):
                // warn, still succeed — an empty run is not a broken one.
                eprintln!("bulksc-analyze: warning: {path}: trace has a header but no events");
            }
            if let Some(out) = out_path {
                if let Err(e) = std::fs::write(&out, &tl.chrome_trace) {
                    eprintln!("bulksc-analyze: cannot write {out}: {e}");
                    return ExitCode::from(2);
                }
                println!("wrote {out}");
            }
            if tl.unmatched.is_empty() {
                ExitCode::SUCCESS
            } else {
                for u in &tl.unmatched {
                    eprintln!("bulksc-analyze: unterminated chunk: {u}");
                }
                ExitCode::from(1)
            }
        }
        ("diff", rest) if rest.len() >= 2 => {
            let threshold = match rest[2..] {
                [] => 0.0,
                [ref flag, ref v] if flag == "--threshold" => match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => t,
                    _ => return usage(),
                },
                _ => return usage(),
            };
            let (a, b) = match (read(&rest[0]), read(&rest[1])) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            match analyze::diff(&a, &b, &rest[0], &rest[1], threshold) {
                Ok(d) => {
                    print!("{}", d.render());
                    if d.clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    ExitCode::from(2)
                }
            }
        }
        ("check", rest) if !rest.is_empty() => {
            use bulksc_bench::pool::{self, Job};
            use bulksc_check::{
                check_btf_reader, check_jsonl_reader, CheckError, StreamConfig, StreamError,
                ValueTrace,
            };
            use std::fs::File;
            use std::io::{BufRead, BufReader};

            // Split flags off the path list (paths keep their order). `-`
            // is a path meaning stdin.
            let mut paths: Vec<&String> = Vec::new();
            let mut jobs: Option<usize> = None;
            let mut stream = false;
            let mut window: Option<usize> = None;
            let mut max_rss_mb: Option<u64> = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                let (flag, value) = if arg == "--stream" {
                    stream = true;
                    continue;
                } else if let Some(v) = arg.strip_prefix("--stream=") {
                    stream = true;
                    ("--stream", v.to_string())
                } else if *arg == "--metrics" || arg.starts_with("--metrics=") {
                    // Validated (and re-read) by Heartbeat::maybe_start.
                    continue;
                } else if let Some(v) = arg.strip_prefix("--jobs=") {
                    ("--jobs", v.to_string())
                } else if arg == "--jobs" || arg == "--window" || arg == "--max-rss-mb" {
                    match it.next() {
                        Some(v) => (arg.as_str(), v.clone()),
                        None => return usage(),
                    }
                } else {
                    paths.push(arg);
                    continue;
                };
                match (flag, value.parse::<u64>()) {
                    ("--jobs", Ok(n)) if n >= 1 => jobs = Some(n as usize),
                    ("--stream", Ok(n)) | ("--window", Ok(n)) if n >= 1 => {
                        window = Some(n as usize)
                    }
                    ("--max-rss-mb", Ok(n)) if n >= 1 => max_rss_mb = Some(n),
                    _ => return usage(),
                }
            }
            if paths.is_empty() || (window.is_some() && !stream) {
                return usage();
            }

            /// One trace's verdict, rendered inside its pool job.
            enum CheckOut {
                Certified(String),
                Violation(String),
                /// Unreadable / unparseable input: stderr line, exit 2,
                /// later paths are not reported (matching the serial
                /// early-return).
                Fatal(String),
            }

            /// Peek the buffered head of a trace stream without consuming
            /// it: BTF's magic is binary, JSONL starts with `{`, so four
            /// bytes decide the decode path even on an unseekable pipe.
            fn sniff_btf<R: BufRead>(r: &mut R) -> std::io::Result<bool> {
                Ok(bulksc_trace::btf::is_btf(r.fill_buf()?))
            }

            /// Windowed certification of one trace (file or stdin),
            /// never holding more than the frontier in memory. The pool
            /// width parallelizes *within* each window seal.
            fn stream_one(path: &str, cfg: StreamConfig) -> CheckOut {
                let origin = if path == "-" { "<stdin>" } else { path };
                let fatal_read =
                    |e: std::io::Error| format!("bulksc-analyze: cannot read {origin}: {e}");
                let result = if path == "-" {
                    let mut input = BufReader::new(std::io::stdin());
                    match sniff_btf(&mut input) {
                        Ok(true) => check_btf_reader(input, origin, cfg),
                        Ok(false) => check_jsonl_reader(input, origin, cfg),
                        Err(e) => return CheckOut::Fatal(fatal_read(e)),
                    }
                } else {
                    match File::open(path).map(BufReader::new) {
                        Ok(mut input) => match sniff_btf(&mut input) {
                            Ok(true) => check_btf_reader(input, origin, cfg),
                            Ok(false) => check_jsonl_reader(input, origin, cfg),
                            Err(e) => return CheckOut::Fatal(fatal_read(e)),
                        },
                        Err(e) => return CheckOut::Fatal(fatal_read(e)),
                    }
                };
                match result {
                    Ok(cert) if cert.accesses == 0 => CheckOut::Fatal(format!(
                        "bulksc-analyze: {origin}: no value events — was the run \
                         recorded with value tracing on?"
                    )),
                    Ok(cert) => CheckOut::Certified(format!("{origin}: {}", cert.summary())),
                    Err(StreamError::Input(m)) => CheckOut::Fatal(format!("bulksc-analyze: {m}")),
                    Err(StreamError::Check(CheckError::Violation(v))) => {
                        CheckOut::Violation(format!("{origin}: SC VIOLATION\n{}", v.report))
                    }
                    Err(StreamError::Check(CheckError::Malformed(m))) => {
                        CheckOut::Fatal(format!("bulksc-analyze: {origin}: malformed trace: {m}"))
                    }
                }
            }

            /// Batch certification of one trace: full witness in memory,
            /// but the JSONL is still consumed line-at-a-time.
            fn batch_one(path: &str) -> CheckOut {
                let origin = if path == "-" { "<stdin>" } else { path };
                let fatal_read =
                    |e: std::io::Error| format!("bulksc-analyze: cannot read {origin}: {e}");
                let parsed = if path == "-" {
                    let mut input = BufReader::new(std::io::stdin());
                    match sniff_btf(&mut input) {
                        Ok(true) => ValueTrace::from_btf_reader(input, origin),
                        Ok(false) => ValueTrace::from_jsonl_reader(input, origin),
                        Err(e) => return CheckOut::Fatal(fatal_read(e)),
                    }
                } else {
                    match File::open(path).map(BufReader::new) {
                        Ok(mut input) => match sniff_btf(&mut input) {
                            Ok(true) => ValueTrace::from_btf_reader(input, origin),
                            Ok(false) => ValueTrace::from_jsonl_reader(input, origin),
                            Err(e) => return CheckOut::Fatal(fatal_read(e)),
                        },
                        Err(e) => return CheckOut::Fatal(fatal_read(e)),
                    }
                };
                let trace = match parsed {
                    Ok(t) => t,
                    Err(e) => return CheckOut::Fatal(format!("bulksc-analyze: {e}")),
                };
                if trace.accesses.is_empty() {
                    return CheckOut::Fatal(format!(
                        "bulksc-analyze: {origin}: no value events — was the run \
                         recorded with value tracing on?"
                    ));
                }
                match trace.verify() {
                    Ok(cert) => CheckOut::Certified(format!("{origin}: {}", cert.summary())),
                    Err(CheckError::Violation(v)) => {
                        CheckOut::Violation(format!("{origin}: SC VIOLATION\n{}", v.report))
                    }
                    Err(CheckError::Malformed(m)) => {
                        CheckOut::Fatal(format!("bulksc-analyze: {origin}: malformed trace: {m}"))
                    }
                }
            }

            let heartbeat = bulksc_bench::heartbeat::Heartbeat::maybe_start("check");
            let width = jobs.unwrap_or_else(pool::default_width);
            let results: Vec<CheckOut> = if stream {
                // Streaming mode: traces run one after another in bounded
                // memory; the pool accelerates each window seal instead.
                let cfg = StreamConfig::windowed(window.unwrap_or(1 << 20)).with_jobs(width);
                paths
                    .iter()
                    .map(|path| stream_one(path, cfg.clone()))
                    .collect()
            } else {
                pool::run_all(
                    width,
                    paths
                        .iter()
                        .map(|path| {
                            let path = path.as_str();
                            Job::new(format!("check {path}"), move || batch_one(path))
                        })
                        .collect(),
                )
            };
            if let Some(hb) = heartbeat {
                hb.finish();
            }

            let mut worst = ExitCode::SUCCESS;
            for result in results {
                match result {
                    CheckOut::Certified(line) => println!("{line}"),
                    CheckOut::Violation(text) => {
                        print!("{text}");
                        worst = ExitCode::from(1);
                    }
                    CheckOut::Fatal(msg) => {
                        eprintln!("{msg}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Some(bound) = max_rss_mb {
                match bulksc_bench::peak_rss_kb() {
                    Some(kb) => {
                        println!(
                            "peak RSS: {:.1} MiB (bound {bound} MiB)",
                            kb as f64 / 1024.0
                        );
                        if kb > bound * 1024 {
                            eprintln!(
                                "bulksc-analyze: peak RSS {:.1} MiB exceeds --max-rss-mb {bound}",
                                kb as f64 / 1024.0
                            );
                            worst = ExitCode::from(1);
                        }
                    }
                    None => eprintln!(
                        "bulksc-analyze: warning: /proc/self/status unavailable; \
                         cannot enforce --max-rss-mb"
                    ),
                }
            }
            worst
        }
        ("query", rest) if !rest.is_empty() => {
            use bulksc_bench::analyze::{CountBy, QueryFilter};
            use bulksc_trace::Event;

            let path = &rest[0];
            let mut filter = QueryFilter {
                core: None,
                kinds: Vec::new(),
                cycles: None,
                line: None,
            };
            let mut count_by: Option<CountBy> = None;
            let mut limit: usize = 20;
            let mut stats = false;
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                if flag == "--stats" {
                    stats = true;
                    continue;
                }
                let Some(v) = it.next() else { return usage() };
                match flag.as_str() {
                    "--core" => match v.parse::<u32>() {
                        Ok(c) => filter.core = Some(c),
                        Err(_) => return usage(),
                    },
                    "--kind" => match Event::kind_id_of(v) {
                        Some(k) => filter.kinds.push(k),
                        None => {
                            eprintln!(
                                "bulksc-analyze: unknown event kind {v:?} (known: {})",
                                Event::KIND_NAMES.join(", ")
                            );
                            return ExitCode::from(2);
                        }
                    },
                    "--cycles" => {
                        let Some((lo, hi)) = v.split_once("..") else {
                            return usage();
                        };
                        match (lo.parse::<u64>(), hi.parse::<u64>()) {
                            (Ok(lo), Ok(hi)) if lo <= hi => filter.cycles = Some((lo, hi)),
                            _ => return usage(),
                        }
                    }
                    "--line" => match parse_addr(v) {
                        Some(a) => filter.line = Some(a),
                        None => return usage(),
                    },
                    "--count-by" => match CountBy::parse(v) {
                        Some(b) => count_by = Some(b),
                        None => return usage(),
                    },
                    "--limit" => match v.parse::<usize>() {
                        Ok(n) => limit = n,
                        Err(_) => return usage(),
                    },
                    _ => return usage(),
                }
            }

            // Sniff the format from the first bytes, then take the indexed
            // path (block skipping) for BTF or the full-scan path for JSONL.
            let sniffed_btf = {
                use std::io::Read;
                match std::fs::File::open(path) {
                    Ok(mut f) => {
                        let mut magic = [0u8; 4];
                        let mut got = 0;
                        while got < 4 {
                            match f.read(&mut magic[got..]) {
                                Ok(0) => break,
                                Ok(n) => got += n,
                                Err(e) => {
                                    eprintln!("bulksc-analyze: cannot read {path}: {e}");
                                    return ExitCode::from(2);
                                }
                            }
                        }
                        bulksc_trace::btf::is_btf(&magic[..got])
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            };
            let result = if sniffed_btf {
                match bulksc_trace::IndexedBtf::open_path(path) {
                    Ok(mut btf) => analyze::query_btf(&mut btf, path, &filter, count_by, limit),
                    Err(e) => {
                        eprintln!("bulksc-analyze: {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            } else {
                match read(path) {
                    Ok(text) => analyze::query_jsonl(&text, path, &filter, count_by, limit),
                    Err(code) => return code,
                }
            };
            match result {
                Ok(report) => {
                    print!("{}", report.render(path, stats));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    ExitCode::from(2)
                }
            }
        }
        ("convert", rest) if rest.len() == 2 => {
            let (inp, outp) = (&rest[0], &rest[1]);
            let bytes = match std::fs::read(inp) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("bulksc-analyze: cannot read {inp}: {e}");
                    return ExitCode::from(2);
                }
            };
            let (out_bytes, direction) = if bulksc_trace::btf::is_btf(&bytes) {
                match bulksc_trace::btf::btf_to_jsonl(&bytes) {
                    Ok(t) => (t.into_bytes(), "btf -> jsonl"),
                    Err(e) => {
                        eprintln!("bulksc-analyze: {inp}: {e}");
                        return ExitCode::from(2);
                    }
                }
            } else {
                let text = match String::from_utf8(bytes) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("bulksc-analyze: {inp}: not UTF-8 (and not BTF): {e}");
                        return ExitCode::from(2);
                    }
                };
                match bulksc_trace::btf::jsonl_to_btf(&text) {
                    Ok(b) => (b, "jsonl -> btf"),
                    Err(e) => {
                        eprintln!("bulksc-analyze: {inp}: {e}");
                        return ExitCode::from(2);
                    }
                }
            };
            if let Err(e) = std::fs::write(outp, &out_bytes) {
                eprintln!("bulksc-analyze: cannot write {outp}: {e}");
                return ExitCode::from(2);
            }
            println!("{inp} -> {outp} ({direction}, {} bytes)", out_bytes.len());
            ExitCode::SUCCESS
        }
        ("synth-trace", rest) if !rest.is_empty() => {
            use bulksc_trace::Event;
            use std::collections::HashMap;
            use std::io::Write;

            let Ok(n) = rest[0].parse::<u64>() else {
                return usage();
            };
            let mut cores: u32 = 8;
            let mut words: u64 = 64;
            let mut btf = false;
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                match (flag.as_str(), it.next()) {
                    ("--cores", Some(v)) => match v.parse::<u64>() {
                        Ok(c) if c >= 1 => cores = c as u32,
                        _ => return usage(),
                    },
                    ("--words", Some(v)) => match v.parse::<u64>() {
                        Ok(w) if w >= 1 => words = w,
                        _ => return usage(),
                    },
                    ("--format", Some(v)) => match v.as_str() {
                        "jsonl" => btf = false,
                        "btf" => btf = true,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            // Million-soak access pattern, generated with per-word state
            // only, so a 100M-access trace can be piped straight into
            // `check - --stream` without ever touching disk — in either
            // format (the BTF writer needs no seeking).
            let stdout = std::io::stdout().lock();
            let mut mem: HashMap<u64, u64> = HashMap::new();
            let mut po = vec![0u64; cores as usize];
            let mut synth_event = move |i: u64| -> Event {
                let core = (i % cores as u64) as u32;
                let seq = i / 1000;
                let addr = i.wrapping_mul(0x9e37_79b9) % words * 8;
                let ev = if i % 35 == 4 {
                    let old = mem.get(&addr).copied().unwrap_or(0);
                    mem.insert(addr, i + 1);
                    Event::ValRmw {
                        core,
                        seq,
                        po: po[core as usize],
                        addr,
                        old,
                        new: i + 1,
                        retired_at: 10 + i,
                    }
                } else if i % 5 < 2 {
                    mem.insert(addr, i + 1);
                    Event::ValStore {
                        core,
                        seq,
                        po: po[core as usize],
                        addr,
                        value: i + 1,
                        retired_at: 10 + i,
                    }
                } else {
                    Event::ValLoad {
                        core,
                        seq,
                        po: po[core as usize],
                        addr,
                        value: mem.get(&addr).copied().unwrap_or(0),
                        retired_at: 10 + i,
                    }
                };
                po[core as usize] += 1;
                ev
            };
            let run = move || -> Result<(), std::io::Error> {
                let mut out = std::io::BufWriter::with_capacity(1 << 20, stdout);
                if btf {
                    let mut w = bulksc_trace::BtfWriter::new(out)?;
                    for i in 0..n {
                        w.push(20 + i, &synth_event(i))?;
                    }
                    w.finish()?.flush()
                } else {
                    let emit = |out: &mut dyn Write, line: String| -> Result<(), std::io::Error> {
                        out.write_all(line.as_bytes())?;
                        out.write_all(b"\n")
                    };
                    emit(&mut out, bulksc_trace::jsonl_header())?;
                    for i in 0..n {
                        emit(&mut out, synth_event(i).jsonl(20 + i))?;
                    }
                    out.flush()
                }
            };
            match run() {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("bulksc-analyze: cannot write trace: {e}");
                    ExitCode::from(2)
                }
            }
        }
        ("prof", rest) if !rest.is_empty() => {
            let path = &rest[0];
            let mut chrome_out: Option<String> = None;
            let mut max_overhead: Option<f64> = None;
            let mut max_metrics_overhead: Option<f64> = None;
            let mut max_xray_overhead: Option<f64> = None;
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                match (flag.as_str(), it.next()) {
                    ("--chrome", Some(p)) => chrome_out = Some(p.clone()),
                    ("--max-trace-overhead", Some(v)) => match v.parse::<f64>() {
                        Ok(x) if x > 0.0 => max_overhead = Some(x),
                        _ => return usage(),
                    },
                    ("--max-metrics-overhead", Some(v)) => match v.parse::<f64>() {
                        Ok(x) if x > 0.0 => max_metrics_overhead = Some(x),
                        _ => return usage(),
                    },
                    ("--max-xray-overhead", Some(v)) => match v.parse::<f64>() {
                        Ok(x) if x > 0.0 => max_xray_overhead = Some(x),
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let text = match read(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match perf::prof_report_text(&text, path) {
                Ok(out) => print!("{out}"),
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    return ExitCode::from(2);
                }
            }
            if let Some(out) = chrome_out {
                let chrome = match perf::prof_chrome(&text, path) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                };
                if let Err(e) = std::fs::write(&out, chrome) {
                    eprintln!("bulksc-analyze: cannot write {out}: {e}");
                    return ExitCode::from(2);
                }
                println!("wrote {out}");
            }
            if let Some(bound) = max_overhead {
                match perf::trace_overhead(&text, path) {
                    Ok(ratio) => {
                        println!(
                            "tracing overhead (bsc8 / bsc8_trace): {ratio:.2}x (bound {bound:.2}x)"
                        );
                        if ratio > bound {
                            eprintln!(
                                "bulksc-analyze: tracing overhead {ratio:.2}x exceeds bound {bound:.2}x"
                            );
                            return ExitCode::from(1);
                        }
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Some(bound) = max_metrics_overhead {
                match perf::metrics_overhead(&text, path) {
                    Ok(ratio) => {
                        println!(
                            "metrics overhead (bsc8 / bsc8_metrics): {ratio:.2}x (bound {bound:.2}x)"
                        );
                        if ratio > bound {
                            eprintln!(
                                "bulksc-analyze: metrics overhead {ratio:.2}x exceeds bound {bound:.2}x"
                            );
                            return ExitCode::from(1);
                        }
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Some(bound) = max_xray_overhead {
                match perf::xray_overhead(&text, path) {
                    Ok(ratio) => {
                        println!(
                            "xray overhead (bsc8_trace / bsc8_xray): {ratio:.2}x (bound {bound:.2}x)"
                        );
                        if ratio > bound {
                            eprintln!(
                                "bulksc-analyze: xray overhead {ratio:.2}x exceeds bound {bound:.2}x"
                            );
                            return ExitCode::from(1);
                        }
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ("metrics", paths) if !paths.is_empty() => {
            for path in paths {
                let text = match read(path) {
                    Ok(t) => t,
                    Err(code) => return code,
                };
                match analyze::metrics_report(&text, path) {
                    Ok(out) => print!("{out}"),
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ("trend", paths) if !paths.is_empty() => {
            for path in paths {
                let text = match read(path) {
                    Ok(t) => t,
                    Err(code) => return code,
                };
                match analyze::trend_report(&text, path) {
                    Ok(out) => print!("{out}"),
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ("xray", rest) if !rest.is_empty() => {
            let path = &rest[0];
            let mut dot_out: Option<String> = None;
            let mut top_n: usize = 10;
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                match (flag.as_str(), it.next()) {
                    ("--dot", Some(p)) => dot_out = Some(p.clone()),
                    ("--top", Some(v)) => match v.parse::<usize>() {
                        Ok(n) if n >= 1 => top_n = n,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let text = match read_trace(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match analyze::xray(&text, path, top_n) {
                Ok(x) => {
                    print!("{}", x.text);
                    if let Some(out) = dot_out {
                        if let Err(e) = std::fs::write(&out, &x.dot) {
                            eprintln!("bulksc-analyze: cannot write {out}: {e}");
                            return ExitCode::from(2);
                        }
                        println!("wrote {out}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    ExitCode::from(2)
                }
            }
        }
        ("perf-diff", rest) if rest.len() >= 2 => {
            let threshold = match rest[2..] {
                [] => 10.0,
                [ref flag, ref v] if flag == "--threshold" => match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => t,
                    _ => return usage(),
                },
                _ => return usage(),
            };
            let (a, b) = match (read(&rest[0]), read(&rest[1])) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            match perf::perf_diff(&a, &b, &rest[0], &rest[1], threshold) {
                Ok(d) => {
                    print!("{}", d.render(threshold));
                    if d.clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
