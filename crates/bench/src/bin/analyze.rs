//! `bulksc-analyze`: post-process run artifacts and event traces.
//!
//! ```text
//! bulksc-analyze report    <results.json>...
//! bulksc-analyze timeline  <trace.jsonl> [--out <chrome.json>]
//! bulksc-analyze diff      <a.json> <b.json> [--threshold <pct>]
//! bulksc-analyze check     <trace.jsonl>... [--jobs N] [--metrics[=MS]]
//! bulksc-analyze prof      <perf.json> [--chrome <out.json>] [--max-trace-overhead <x>]
//!                          [--max-metrics-overhead <x>] [--max-xray-overhead <x>]
//! bulksc-analyze perf-diff <old.json> <new.json> [--threshold <pct>]
//! bulksc-analyze metrics   <name.metrics.jsonl>...
//! bulksc-analyze trend     <BENCH_label.json>...
//! bulksc-analyze xray      <name.xray.jsonl> [--dot <out.dot>] [--top N]
//! ```
//!
//! * `report` prints per-phase commit-latency percentiles, the per-core
//!   cycle-loss attribution (validated to sum to the run's cycles), and
//!   the signature false-positive rate for every run in each artifact.
//! * `timeline` rebuilds per-chunk spans from a JSONL event stream,
//!   writes a Chrome trace (open in <https://ui.perfetto.dev>), and fails
//!   if any `chunk_start` never reached a commit, squash, or abandon.
//! * `diff` compares two artifacts run-by-run; any metric whose relative
//!   delta exceeds the threshold (default 0%) makes the exit code
//!   nonzero, so CI can gate on regressions.
//! * `check` runs the `bulksc-check` SC conformance oracle over a
//!   value-traced event stream (a run recorded with value tracing on):
//!   prints the certificate summary on success, the full violation
//!   report — offending accesses, edge kinds, surrounding chunk
//!   lifecycle — on failure. Multiple traces are verified concurrently
//!   on the `bulksc_bench::pool` worker pool (`--jobs N`, default
//!   `BULKSC_JOBS`/available parallelism); results print in argument
//!   order, so output is identical at any width.
//! * `prof` renders a `bulksc-perf` artifact's per-phase host-time
//!   breakdown; `--chrome` also writes it as a Chrome trace
//!   (flame-chart of where host time went), and `--max-trace-overhead`
//!   fails if the tracing slowdown (bsc8 / bsc8_trace KIPS) exceeds the
//!   given factor.
//! * `perf-diff` compares two `bulksc-perf` artifacts scenario-by-
//!   scenario and fails on any median-KIPS drop beyond the threshold
//!   (default 10%) — the host-throughput regression gate for CI.
//! * `metrics` renders a `--metrics` heartbeat stream
//!   (`results/<name>.metrics.jsonl`): one row per snapshot plus
//!   per-interval completion rates from the monotonic wall stamps.
//! * `trend` tabulates a `BENCH_<label>.json` trajectory: per-scenario
//!   median KIPS across every recorded suite run with last-entry deltas.
//! * `xray` reads a conflict-forensics capture (an experiment binary run
//!   with `--xray`) and renders the squash post-mortem: the
//!   victim-by-aggressor conflict matrix, the hottest conflict lines
//!   split into alias (Bloom false positive) vs true sharing, the
//!   squash-cascade depth histogram, and the per-core
//!   squashed/denied/aggressor balance. `--dot` also writes the
//!   victim→aggressor causality graph in Graphviz form; `--top N`
//!   widens the hot-line table (default 10).
//!
//! Exit codes: 0 success, 1 validation/regression failure, 2 usage or
//! unreadable/unsupported input.

use bulksc_bench::{analyze, perf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bulksc-analyze report <results.json>...\n\
         \x20      bulksc-analyze timeline <trace.jsonl> [--out <chrome.json>]\n\
         \x20      bulksc-analyze diff <a.json> <b.json> [--threshold <pct>]\n\
         \x20      bulksc-analyze check <trace.jsonl>... [--jobs N] [--metrics[=MS]]\n\
         \x20      bulksc-analyze prof <perf.json> [--chrome <out.json>] \
         [--max-trace-overhead <x>] [--max-metrics-overhead <x>] [--max-xray-overhead <x>]\n\
         \x20      bulksc-analyze perf-diff <old.json> <new.json> [--threshold <pct>]\n\
         \x20      bulksc-analyze metrics <name.metrics.jsonl>...\n\
         \x20      bulksc-analyze trend <BENCH_label.json>...\n\
         \x20      bulksc-analyze xray <name.xray.jsonl> [--dot <out.dot>] [--top N]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("bulksc-analyze: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match (cmd.as_str(), &args[1..]) {
        ("report", paths) if !paths.is_empty() => {
            for path in paths {
                let text = match read(path) {
                    Ok(t) => t,
                    Err(code) => return code,
                };
                match analyze::report(&text, path) {
                    Ok(out) => {
                        println!("# {path}");
                        print!("{out}");
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: {path}: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ("timeline", rest) if !rest.is_empty() => {
            let path = &rest[0];
            let out_path = match rest[1..] {
                [] => None,
                [ref flag, ref p] if flag == "--out" => Some(p.clone()),
                _ => return usage(),
            };
            let text = match read(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let tl = match analyze::timeline(&text, path) {
                Ok(tl) => tl,
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    return ExitCode::from(2);
                }
            };
            println!("{path}: {}", tl.summary());
            if tl.events == 0 {
                // Valid but empty (tracer attached, nothing emitted):
                // warn, still succeed — an empty run is not a broken one.
                eprintln!("bulksc-analyze: warning: {path}: trace has a header but no events");
            }
            if let Some(out) = out_path {
                if let Err(e) = std::fs::write(&out, &tl.chrome_trace) {
                    eprintln!("bulksc-analyze: cannot write {out}: {e}");
                    return ExitCode::from(2);
                }
                println!("wrote {out}");
            }
            if tl.unmatched.is_empty() {
                ExitCode::SUCCESS
            } else {
                for u in &tl.unmatched {
                    eprintln!("bulksc-analyze: unterminated chunk: {u}");
                }
                ExitCode::from(1)
            }
        }
        ("diff", rest) if rest.len() >= 2 => {
            let threshold = match rest[2..] {
                [] => 0.0,
                [ref flag, ref v] if flag == "--threshold" => match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => t,
                    _ => return usage(),
                },
                _ => return usage(),
            };
            let (a, b) = match (read(&rest[0]), read(&rest[1])) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            match analyze::diff(&a, &b, &rest[0], &rest[1], threshold) {
                Ok(d) => {
                    print!("{}", d.render());
                    if d.clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    ExitCode::from(2)
                }
            }
        }
        ("check", rest) if !rest.is_empty() => {
            use bulksc_bench::pool::{self, Job};
            use bulksc_check::{CheckError, ValueTrace};

            // Split `--jobs` and `--metrics` off the path list (paths keep
            // their order).
            let mut paths: Vec<&String> = Vec::new();
            let mut jobs: Option<usize> = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                let value = if arg == "--jobs" {
                    match it.next() {
                        Some(v) => v.clone(),
                        None => return usage(),
                    }
                } else if let Some(v) = arg.strip_prefix("--jobs=") {
                    v.to_string()
                } else if *arg == "--metrics" || arg.starts_with("--metrics=") {
                    // Validated (and re-read) by Heartbeat::maybe_start.
                    continue;
                } else {
                    paths.push(arg);
                    continue;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => return usage(),
                }
            }
            if paths.is_empty() {
                return usage();
            }

            /// One trace's verdict, rendered inside its pool job.
            enum CheckOut {
                Certified(String),
                Violation(String),
                /// Unreadable / unparseable input: stderr line, exit 2,
                /// later paths are not reported (matching the serial
                /// early-return).
                Fatal(String),
            }

            let heartbeat = bulksc_bench::heartbeat::Heartbeat::maybe_start("check");
            let results: Vec<CheckOut> = pool::run_all(
                jobs.unwrap_or_else(pool::default_width),
                paths
                    .iter()
                    .map(|path| {
                        let path = path.as_str();
                        Job::new(format!("check {path}"), move || {
                            let text = match std::fs::read_to_string(path) {
                                Ok(t) => t,
                                Err(e) => {
                                    return CheckOut::Fatal(format!(
                                        "bulksc-analyze: cannot read {path}: {e}"
                                    ))
                                }
                            };
                            let trace = match ValueTrace::from_jsonl(&text) {
                                Ok(t) => t,
                                Err(e) => {
                                    return CheckOut::Fatal(format!("bulksc-analyze: {path}: {e}"))
                                }
                            };
                            if trace.accesses.is_empty() {
                                return CheckOut::Fatal(format!(
                                    "bulksc-analyze: {path}: no value events — was the run \
                                     recorded with value tracing on?"
                                ));
                            }
                            match trace.verify() {
                                Ok(cert) => {
                                    CheckOut::Certified(format!("{path}: {}", cert.summary()))
                                }
                                Err(CheckError::Violation(v)) => CheckOut::Violation(format!(
                                    "{path}: SC VIOLATION\n{}",
                                    v.report
                                )),
                                Err(CheckError::Malformed(m)) => CheckOut::Fatal(format!(
                                    "bulksc-analyze: {path}: malformed trace: {m}"
                                )),
                            }
                        })
                    })
                    .collect(),
            );
            if let Some(hb) = heartbeat {
                hb.finish();
            }

            let mut worst = ExitCode::SUCCESS;
            for result in results {
                match result {
                    CheckOut::Certified(line) => println!("{line}"),
                    CheckOut::Violation(text) => {
                        print!("{text}");
                        worst = ExitCode::from(1);
                    }
                    CheckOut::Fatal(msg) => {
                        eprintln!("{msg}");
                        return ExitCode::from(2);
                    }
                }
            }
            worst
        }
        ("prof", rest) if !rest.is_empty() => {
            let path = &rest[0];
            let mut chrome_out: Option<String> = None;
            let mut max_overhead: Option<f64> = None;
            let mut max_metrics_overhead: Option<f64> = None;
            let mut max_xray_overhead: Option<f64> = None;
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                match (flag.as_str(), it.next()) {
                    ("--chrome", Some(p)) => chrome_out = Some(p.clone()),
                    ("--max-trace-overhead", Some(v)) => match v.parse::<f64>() {
                        Ok(x) if x > 0.0 => max_overhead = Some(x),
                        _ => return usage(),
                    },
                    ("--max-metrics-overhead", Some(v)) => match v.parse::<f64>() {
                        Ok(x) if x > 0.0 => max_metrics_overhead = Some(x),
                        _ => return usage(),
                    },
                    ("--max-xray-overhead", Some(v)) => match v.parse::<f64>() {
                        Ok(x) if x > 0.0 => max_xray_overhead = Some(x),
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let text = match read(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match perf::prof_report_text(&text, path) {
                Ok(out) => print!("{out}"),
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    return ExitCode::from(2);
                }
            }
            if let Some(out) = chrome_out {
                let chrome = match perf::prof_chrome(&text, path) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                };
                if let Err(e) = std::fs::write(&out, chrome) {
                    eprintln!("bulksc-analyze: cannot write {out}: {e}");
                    return ExitCode::from(2);
                }
                println!("wrote {out}");
            }
            if let Some(bound) = max_overhead {
                match perf::trace_overhead(&text, path) {
                    Ok(ratio) => {
                        println!(
                            "tracing overhead (bsc8 / bsc8_trace): {ratio:.2}x (bound {bound:.2}x)"
                        );
                        if ratio > bound {
                            eprintln!(
                                "bulksc-analyze: tracing overhead {ratio:.2}x exceeds bound {bound:.2}x"
                            );
                            return ExitCode::from(1);
                        }
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Some(bound) = max_metrics_overhead {
                match perf::metrics_overhead(&text, path) {
                    Ok(ratio) => {
                        println!(
                            "metrics overhead (bsc8 / bsc8_metrics): {ratio:.2}x (bound {bound:.2}x)"
                        );
                        if ratio > bound {
                            eprintln!(
                                "bulksc-analyze: metrics overhead {ratio:.2}x exceeds bound {bound:.2}x"
                            );
                            return ExitCode::from(1);
                        }
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Some(bound) = max_xray_overhead {
                match perf::xray_overhead(&text, path) {
                    Ok(ratio) => {
                        println!(
                            "xray overhead (bsc8_trace / bsc8_xray): {ratio:.2}x (bound {bound:.2}x)"
                        );
                        if ratio > bound {
                            eprintln!(
                                "bulksc-analyze: xray overhead {ratio:.2}x exceeds bound {bound:.2}x"
                            );
                            return ExitCode::from(1);
                        }
                    }
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ("metrics", paths) if !paths.is_empty() => {
            for path in paths {
                let text = match read(path) {
                    Ok(t) => t,
                    Err(code) => return code,
                };
                match analyze::metrics_report(&text, path) {
                    Ok(out) => print!("{out}"),
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ("trend", paths) if !paths.is_empty() => {
            for path in paths {
                let text = match read(path) {
                    Ok(t) => t,
                    Err(code) => return code,
                };
                match analyze::trend_report(&text, path) {
                    Ok(out) => print!("{out}"),
                    Err(e) => {
                        eprintln!("bulksc-analyze: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ("xray", rest) if !rest.is_empty() => {
            let path = &rest[0];
            let mut dot_out: Option<String> = None;
            let mut top_n: usize = 10;
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                match (flag.as_str(), it.next()) {
                    ("--dot", Some(p)) => dot_out = Some(p.clone()),
                    ("--top", Some(v)) => match v.parse::<usize>() {
                        Ok(n) if n >= 1 => top_n = n,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let text = match read(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match analyze::xray(&text, path, top_n) {
                Ok(x) => {
                    print!("{}", x.text);
                    if let Some(out) = dot_out {
                        if let Err(e) = std::fs::write(&out, &x.dot) {
                            eprintln!("bulksc-analyze: cannot write {out}: {e}");
                            return ExitCode::from(2);
                        }
                        println!("wrote {out}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    ExitCode::from(2)
                }
            }
        }
        ("perf-diff", rest) if rest.len() >= 2 => {
            let threshold = match rest[2..] {
                [] => 10.0,
                [ref flag, ref v] if flag == "--threshold" => match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => t,
                    _ => return usage(),
                },
                _ => return usage(),
            };
            let (a, b) = match (read(&rest[0]), read(&rest[1])) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            match perf::perf_diff(&a, &b, &rest[0], &rest[1], threshold) {
                Ok(d) => {
                    print!("{}", d.render(threshold));
                    if d.clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("bulksc-analyze: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
