//! Ablations of BulkSC design choices the paper discusses but does not
//! plot: distributed arbitration (§4.2.3), signature size (§6's "large
//! unexplored design space"), Private Buffer capacity (§5.2), and chunk
//! slots per core (§4.1.2).
//!
//! `cargo run --release -p bulksc-bench --bin ablations [-- fast] [--jobs N] [--metrics[=MS]] [--xray]`

use bulksc_bench::heartbeat::Heartbeat;
use bulksc_bench::{budget_from_env, figures, pool};

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 5_000 } else { budget_from_env() };
    let heartbeat = Heartbeat::maybe_start("ablations");
    let out = figures::ablations(budget, pool::jobs_from_cli());
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    print!("{}", out.text);
    out.log.write_if_requested();
    bulksc_bench::xray::capture_if_requested("ablations", budget);
}
