//! Ablations of BulkSC design choices the paper discusses but does not
//! plot: distributed arbitration (§4.2.3), signature size (§6's "large
//! unexplored design space"), Private Buffer capacity (§5.2), and chunk
//! slots per core (§4.1.2).
//!
//! `cargo run --release -p bulksc-bench --bin ablations [-- fast]`

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_bench::artifact::RunLog;
use bulksc_bench::{budget_from_env, run_app, SEED};
use bulksc_sig::SignatureConfig;
use bulksc_stats::Table;
use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};

/// Run with full control over the system configuration.
fn run_custom(mut cfg: SystemConfig, app: &str, budget: u64) -> SimReport {
    cfg.budget = budget;
    let params = by_name(app).expect("catalog app");
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(params, t, cfg.cores, SEED)) as Box<dyn ThreadProgram>)
        .collect();
    let mut sys = System::new(cfg, programs);
    assert!(sys.run(u64::MAX / 4), "run finished");
    SimReport::collect(&sys)
}

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 5_000 } else { budget_from_env() };
    let mut log = RunLog::new("ablations", budget);
    let apps = ["ocean", "radix", "raytrace"];

    // ------------------------------------------------------------------
    println!("Ablation 1 — signature size (BSCdypvt, radix is the aliasing-sensitive app)\n");
    let mut t = Table::new(vec![
        "App".into(),
        "512b Sq%".into(),
        "1Kb Sq%".into(),
        "2Kb Sq%".into(),
        "4Kb Sq%".into(),
        "exact Sq%".into(),
    ]);
    for app in apps {
        let mut cells = vec![app.to_string()];
        for bits in [512u32, 1024, 2048, 4096] {
            let mut b = BulkConfig::bsc_dypvt();
            b.sig = SignatureConfig::with_total_bits(bits);
            let r = run_app(Model::Bulk(b), &by_name(app).unwrap(), budget);
            cells.push(format!("{:.2}", r.squashed_pct));
            log.record(app, &format!("sig-{bits}b"), &r);
        }
        let r = run_app(
            Model::Bulk(BulkConfig::bsc_exact()),
            &by_name(app).unwrap(),
            budget,
        );
        cells.push(format!("{:.2}", r.squashed_pct));
        log.record(app, "sig-exact", &r);
        t.row(cells);
        eprintln!("  sig-size {app} done");
    }
    println!("{t}");

    // ------------------------------------------------------------------
    println!("Ablation 2 — Private Buffer capacity (BSCdypvt)\n");
    let mut t = Table::new(vec![
        "App".into(),
        "cap4 W-set".into(),
        "cap12 W-set".into(),
        "cap24 W-set".into(),
        "cap48 W-set".into(),
    ]);
    for app in apps {
        let mut cells = vec![app.to_string()];
        for cap in [4u32, 12, 24, 48] {
            let mut b = BulkConfig::bsc_dypvt();
            b.private_buffer = cap;
            let r = run_app(Model::Bulk(b), &by_name(app).unwrap(), budget);
            cells.push(format!("{:.2}", r.write_set));
            log.record(app, &format!("privbuf-{cap}"), &r);
        }
        t.row(cells);
        eprintln!("  priv-buffer {app} done");
    }
    println!("{t}");
    println!("(A too-small buffer overflows into W: the write set grows back.)\n");

    // ------------------------------------------------------------------
    println!("Ablation 3 — chunk slots per core (BSCdypvt; 1 disables chunk overlap)\n");
    let mut t = Table::new(vec![
        "App".into(),
        "1 slot".into(),
        "2 slots".into(),
        "4 slots".into(),
    ]);
    for app in apps {
        let mut cells = vec![app.to_string()];
        let mut base_cycles = 0u64;
        for slots in [1u32, 2, 4] {
            let mut b = BulkConfig::bsc_dypvt();
            b.chunks_per_core = slots;
            let r = run_app(Model::Bulk(b), &by_name(app).unwrap(), budget);
            if slots == 1 {
                base_cycles = r.cycles;
            }
            cells.push(format!("{:.3}", base_cycles as f64 / r.cycles as f64));
            log.record(app, &format!("slots-{slots}"), &r);
        }
        t.row(cells);
        eprintln!("  chunk-slots {app} done");
    }
    println!("{t}");
    println!("(Speedup over the 1-slot machine: overlapping execution with commit helps.)\n");

    // ------------------------------------------------------------------
    println!("Ablation 4 — distributed arbiter (§4.2.3): 1 arbiter vs 4 arbiters + G-arbiter\n");
    let mut t = Table::new(vec![
        "App".into(),
        "1-arb cycles".into(),
        "4-arb cycles".into(),
        "ratio".into(),
    ]);
    for app in apps {
        let single = run_custom(
            SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt())),
            app,
            budget,
        );
        let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt().with_arbiters(4)));
        cfg.dirs = 4;
        let multi = run_custom(cfg, app, budget);
        log.record(app, "arb-1", &single);
        log.record(app, "arb-4", &multi);
        t.row(vec![
            app.to_string(),
            single.cycles.to_string(),
            multi.cycles.to_string(),
            format!("{:.3}", single.cycles as f64 / multi.cycles as f64),
        ]);
        eprintln!("  arbiters {app} done");
    }
    println!("{t}");
    println!("(On an 8-core CMP the single arbiter is not a bottleneck — the paper's claim;");
    println!(" the distributed design exists for larger machines.)");
    log.write_if_requested();
}
