//! Figure 9: performance of SC, RC, SC++, BSCbase, BSCdypvt, BSCexact,
//! BSCstpvt across the paper's 13 applications, normalized to RC.
//!
//! `cargo run --release -p bulksc-bench --bin fig9 [-- fast]`
//! (`BULKSC_BUDGET=N` scales run length.)

use bulksc::{BulkConfig, Model};
use bulksc_bench::artifact::RunLog;
use bulksc_bench::{budget_from_env, geomean, run_app};
use bulksc_cpu::BaselineModel;
use bulksc_stats::Table;
use bulksc_trace::Json;
use bulksc_workloads::catalog;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let mut log = RunLog::new("fig9", budget);
    let configs: Vec<Model> = vec![
        Model::Baseline(BaselineModel::Sc),
        Model::Baseline(BaselineModel::Rc),
        Model::Baseline(BaselineModel::Scpp),
        Model::Bulk(BulkConfig::bsc_base()),
        Model::Bulk(BulkConfig::bsc_dypvt()),
        Model::Bulk(BulkConfig::bsc_exact()),
        Model::Bulk(BulkConfig::bsc_stpvt()),
    ];

    println!("Figure 9 — Speedup over RC ({budget} instructions/core, 8 cores)\n");
    let mut headers = vec!["App".to_string()];
    headers.extend(configs.iter().map(|m| m.name()));
    let mut table = Table::new(headers);

    // Per-config speedups for SPLASH-2 geometric mean.
    let mut splash_speedups: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for app in catalog() {
        let rc = run_app(Model::Baseline(BaselineModel::Rc), &app, budget);
        let mut cells = vec![app.name.to_string()];
        for (i, m) in configs.iter().enumerate() {
            let r = if matches!(m, Model::Baseline(BaselineModel::Rc)) {
                rc.clone()
            } else {
                run_app(m.clone(), &app, budget)
            };
            let speedup = rc.cycles as f64 / r.cycles as f64;
            if app.name != "sjbb2k" && app.name != "sweb2005" {
                splash_speedups[i].push(speedup);
            }
            cells.push(format!("{speedup:.3}"));
            log.record(app.name, &m.name(), &r);
        }
        table.row(cells);
        eprintln!("  {} done", app.name);
    }

    let mut gm = vec!["SP2-G.M.".to_string()];
    let mut gm_json = Json::obj([]);
    for (i, s) in splash_speedups.iter().enumerate() {
        gm.push(format!("{:.3}", geomean(s)));
        gm_json.push(configs[i].name(), geomean(s).into());
    }
    table.row(gm);
    println!("{table}");
    println!("Paper shape: BSCdypvt ≈ RC ≈ SC++; SC below; radix the BSCdypvt outlier (aliasing).");
    log.extra("splash2_geomean_speedup_over_rc", gm_json);
    log.write_if_requested();
}
