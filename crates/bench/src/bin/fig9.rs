//! Figure 9: performance of SC, RC, SC++, BSCbase, BSCdypvt, BSCexact,
//! BSCstpvt across the paper's 13 applications, normalized to RC.
//!
//! `cargo run --release -p bulksc-bench --bin fig9 [-- fast] [--jobs N] [--metrics[=MS]] [--xray]`
//! (`BULKSC_BUDGET=N` scales run length; `BULKSC_JOBS` sets the default
//! worker count. Output is byte-identical at any `--jobs` value.)

use bulksc_bench::heartbeat::Heartbeat;
use bulksc_bench::{budget_from_env, figures, pool};

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let heartbeat = Heartbeat::maybe_start("fig9");
    let out = figures::fig9(budget, pool::jobs_from_cli());
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    print!("{}", out.text);
    out.log.write_if_requested();
    bulksc_bench::xray::capture_if_requested("fig9", budget);
}
