//! Figure 10: BSCdypvt performance with chunks of 1000 / 2000 / 4000
//! instructions, plus 4000-exact, normalized to RC.
//!
//! `cargo run --release -p bulksc-bench --bin fig10 [-- fast] [--jobs N] [--metrics[=MS]] [--xray]`

use bulksc_bench::heartbeat::Heartbeat;
use bulksc_bench::{budget_from_env, figures, pool};

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let heartbeat = Heartbeat::maybe_start("fig10");
    let out = figures::fig10(budget, pool::jobs_from_cli());
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    print!("{}", out.text);
    out.log.write_if_requested();
    bulksc_bench::xray::capture_if_requested("fig10", budget);
}
