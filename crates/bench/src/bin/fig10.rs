//! Figure 10: BSCdypvt performance with chunks of 1000 / 2000 / 4000
//! instructions, plus 4000-exact, normalized to RC.
//!
//! `cargo run --release -p bulksc-bench --bin fig10 [-- fast]`

use bulksc::{BulkConfig, Model};
use bulksc_bench::artifact::RunLog;
use bulksc_bench::{budget_from_env, geomean, run_app};
use bulksc_cpu::BaselineModel;
use bulksc_stats::Table;
use bulksc_trace::Json;
use bulksc_workloads::catalog;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let mut log = RunLog::new("fig10", budget);
    let configs: Vec<(String, Model)> = vec![
        (
            "1000".into(),
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(1000)),
        ),
        (
            "2000".into(),
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(2000)),
        ),
        (
            "4000".into(),
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(4000)),
        ),
        (
            "4000-exact".into(),
            Model::Bulk(BulkConfig::bsc_exact().with_chunk_size(4000)),
        ),
    ];

    println!(
        "Figure 10 — BSCdypvt chunk-size sweep, speedup over RC ({budget} instructions/core)\n"
    );
    let mut headers = vec!["App".to_string(), "RC".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let mut table = Table::new(headers);
    let mut splash: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for app in catalog() {
        let rc = run_app(Model::Baseline(BaselineModel::Rc), &app, budget);
        log.record(app.name, "RC", &rc);
        let mut cells = vec![app.name.to_string(), "1.000".to_string()];
        for (i, (label, m)) in configs.iter().enumerate() {
            let r = run_app(m.clone(), &app, budget);
            let speedup = rc.cycles as f64 / r.cycles as f64;
            if app.name != "sjbb2k" && app.name != "sweb2005" {
                splash[i].push(speedup);
            }
            cells.push(format!("{speedup:.3}"));
            log.record(app.name, label, &r);
        }
        table.row(cells);
        eprintln!("  {} done", app.name);
    }
    let mut gm = vec!["SP2-G.M.".to_string(), "1.000".to_string()];
    let mut gm_json = Json::obj([]);
    for (i, s) in splash.iter().enumerate() {
        gm.push(format!("{:.3}", geomean(s)));
        gm_json.push(&configs[i].0, geomean(s).into());
    }
    table.row(gm);
    println!("{table}");
    log.extra("splash2_geomean_speedup_over_rc", gm_json);
    log.write_if_requested();
    println!("Paper shape: larger chunks degrade slightly; 4000-exact recovers most of it,");
    println!("showing the degradation is signature aliasing, not real sharing.");
}
