//! `bulksc-perf` — host-performance benchmark suite.
//!
//! Runs the pinned scenario matrix (see `bulksc_bench::perf`) with the
//! `bulksc-prof` self-profiler attached, prints a summary table plus
//! per-phase breakdowns, writes the schema-stamped `results/perf.json`,
//! and appends to the repo-root `BENCH_<label>.json` trajectory.
//!
//! ```text
//! bulksc-perf [--label NAME] [--reps N] [--warmup N] [--budget N]
//!             [--out PATH] [--fast] [--no-trajectory] [--jobs N]
//!             [--metrics[=MS]]
//! ```
//!
//! `--fast` is the CI smoke setting: small budget, 2 reps. `--jobs N`
//! runs scenarios on N host worker threads (reps stay serial within each
//! scenario; concurrent scenarios share host cores, so prefer `--jobs 1`
//! for undisturbed absolute numbers). Exit code 0 on success, 2 on usage
//! errors.

use bulksc_bench::heartbeat::Heartbeat;
use bulksc_bench::perf::{matrix, perf_json, prof_report_text, render_summary, run_suite};
use bulksc_bench::{budget_from_env, perf, pool};

fn fail_usage(msg: &str) -> ! {
    eprintln!("bulksc-perf: {msg}");
    eprintln!(
        "usage: bulksc-perf [--label NAME] [--reps N] [--warmup N] [--budget N] \
         [--out PATH] [--fast] [--no-trajectory] [--jobs N] [--metrics[=MS]]"
    );
    std::process::exit(2);
}

fn main() {
    let mut label = "seed".to_string();
    let mut reps: u32 = 5;
    let mut warmup: u32 = 1;
    let mut budget: u64 = budget_from_env().min(10_000);
    let mut out = "results/perf.json".to_string();
    let mut trajectory = true;
    let mut jobs: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| fail_usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--label" => label = value("--label"),
            "--reps" => {
                reps = value("--reps")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--reps needs an integer"))
            }
            "--warmup" => {
                warmup = value("--warmup")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--warmup needs an integer"))
            }
            "--budget" => {
                budget = value("--budget")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--budget needs an integer"))
            }
            "--out" => out = value("--out"),
            "--fast" => {
                budget = 2_000;
                reps = 2;
                warmup = 1;
            }
            "--no-trajectory" => trajectory = false,
            "--jobs" => match value("--jobs").parse::<usize>() {
                Ok(n) if n >= 1 => jobs = Some(n),
                _ => fail_usage("--jobs needs a positive integer"),
            },
            // Validated (and re-read) by Heartbeat::maybe_start below.
            s if s == "--metrics" || s.starts_with("--metrics=") => {}
            other => fail_usage(&format!("unknown argument {other:?}")),
        }
    }
    if reps == 0 {
        fail_usage("--reps must be at least 1");
    }
    let jobs = jobs.unwrap_or_else(pool::default_width);

    let cells = matrix();
    println!(
        "bulksc-perf: {} scenarios, budget {budget} instructions/core, \
         {warmup} warmup + {reps} measured reps each, {jobs} host job(s)",
        cells.len()
    );
    let heartbeat = Heartbeat::maybe_start("perf");
    let results = run_suite(&cells, budget, warmup, reps, jobs);
    if let Some(hb) = heartbeat {
        hb.finish();
    }

    println!("\n{}", render_summary(&results));
    let doc = perf_json(&results, &label, budget, warmup, reps);
    let text = doc.to_string();
    match prof_report_text(&text, "<memory>") {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("bulksc-perf: internal: {e}"),
    }
    match perf::trace_overhead(&text, "<memory>") {
        Ok(ratio) => println!("tracing overhead (bsc8 / bsc8_trace): {ratio:.2}x"),
        Err(e) => eprintln!("bulksc-perf: {e}"),
    }
    match perf::metrics_overhead(&text, "<memory>") {
        Ok(ratio) => println!("metrics overhead (bsc8 / bsc8_metrics): {ratio:.2}x"),
        Err(e) => eprintln!("bulksc-perf: {e}"),
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("bulksc-perf: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&out, format!("{text}\n")) {
        eprintln!("bulksc-perf: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    if trajectory {
        let path = format!("BENCH_{label}.json");
        let existing = std::fs::read_to_string(&path).ok();
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        match perf::trajectory_append(existing.as_deref(), &doc, unix_secs) {
            Ok(updated) => {
                if let Err(e) = std::fs::write(&path, updated) {
                    eprintln!("bulksc-perf: cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!("appended to {path}");
            }
            Err(e) => {
                eprintln!("bulksc-perf: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
