fn main() {
    std::process::exit(bulksc_bench::fuzz::main());
}
