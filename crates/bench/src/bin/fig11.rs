//! Figure 11: interconnection-network traffic normalized to RC, broken
//! down into Rd/Wr, RdSig, WrSig, Inv, and Other bytes, for
//! R = RC, E = BSCexact, N = BSCdypvt without the RSig optimization, and
//! B = BSCdypvt.
//!
//! `cargo run --release -p bulksc-bench --bin fig11 [-- fast] [--jobs N] [--metrics[=MS]] [--xray]`

use bulksc_bench::heartbeat::Heartbeat;
use bulksc_bench::{budget_from_env, figures, pool};

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let heartbeat = Heartbeat::maybe_start("fig11");
    let out = figures::fig11(budget, pool::jobs_from_cli());
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    print!("{}", out.text);
    out.log.write_if_requested();
    bulksc_bench::xray::capture_if_requested("fig11", budget);
}
