//! Figure 11: interconnection-network traffic normalized to RC, broken
//! down into Rd/Wr, RdSig, WrSig, Inv, and Other bytes, for
//! R = RC, E = BSCexact, N = BSCdypvt without the RSig optimization, and
//! B = BSCdypvt.
//!
//! `cargo run --release -p bulksc-bench --bin fig11 [-- fast]`

use bulksc::{BulkConfig, Model, SimReport};
use bulksc_bench::artifact::RunLog;
use bulksc_bench::{budget_from_env, run_app};
use bulksc_cpu::BaselineModel;
use bulksc_net::TrafficClass;
use bulksc_stats::Table;
use bulksc_workloads::catalog;

fn breakdown(r: &SimReport, rc_total: u64) -> Vec<String> {
    let mut cells: Vec<String> = TrafficClass::ALL
        .iter()
        .map(|&c| format!("{:.3}", r.traffic.bytes(c) as f64 / rc_total as f64))
        .collect();
    cells.push(format!("{:.3}", r.traffic.total() as f64 / rc_total as f64));
    cells
}

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let mut log = RunLog::new("fig11", budget);
    let configs: Vec<(&str, Model)> = vec![
        ("R", Model::Baseline(BaselineModel::Rc)),
        ("E", Model::Bulk(BulkConfig::bsc_exact())),
        ("N", Model::Bulk(BulkConfig::bsc_dypvt().without_rsig())),
        ("B", Model::Bulk(BulkConfig::bsc_dypvt())),
    ];

    println!("Figure 11 — Traffic normalized to RC ({budget} instructions/core)");
    println!("Bars: R=RC  E=BSCexact  N=BSCdypvt w/o RSig opt  B=BSCdypvt\n");
    let mut headers = vec!["App/Bar".to_string()];
    headers.extend(TrafficClass::ALL.iter().map(|c| c.label().to_string()));
    headers.push("Total".to_string());
    let mut table = Table::new(headers);

    let mut dypvt_overheads = Vec::new();
    for app in catalog() {
        let rc = run_app(Model::Baseline(BaselineModel::Rc), &app, budget);
        let rc_total = rc.traffic.total().max(1);
        for (bar, m) in &configs {
            let r = if *bar == "R" {
                rc.clone()
            } else {
                run_app(m.clone(), &app, budget)
            };
            let mut cells = vec![format!("{} {bar}", app.name)];
            cells.extend(breakdown(&r, rc_total));
            if *bar == "B" {
                dypvt_overheads.push(r.traffic.total() as f64 / rc_total as f64 - 1.0);
            }
            log.record(app.name, bar, &r);
            table.row(cells);
        }
        eprintln!("  {} done", app.name);
    }
    println!("{table}");
    let avg = dypvt_overheads.iter().sum::<f64>() / dypvt_overheads.len() as f64;
    println!(
        "BSCdypvt average traffic overhead over RC: {:.1}% (paper: 5–13%)",
        avg * 100.0
    );
    println!("Paper shape: RdSig nearly vanishes from B vs N (the RSig optimization).");
    log.extra("dypvt_avg_traffic_overhead_over_rc", avg.into());
    log.write_if_requested();
}
