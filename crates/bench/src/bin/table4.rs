//! Table 4: the commit process and coherence operations in BSCdypvt —
//! signature expansion in the directory (lookups per commit, unnecessary
//! lookups/updates from aliasing, nodes per W signature) and the arbiter
//! (pending W signatures, W-list occupancy, RSig fallbacks, empty-W
//! commits).
//!
//! `cargo run --release -p bulksc-bench --bin table4 [-- fast]`

use bulksc::{BulkConfig, Model};
use bulksc_bench::artifact::RunLog;
use bulksc_bench::{budget_from_env, run_app};
use bulksc_stats::Table;
use bulksc_workloads::catalog;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let mut log = RunLog::new("table4", budget);

    println!("Table 4 — Commit process and coherence operations in BSCdypvt");
    println!("({budget} instructions/core)\n");
    let mut table = Table::new(vec![
        "App".into(),
        "Lookups/Commit".into(),
        "UnnecLkup%".into(),
        "UnnecUpd%".into(),
        "Nodes/WSig".into(),
        "PendWSigs".into(),
        "NonEmptyW%".into(),
        "RSigReq%".into(),
        "EmptyW%".into(),
    ]);

    for app in catalog() {
        let r = run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, budget);
        log.record(app.name, "BSCdypvt", &r);
        table.row(vec![
            app.name.to_string(),
            format!("{:.1}", r.lookups_per_commit),
            format!("{:.1}", r.unnecessary_lookups_pct),
            format!("{:.1}", r.unnecessary_updates_pct),
            format!("{:.2}", r.nodes_per_wsig),
            format!("{:.2}", r.pending_w_sigs),
            format!("{:.1}", r.nonempty_w_pct),
            format!("{:.1}", r.rsig_required_pct),
            format!("{:.1}", r.empty_w_pct),
        ]);
        eprintln!("  {} done", app.name);
    }
    println!("{table}");
    println!("Paper shape: few lookups per commit; unnecessary updates ≈ 0; the arbiter");
    println!("is mostly idle; most SPLASH commits have an empty W; RSig rarely needed.");
    log.write_if_requested();
}
