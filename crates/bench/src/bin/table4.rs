//! Table 4: the commit process and coherence operations in BSCdypvt —
//! signature expansion in the directory (lookups per commit, unnecessary
//! lookups/updates from aliasing, nodes per W signature) and the arbiter
//! (pending W signatures, W-list occupancy, RSig fallbacks, empty-W
//! commits).
//!
//! `cargo run --release -p bulksc-bench --bin table4 [-- fast] [--jobs N] [--metrics[=MS]] [--xray]`

use bulksc_bench::heartbeat::Heartbeat;
use bulksc_bench::{budget_from_env, figures, pool};

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let heartbeat = Heartbeat::maybe_start("table4");
    let out = figures::table4(budget, pool::jobs_from_cli());
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    print!("{}", out.text);
    out.log.write_if_requested();
    bulksc_bench::xray::capture_if_requested("table4", budget);
}
