//! Table 3: characterization of BulkSC — squashed instructions (for
//! BSCexact / BSCdypvt / BSCbase), average set sizes, speculative line
//! displacements, Private Buffer supplies, and aliasing-caused extra cache
//! invalidations.
//!
//! `cargo run --release -p bulksc-bench --bin table3 [-- fast] [--jobs N] [--metrics[=MS]] [--xray]`

use bulksc_bench::heartbeat::Heartbeat;
use bulksc_bench::{budget_from_env, figures, pool};

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let heartbeat = Heartbeat::maybe_start("table3");
    let out = figures::table3(budget, pool::jobs_from_cli());
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    print!("{}", out.text);
    out.log.write_if_requested();
    bulksc_bench::xray::capture_if_requested("table3", budget);
}
