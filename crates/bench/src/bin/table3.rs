//! Table 3: characterization of BulkSC — squashed instructions (for
//! BSCexact / BSCdypvt / BSCbase), average set sizes, speculative line
//! displacements, Private Buffer supplies, and aliasing-caused extra cache
//! invalidations.
//!
//! `cargo run --release -p bulksc-bench --bin table3 [-- fast]`

use bulksc::{BulkConfig, Model};
use bulksc_bench::artifact::RunLog;
use bulksc_bench::{budget_from_env, run_app};
use bulksc_stats::Table;
use bulksc_workloads::catalog;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let budget = if fast { 6_000 } else { budget_from_env() };
    let mut log = RunLog::new("table3", budget);

    println!("Table 3 — Characterization of BulkSC ({budget} instructions/core)");
    println!("(unless marked, data is for BSCdypvt, as in the paper)\n");
    let mut table = Table::new(vec![
        "App".into(),
        "Sq%exact".into(),
        "Sq%dypvt".into(),
        "Sq%base".into(),
        "Read".into(),
        "Write".into(),
        "PrivW".into(),
        "RdDisp/100k".into(),
        "PrivBuf/1k".into(),
        "ExtraInv/1k".into(),
    ]);

    for app in catalog() {
        let exact = run_app(Model::Bulk(BulkConfig::bsc_exact()), &app, budget);
        let dypvt = run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, budget);
        let base = run_app(Model::Bulk(BulkConfig::bsc_base()), &app, budget);
        log.record(app.name, "BSCexact", &exact);
        log.record(app.name, "BSCdypvt", &dypvt);
        log.record(app.name, "BSCbase", &base);
        table.row(vec![
            app.name.to_string(),
            format!("{:.2}", exact.squashed_pct),
            format!("{:.2}", dypvt.squashed_pct),
            format!("{:.2}", base.squashed_pct),
            format!("{:.1}", dypvt.read_set),
            format!("{:.1}", dypvt.write_set),
            format!("{:.1}", dypvt.priv_write_set),
            format!("{:.1}", dypvt.read_displacements_per_100k),
            format!("{:.1}", dypvt.priv_supplies_per_1k),
            format!("{:.1}", dypvt.extra_invs_per_1k),
        ]);
        eprintln!("  {} done", app.name);
    }
    println!("{table}");
    println!("Paper shape: Sq%base >> Sq%dypvt ≈ Sq%exact (aliasing dominates BSCbase);");
    println!("PrivW >> Write; read-set displacements are harmless (no squashes).");
    log.write_if_requested();
}
