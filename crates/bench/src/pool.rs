//! Deterministic host-side worker pool — re-exported from
//! [`bulksc_pool`].
//!
//! The pool started life in this crate (PR 5) but now also backs the
//! streaming SC checker in `bulksc-check`, which `bulksc-bench` depends
//! on; the implementation therefore lives in its own leaf crate and this
//! module re-exports it so every existing `crate::pool::...` /
//! `bulksc_bench::pool::...` call site keeps working unchanged.

pub use bulksc_pool::*;
