//! Library implementations of the paper's figure/table experiments.
//!
//! Each function here is the whole program behind one `src/bin/` binary
//! (`fig9`, `fig10`, `fig11`, `table3`, `table4`, `ablations`): it runs
//! the experiment's app×config matrix on the [`crate::pool`] worker pool
//! and returns the rendered text plus the populated
//! [`RunLog`](crate::artifact::RunLog) artifact. The binaries are thin
//! argument-parsing wrappers; the golden-figure and parallel-determinism
//! tests call these functions directly.
//!
//! Determinism: one pool job per application row. Every job is a pure
//! function of `(app, budget)` — it builds its own `System` per run, with
//! the workspace-wide pinned [`SEED`](crate::SEED) — and the table/artifact
//! assembly below walks the results in catalog order. The returned text
//! and the artifact JSON are therefore byte-identical at any job count;
//! only the interleaving of per-app progress lines on *stderr* varies.

use crate::artifact::RunLog;
use crate::pool::{self, Job};
use crate::{geomean, run_app, SEED};
use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_cpu::BaselineModel;
use bulksc_net::TrafficClass;
use bulksc_sig::SignatureConfig;
use bulksc_stats::Table;
use bulksc_trace::Json;
use bulksc_workloads::{by_name, catalog, SyntheticApp, ThreadProgram};
use std::fmt::Write as _;

/// The rendered stdout text and the `--json` artifact of one experiment.
pub struct FigureOutput {
    /// Exactly what the binary prints to stdout.
    pub text: String,
    /// The populated run log (written as `results/<name>.json` on
    /// `--json`).
    pub log: RunLog,
}

fn is_rc(m: &Model) -> bool {
    matches!(m, Model::Baseline(BaselineModel::Rc))
}

/// Figure 9: speedup over RC for 7 configs × 13 apps.
pub fn fig9(budget: u64, jobs: usize) -> FigureOutput {
    let mut log = RunLog::new("fig9", budget);
    let configs: Vec<Model> = vec![
        Model::Baseline(BaselineModel::Sc),
        Model::Baseline(BaselineModel::Rc),
        Model::Baseline(BaselineModel::Scpp),
        Model::Bulk(BulkConfig::bsc_base()),
        Model::Bulk(BulkConfig::bsc_dypvt()),
        Model::Bulk(BulkConfig::bsc_exact()),
        Model::Bulk(BulkConfig::bsc_stpvt()),
    ];
    let apps = catalog();

    // One job per app: RC once, reused for the RC column (and as the
    // speedup denominator), exactly like the serial loop did.
    let per_app: Vec<Vec<SimReport>> = pool::run_all(
        jobs,
        apps.iter()
            .map(|app| {
                let app = *app;
                let configs = &configs;
                Job::new(format!("fig9 {}", app.name), move || {
                    let rc = run_app(Model::Baseline(BaselineModel::Rc), &app, budget);
                    let out: Vec<SimReport> = configs
                        .iter()
                        .map(|m| {
                            if is_rc(m) {
                                rc.clone()
                            } else {
                                run_app(m.clone(), &app, budget)
                            }
                        })
                        .collect();
                    eprintln!("  {} done", app.name);
                    out
                })
            })
            .collect(),
    );

    let mut text = format!("Figure 9 — Speedup over RC ({budget} instructions/core, 8 cores)\n\n");
    let mut headers = vec!["App".to_string()];
    headers.extend(configs.iter().map(|m| m.name()));
    let mut table = Table::new(headers);
    let mut splash_speedups: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for (app, reports) in apps.iter().zip(&per_app) {
        let rc_cycles = reports[1].cycles; // configs[1] is RC
        let mut cells = vec![app.name.to_string()];
        for (i, (m, r)) in configs.iter().zip(reports).enumerate() {
            let speedup = rc_cycles as f64 / r.cycles as f64;
            if app.name != "sjbb2k" && app.name != "sweb2005" {
                splash_speedups[i].push(speedup);
            }
            cells.push(format!("{speedup:.3}"));
            log.record(app.name, &m.name(), r);
        }
        table.row(cells);
    }

    let mut gm = vec!["SP2-G.M.".to_string()];
    let mut gm_json = Json::obj([]);
    for (i, s) in splash_speedups.iter().enumerate() {
        gm.push(format!("{:.3}", geomean(s)));
        gm_json.push(configs[i].name(), geomean(s).into());
    }
    table.row(gm);
    writeln!(text, "{table}").unwrap();
    text.push_str(
        "Paper shape: BSCdypvt ≈ RC ≈ SC++; SC below; radix the BSCdypvt outlier (aliasing).\n",
    );
    log.extra("splash2_geomean_speedup_over_rc", gm_json);
    FigureOutput { text, log }
}

/// Figure 10: BSCdypvt chunk-size sweep, speedup over RC.
pub fn fig10(budget: u64, jobs: usize) -> FigureOutput {
    let mut log = RunLog::new("fig10", budget);
    let configs: Vec<(String, Model)> = vec![
        (
            "1000".into(),
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(1000)),
        ),
        (
            "2000".into(),
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(2000)),
        ),
        (
            "4000".into(),
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(4000)),
        ),
        (
            "4000-exact".into(),
            Model::Bulk(BulkConfig::bsc_exact().with_chunk_size(4000)),
        ),
    ];
    let apps = catalog();

    // One job per app: element 0 is the RC baseline, then one report per
    // chunk-size config.
    let per_app: Vec<Vec<SimReport>> = pool::run_all(
        jobs,
        apps.iter()
            .map(|app| {
                let app = *app;
                let configs = &configs;
                Job::new(format!("fig10 {}", app.name), move || {
                    let mut out = vec![run_app(Model::Baseline(BaselineModel::Rc), &app, budget)];
                    out.extend(
                        configs
                            .iter()
                            .map(|(_, m)| run_app(m.clone(), &app, budget)),
                    );
                    eprintln!("  {} done", app.name);
                    out
                })
            })
            .collect(),
    );

    let mut text = format!(
        "Figure 10 — BSCdypvt chunk-size sweep, speedup over RC ({budget} instructions/core)\n\n"
    );
    let mut headers = vec!["App".to_string(), "RC".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let mut table = Table::new(headers);
    let mut splash: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for (app, reports) in apps.iter().zip(&per_app) {
        let rc = &reports[0];
        log.record(app.name, "RC", rc);
        let mut cells = vec![app.name.to_string(), "1.000".to_string()];
        for (i, ((label, _), r)) in configs.iter().zip(&reports[1..]).enumerate() {
            let speedup = rc.cycles as f64 / r.cycles as f64;
            if app.name != "sjbb2k" && app.name != "sweb2005" {
                splash[i].push(speedup);
            }
            cells.push(format!("{speedup:.3}"));
            log.record(app.name, label, r);
        }
        table.row(cells);
    }
    let mut gm = vec!["SP2-G.M.".to_string(), "1.000".to_string()];
    let mut gm_json = Json::obj([]);
    for (i, s) in splash.iter().enumerate() {
        gm.push(format!("{:.3}", geomean(s)));
        gm_json.push(&configs[i].0, geomean(s).into());
    }
    table.row(gm);
    writeln!(text, "{table}").unwrap();
    log.extra("splash2_geomean_speedup_over_rc", gm_json);
    text.push_str("Paper shape: larger chunks degrade slightly; 4000-exact recovers most of it,\n");
    text.push_str("showing the degradation is signature aliasing, not real sharing.\n");
    FigureOutput { text, log }
}

fn traffic_breakdown(r: &SimReport, rc_total: u64) -> Vec<String> {
    let mut cells: Vec<String> = TrafficClass::ALL
        .iter()
        .map(|&c| format!("{:.3}", r.traffic.bytes(c) as f64 / rc_total as f64))
        .collect();
    cells.push(format!("{:.3}", r.traffic.total() as f64 / rc_total as f64));
    cells
}

/// Figure 11: traffic normalized to RC, broken down by category.
pub fn fig11(budget: u64, jobs: usize) -> FigureOutput {
    let mut log = RunLog::new("fig11", budget);
    let configs: Vec<(&str, Model)> = vec![
        ("R", Model::Baseline(BaselineModel::Rc)),
        ("E", Model::Bulk(BulkConfig::bsc_exact())),
        ("N", Model::Bulk(BulkConfig::bsc_dypvt().without_rsig())),
        ("B", Model::Bulk(BulkConfig::bsc_dypvt())),
    ];
    let apps = catalog();

    let per_app: Vec<Vec<SimReport>> = pool::run_all(
        jobs,
        apps.iter()
            .map(|app| {
                let app = *app;
                let configs = &configs;
                Job::new(format!("fig11 {}", app.name), move || {
                    let rc = run_app(Model::Baseline(BaselineModel::Rc), &app, budget);
                    let out: Vec<SimReport> = configs
                        .iter()
                        .map(|(bar, m)| {
                            if *bar == "R" {
                                rc.clone()
                            } else {
                                run_app(m.clone(), &app, budget)
                            }
                        })
                        .collect();
                    eprintln!("  {} done", app.name);
                    out
                })
            })
            .collect(),
    );

    let mut text = format!("Figure 11 — Traffic normalized to RC ({budget} instructions/core)\n");
    text.push_str("Bars: R=RC  E=BSCexact  N=BSCdypvt w/o RSig opt  B=BSCdypvt\n\n");
    let mut headers = vec!["App/Bar".to_string()];
    headers.extend(TrafficClass::ALL.iter().map(|c| c.label().to_string()));
    headers.push("Total".to_string());
    let mut table = Table::new(headers);

    let mut dypvt_overheads = Vec::new();
    for (app, reports) in apps.iter().zip(&per_app) {
        let rc_total = reports[0].traffic.total().max(1);
        for ((bar, _), r) in configs.iter().zip(reports) {
            let mut cells = vec![format!("{} {bar}", app.name)];
            cells.extend(traffic_breakdown(r, rc_total));
            if *bar == "B" {
                dypvt_overheads.push(r.traffic.total() as f64 / rc_total as f64 - 1.0);
            }
            log.record(app.name, bar, r);
            table.row(cells);
        }
    }
    writeln!(text, "{table}").unwrap();
    let avg = dypvt_overheads.iter().sum::<f64>() / dypvt_overheads.len() as f64;
    writeln!(
        text,
        "BSCdypvt average traffic overhead over RC: {:.1}% (paper: 5–13%)",
        avg * 100.0
    )
    .unwrap();
    text.push_str("Paper shape: RdSig nearly vanishes from B vs N (the RSig optimization).\n");
    log.extra("dypvt_avg_traffic_overhead_over_rc", avg.into());
    FigureOutput { text, log }
}

/// Table 3: characterization of BulkSC.
pub fn table3(budget: u64, jobs: usize) -> FigureOutput {
    let mut log = RunLog::new("table3", budget);
    let apps = catalog();

    // One job per app: [BSCexact, BSCdypvt, BSCbase].
    let per_app: Vec<Vec<SimReport>> = pool::run_all(
        jobs,
        apps.iter()
            .map(|app| {
                let app = *app;
                Job::new(format!("table3 {}", app.name), move || {
                    let out = vec![
                        run_app(Model::Bulk(BulkConfig::bsc_exact()), &app, budget),
                        run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, budget),
                        run_app(Model::Bulk(BulkConfig::bsc_base()), &app, budget),
                    ];
                    eprintln!("  {} done", app.name);
                    out
                })
            })
            .collect(),
    );

    let mut text = format!("Table 3 — Characterization of BulkSC ({budget} instructions/core)\n");
    text.push_str("(unless marked, data is for BSCdypvt, as in the paper)\n\n");
    let mut table = Table::new(vec![
        "App".into(),
        "Sq%exact".into(),
        "Sq%dypvt".into(),
        "Sq%base".into(),
        "Read".into(),
        "Write".into(),
        "PrivW".into(),
        "RdDisp/100k".into(),
        "PrivBuf/1k".into(),
        "ExtraInv/1k".into(),
    ]);

    for (app, reports) in apps.iter().zip(&per_app) {
        let [exact, dypvt, base] = &reports[..] else {
            unreachable!("table3 job returns three reports");
        };
        log.record(app.name, "BSCexact", exact);
        log.record(app.name, "BSCdypvt", dypvt);
        log.record(app.name, "BSCbase", base);
        table.row(vec![
            app.name.to_string(),
            format!("{:.2}", exact.squashed_pct),
            format!("{:.2}", dypvt.squashed_pct),
            format!("{:.2}", base.squashed_pct),
            format!("{:.1}", dypvt.read_set),
            format!("{:.1}", dypvt.write_set),
            format!("{:.1}", dypvt.priv_write_set),
            format!("{:.1}", dypvt.read_displacements_per_100k),
            format!("{:.1}", dypvt.priv_supplies_per_1k),
            format!("{:.1}", dypvt.extra_invs_per_1k),
        ]);
    }
    writeln!(text, "{table}").unwrap();
    text.push_str("Paper shape: Sq%base >> Sq%dypvt ≈ Sq%exact (aliasing dominates BSCbase);\n");
    text.push_str("PrivW >> Write; read-set displacements are harmless (no squashes).\n");
    FigureOutput { text, log }
}

/// Table 4: commit process and coherence operations in BSCdypvt.
pub fn table4(budget: u64, jobs: usize) -> FigureOutput {
    let mut log = RunLog::new("table4", budget);
    let apps = catalog();

    let per_app: Vec<SimReport> = pool::run_all(
        jobs,
        apps.iter()
            .map(|app| {
                let app = *app;
                Job::new(format!("table4 {}", app.name), move || {
                    let r = run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, budget);
                    eprintln!("  {} done", app.name);
                    r
                })
            })
            .collect(),
    );

    let mut text = String::from("Table 4 — Commit process and coherence operations in BSCdypvt\n");
    writeln!(text, "({budget} instructions/core)\n").unwrap();
    let mut table = Table::new(vec![
        "App".into(),
        "Lookups/Commit".into(),
        "UnnecLkup%".into(),
        "UnnecUpd%".into(),
        "Nodes/WSig".into(),
        "PendWSigs".into(),
        "NonEmptyW%".into(),
        "RSigReq%".into(),
        "EmptyW%".into(),
    ]);

    for (app, r) in apps.iter().zip(&per_app) {
        log.record(app.name, "BSCdypvt", r);
        table.row(vec![
            app.name.to_string(),
            format!("{:.1}", r.lookups_per_commit),
            format!("{:.1}", r.unnecessary_lookups_pct),
            format!("{:.1}", r.unnecessary_updates_pct),
            format!("{:.2}", r.nodes_per_wsig),
            format!("{:.2}", r.pending_w_sigs),
            format!("{:.1}", r.nonempty_w_pct),
            format!("{:.1}", r.rsig_required_pct),
            format!("{:.1}", r.empty_w_pct),
        ]);
    }
    writeln!(text, "{table}").unwrap();
    text.push_str("Paper shape: few lookups per commit; unnecessary updates ≈ 0; the arbiter\n");
    text.push_str("is mostly idle; most SPLASH commits have an empty W; RSig rarely needed.\n");
    FigureOutput { text, log }
}

/// Run with full control over the system configuration (ablation 4 needs
/// a non-default directory count).
fn run_custom(mut cfg: SystemConfig, app: &str, budget: u64) -> SimReport {
    cfg.budget = budget;
    let params = by_name(app).expect("catalog app");
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(params, t, cfg.cores, SEED)) as Box<dyn ThreadProgram>)
        .collect();
    let mut sys = System::new(cfg, programs);
    assert!(sys.run(u64::MAX / 4), "run finished");
    SimReport::collect(&sys)
}

/// Design-choice ablations: signature size, Private Buffer capacity,
/// chunk slots per core, distributed arbitration.
pub fn ablations(budget: u64, jobs: usize) -> FigureOutput {
    let mut log = RunLog::new("ablations", budget);
    let apps = ["ocean", "radix", "raytrace"];
    let mut text = String::new();

    // ------------------------------------------------------------------
    text.push_str(
        "Ablation 1 — signature size (BSCdypvt, radix is the aliasing-sensitive app)\n\n",
    );
    let sig_results: Vec<Vec<SimReport>> = pool::run_all(
        jobs,
        apps.iter()
            .map(|&app| {
                Job::new(format!("ablation sig-size {app}"), move || {
                    let mut out = Vec::new();
                    for bits in [512u32, 1024, 2048, 4096] {
                        let mut b = BulkConfig::bsc_dypvt();
                        b.sig = SignatureConfig::with_total_bits(bits);
                        out.push(run_app(Model::Bulk(b), &by_name(app).unwrap(), budget));
                    }
                    out.push(run_app(
                        Model::Bulk(BulkConfig::bsc_exact()),
                        &by_name(app).unwrap(),
                        budget,
                    ));
                    eprintln!("  sig-size {app} done");
                    out
                })
            })
            .collect(),
    );
    let mut t = Table::new(vec![
        "App".into(),
        "512b Sq%".into(),
        "1Kb Sq%".into(),
        "2Kb Sq%".into(),
        "4Kb Sq%".into(),
        "exact Sq%".into(),
    ]);
    for (app, reports) in apps.iter().zip(&sig_results) {
        let mut cells = vec![app.to_string()];
        for (bits, r) in [512u32, 1024, 2048, 4096].iter().zip(reports) {
            cells.push(format!("{:.2}", r.squashed_pct));
            log.record(app, &format!("sig-{bits}b"), r);
        }
        let exact = &reports[4];
        cells.push(format!("{:.2}", exact.squashed_pct));
        log.record(app, "sig-exact", exact);
        t.row(cells);
    }
    writeln!(text, "{t}").unwrap();

    // ------------------------------------------------------------------
    text.push_str("Ablation 2 — Private Buffer capacity (BSCdypvt)\n\n");
    let buf_results: Vec<Vec<SimReport>> = pool::run_all(
        jobs,
        apps.iter()
            .map(|&app| {
                Job::new(format!("ablation priv-buffer {app}"), move || {
                    let out: Vec<SimReport> = [4u32, 12, 24, 48]
                        .iter()
                        .map(|&cap| {
                            let mut b = BulkConfig::bsc_dypvt();
                            b.private_buffer = cap;
                            run_app(Model::Bulk(b), &by_name(app).unwrap(), budget)
                        })
                        .collect();
                    eprintln!("  priv-buffer {app} done");
                    out
                })
            })
            .collect(),
    );
    let mut t = Table::new(vec![
        "App".into(),
        "cap4 W-set".into(),
        "cap12 W-set".into(),
        "cap24 W-set".into(),
        "cap48 W-set".into(),
    ]);
    for (app, reports) in apps.iter().zip(&buf_results) {
        let mut cells = vec![app.to_string()];
        for (cap, r) in [4u32, 12, 24, 48].iter().zip(reports) {
            cells.push(format!("{:.2}", r.write_set));
            log.record(app, &format!("privbuf-{cap}"), r);
        }
        t.row(cells);
    }
    writeln!(text, "{t}").unwrap();
    text.push_str("(A too-small buffer overflows into W: the write set grows back.)\n\n");

    // ------------------------------------------------------------------
    text.push_str("Ablation 3 — chunk slots per core (BSCdypvt; 1 disables chunk overlap)\n\n");
    let slot_results: Vec<Vec<SimReport>> = pool::run_all(
        jobs,
        apps.iter()
            .map(|&app| {
                Job::new(format!("ablation chunk-slots {app}"), move || {
                    let out: Vec<SimReport> = [1u32, 2, 4]
                        .iter()
                        .map(|&slots| {
                            let mut b = BulkConfig::bsc_dypvt();
                            b.chunks_per_core = slots;
                            run_app(Model::Bulk(b), &by_name(app).unwrap(), budget)
                        })
                        .collect();
                    eprintln!("  chunk-slots {app} done");
                    out
                })
            })
            .collect(),
    );
    let mut t = Table::new(vec![
        "App".into(),
        "1 slot".into(),
        "2 slots".into(),
        "4 slots".into(),
    ]);
    for (app, reports) in apps.iter().zip(&slot_results) {
        let mut cells = vec![app.to_string()];
        let base_cycles = reports[0].cycles;
        for (slots, r) in [1u32, 2, 4].iter().zip(reports) {
            cells.push(format!("{:.3}", base_cycles as f64 / r.cycles as f64));
            log.record(app, &format!("slots-{slots}"), r);
        }
        t.row(cells);
    }
    writeln!(text, "{t}").unwrap();
    text.push_str(
        "(Speedup over the 1-slot machine: overlapping execution with commit helps.)\n\n",
    );

    // ------------------------------------------------------------------
    text.push_str(
        "Ablation 4 — distributed arbiter (§4.2.3): 1 arbiter vs 4 arbiters + G-arbiter\n\n",
    );
    let arb_results: Vec<Vec<SimReport>> = pool::run_all(
        jobs,
        apps.iter()
            .map(|&app| {
                Job::new(format!("ablation arbiters {app}"), move || {
                    let single = run_custom(
                        SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt())),
                        app,
                        budget,
                    );
                    let mut cfg =
                        SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt().with_arbiters(4)));
                    cfg.dirs = 4;
                    let multi = run_custom(cfg, app, budget);
                    eprintln!("  arbiters {app} done");
                    vec![single, multi]
                })
            })
            .collect(),
    );
    let mut t = Table::new(vec![
        "App".into(),
        "1-arb cycles".into(),
        "4-arb cycles".into(),
        "ratio".into(),
    ]);
    for (app, reports) in apps.iter().zip(&arb_results) {
        let (single, multi) = (&reports[0], &reports[1]);
        log.record(app, "arb-1", single);
        log.record(app, "arb-4", multi);
        t.row(vec![
            app.to_string(),
            single.cycles.to_string(),
            multi.cycles.to_string(),
            format!("{:.3}", single.cycles as f64 / multi.cycles as f64),
        ]);
    }
    writeln!(text, "{t}").unwrap();
    text.push_str(
        "(On an 8-core CMP the single arbiter is not a bottleneck — the paper's claim;\n",
    );
    text.push_str(" the distributed design exists for larger machines.)\n");
    FigureOutput { text, log }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_output_has_all_apps_and_the_geomean_row() {
        let out = fig9(600, 2);
        for app in catalog() {
            assert!(out.text.contains(app.name), "missing {}", app.name);
        }
        assert!(out.text.contains("SP2-G.M."));
        let doc = out.log.to_json();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), catalog().len() * 7);
    }

    #[test]
    fn table4_runs_one_config_per_app() {
        let out = table4(600, 3);
        let doc = out.log.to_json();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), catalog().len());
        assert!(out.text.contains("Table 4"));
    }
}
