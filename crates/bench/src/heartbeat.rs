//! Sweep heartbeat: periodic live progress for long `--metrics` runs.
//!
//! Every experiment binary runs sweeps on the `pool` worker engine, which
//! feeds the `bulksc_metrics::live` progress atomics when live collection
//! is active. This module turns those atomics into operator-visible
//! output: under `--metrics[=every_ms]` a background thread wakes on the
//! chosen interval and
//!
//! * prints a one-line progress report to **stderr** (`done/total`, jobs
//!   in flight, queue depth, ETA) — stdout stays reserved for the
//!   deterministic figure/report text, which must be byte-identical with
//!   metrics on or off;
//! * appends a schema-stamped JSON snapshot line to
//!   `results/<name>.metrics.jsonl` for `bulksc-analyze metrics`.
//!
//! On [`Heartbeat::finish`] the thread is joined, a final snapshot line
//! (`"final":true`) is appended, the merged registry snapshot is written
//! as a Prometheus-style text exposition to `results/<name>.metrics.prom`
//! (the scrape surface a future `bulksc-serve` will expose), and the
//! snapshot is returned to the caller.
//!
//! The flag deliberately has only two spellings — bare `--metrics` (the
//! default interval) and `--metrics=MS` — so it can never swallow a
//! neighboring positional argument (the fuzz driver takes bare seeds).

use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bulksc_metrics::{self as metrics, MetricsSnapshot};
use bulksc_trace::Json;

/// Snapshot interval when `--metrics` is given without a value.
pub const DEFAULT_EVERY_MS: u64 = 1000;

/// Parse `--metrics` / `--metrics=MS` out of an argument list.
/// `Ok(None)` means the flag was absent; `Ok(Some(ms))` carries the
/// snapshot interval; `Err` carries a usage message.
pub fn parse_metrics_flag<I: IntoIterator<Item = String>>(args: I) -> Result<Option<u64>, String> {
    for arg in args {
        if arg == "--metrics" {
            return Ok(Some(DEFAULT_EVERY_MS));
        }
        if let Some(v) = arg.strip_prefix("--metrics=") {
            return match v.parse::<u64>() {
                Ok(ms) if ms >= 1 => Ok(Some(ms)),
                _ => Err(format!(
                    "--metrics wants a positive interval in milliseconds, got {v:?}"
                )),
            };
        }
    }
    Ok(None)
}

/// The `--metrics` interval from the process arguments, if the flag is
/// present. Exits with status 2 on a malformed value.
pub fn metrics_from_cli() -> Option<u64> {
    match parse_metrics_flag(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// The JSONL header line: first line of every `<name>.metrics.jsonl`.
pub fn jsonl_header(name: &str, every_ms: u64) -> String {
    Json::obj([
        ("schema", "bulksc-metrics".into()),
        ("version", bulksc_trace::SCHEMA_VERSION.into()),
        ("name", name.into()),
        ("every_ms", every_ms.into()),
    ])
    .to_string()
}

fn snapshot_line(start_ns: u64, live: metrics::live::LiveSnapshot, is_final: bool) -> String {
    let now_ns = bulksc_prof::clock::now_ns();
    let elapsed_s = now_ns.saturating_sub(start_ns) as f64 / 1e9;
    // ETA from the average completion rate so far; 0 until the first job
    // lands (and on the final line, where nothing remains).
    let remaining = live.total.saturating_sub(live.done);
    let eta_s = if live.done > 0 && remaining > 0 && elapsed_s > 0.0 {
        remaining as f64 / (live.done as f64 / elapsed_s)
    } else {
        0.0
    };
    Json::obj([
        ("wall_ns", now_ns.into()),
        ("done", live.done.into()),
        ("total", live.total.into()),
        ("in_flight", live.in_flight.into()),
        ("queue_depth", live.queue_depth.into()),
        ("queue_peak", live.queue_peak.into()),
        ("panicked", live.panicked.into()),
        ("squashes_true", live.squashes_true.into()),
        ("squashes_alias", live.squashes_alias.into()),
        ("squashes_overflow", live.squashes_overflow.into()),
        ("eta_s", eta_s.into()),
        ("final", is_final.into()),
    ])
    .to_string()
}

fn stderr_line(name: &str, start_ns: u64, live: metrics::live::LiveSnapshot) -> String {
    let elapsed_s = bulksc_prof::clock::now_ns().saturating_sub(start_ns) as f64 / 1e9;
    let remaining = live.total.saturating_sub(live.done);
    let eta = if live.done > 0 && remaining > 0 && elapsed_s > 0.0 {
        format!(
            ", eta ~{:.1}s",
            remaining as f64 / (live.done as f64 / elapsed_s)
        )
    } else {
        String::new()
    };
    // Squash rates by cause, visible only once squashes happen — the
    // live read on a squash storm (`EXPERIMENTS.md` walkthrough).
    let squashed = live.squashes_true + live.squashes_alias + live.squashes_overflow;
    let squashes = if squashed > 0 && elapsed_s > 0.0 {
        format!(
            ", squash/s true {:.1} alias {:.1} ovf {:.1}",
            live.squashes_true as f64 / elapsed_s,
            live.squashes_alias as f64 / elapsed_s,
            live.squashes_overflow as f64 / elapsed_s
        )
    } else {
        String::new()
    };
    format!(
        "[metrics] {name}: {}/{} jobs done, {} in flight, queue {}{squashes}{eta}",
        live.done, live.total, live.in_flight, live.queue_depth
    )
}

/// A running heartbeat: the background snapshot thread plus the handles
/// needed to finish cleanly. Construct with [`Heartbeat::maybe_start`]
/// (CLI-gated) or [`Heartbeat::start`] (unconditional).
pub struct Heartbeat {
    name: String,
    every_ms: u64,
    start_ns: u64,
    stop: Arc<AtomicBool>,
    // The thread owns the JSONL file while running and hands it back on
    // join so `finish` can append the final line.
    thread: Option<JoinHandle<File>>,
    jsonl_path: String,
    prom_path: String,
}

impl Heartbeat {
    /// Start a heartbeat iff the process was invoked with `--metrics`.
    pub fn maybe_start(name: &str) -> Option<Heartbeat> {
        metrics_from_cli().map(|every_ms| Heartbeat::start(name, every_ms))
    }

    /// Activate live + registry collection and spawn the snapshot thread.
    /// Files land in `results/<name>.metrics.{jsonl,prom}`.
    ///
    /// # Panics
    ///
    /// If `results/` or the JSONL file cannot be created.
    pub fn start(name: &str, every_ms: u64) -> Heartbeat {
        let every_ms = every_ms.max(1);
        std::fs::create_dir_all("results").expect("cannot create results/");
        let jsonl_path = format!("results/{name}.metrics.jsonl");
        let prom_path = format!("results/{name}.metrics.prom");
        let mut file =
            File::create(&jsonl_path).unwrap_or_else(|e| panic!("cannot create {jsonl_path}: {e}"));
        writeln!(file, "{}", jsonl_header(name, every_ms)).expect("metrics jsonl write failed");

        // Order matters: live + registry collection must be on before the
        // sweep enqueues its first job.
        metrics::reset_global();
        metrics::live::activate();
        metrics::enable();

        let start_ns = bulksc_prof::clock::now_ns();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            let name = name.to_string();
            std::thread::spawn(move || {
                let mut next_ns = start_ns + every_ms * 1_000_000;
                while !stop.load(Ordering::SeqCst) {
                    // Sleep in short slices so finish() is prompt even
                    // under a long interval.
                    std::thread::sleep(Duration::from_millis(every_ms.min(25)));
                    if bulksc_prof::clock::now_ns() < next_ns {
                        continue;
                    }
                    next_ns += every_ms * 1_000_000;
                    let live = metrics::live::snapshot();
                    eprintln!("{}", stderr_line(&name, start_ns, live));
                    writeln!(file, "{}", snapshot_line(start_ns, live, false))
                        .expect("metrics jsonl write failed");
                }
                let _ = file.flush();
                file
            })
        };

        Heartbeat {
            name: name.to_string(),
            every_ms,
            start_ns,
            stop,
            thread: Some(thread),
            jsonl_path,
            prom_path,
        }
    }

    /// The snapshot interval in milliseconds.
    pub fn every_ms(&self) -> u64 {
        self.every_ms
    }

    /// Path of the JSONL snapshot stream this heartbeat appends to.
    pub fn jsonl_path(&self) -> &str {
        &self.jsonl_path
    }

    /// Path of the text exposition written by [`Heartbeat::finish`].
    pub fn prom_path(&self) -> &str {
        &self.prom_path
    }

    /// Stop the snapshot thread, append the final JSONL line, write the
    /// text exposition, and return the merged registry snapshot (the
    /// caller thread's shard merged with every published worker shard).
    pub fn finish(mut self) -> MetricsSnapshot {
        let file = self.join_thread();
        metrics::live::deactivate();
        let live = metrics::live::snapshot();

        if let Some(mut file) = file {
            writeln!(file, "{}", snapshot_line(self.start_ns, live, true))
                .expect("metrics jsonl write failed");
            let _ = file.flush();
        }

        let mut snap = metrics::disable();
        snap.merge(&metrics::take_global());
        std::fs::write(&self.prom_path, snap.to_text_exposition())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", self.prom_path));

        eprintln!(
            "{}",
            stderr_line(&self.name, self.start_ns, live) + " (finished)"
        );
        eprintln!("[metrics] wrote {} and {}", self.jsonl_path, self.prom_path);
        snap
    }

    fn join_thread(&mut self) -> Option<File> {
        self.stop.store(true, Ordering::SeqCst);
        self.thread.take().and_then(|t| t.join().ok())
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        // An un-finished heartbeat (caller panicked mid-sweep) must not
        // leave the snapshot thread running.
        self.join_thread();
        metrics::live::deactivate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn metrics_flag_parses_both_spellings() {
        assert_eq!(parse_metrics_flag(args(&[])), Ok(None));
        assert_eq!(parse_metrics_flag(args(&["fast"])), Ok(None));
        assert_eq!(
            parse_metrics_flag(args(&["--metrics"])),
            Ok(Some(DEFAULT_EVERY_MS))
        );
        assert_eq!(parse_metrics_flag(args(&["--metrics=250"])), Ok(Some(250)));
        assert_eq!(
            parse_metrics_flag(args(&["--jobs", "4", "--metrics=10", "fast"])),
            Ok(Some(10))
        );
    }

    #[test]
    fn metrics_flag_never_eats_the_next_argument() {
        // `--metrics 500` is the bare flag followed by a positional `500`
        // (a fuzz seed, say) — the 500 must NOT be taken as the interval.
        assert_eq!(
            parse_metrics_flag(args(&["--metrics", "500"])),
            Ok(Some(DEFAULT_EVERY_MS))
        );
    }

    #[test]
    fn metrics_flag_rejects_garbage() {
        assert!(parse_metrics_flag(args(&["--metrics=zero"])).is_err());
        assert!(parse_metrics_flag(args(&["--metrics=0"])).is_err());
        assert!(parse_metrics_flag(args(&["--metrics=-5"])).is_err());
        assert!(parse_metrics_flag(args(&["--metrics="])).is_err());
    }

    #[test]
    fn header_and_snapshot_lines_are_valid_json() {
        let h = jsonl_header("fig9", 250);
        assert!(bulksc_trace::json::is_valid(&h));
        assert!(h.contains("\"schema\":\"bulksc-metrics\""));
        assert!(h.contains("\"every_ms\":250"));
        let line = snapshot_line(
            0,
            metrics::live::LiveSnapshot {
                total: 10,
                done: 4,
                in_flight: 2,
                queue_depth: 4,
                queue_peak: 10,
                panicked: 0,
                squashes_true: 3,
                squashes_alias: 1,
                squashes_overflow: 0,
            },
            false,
        );
        assert!(bulksc_trace::json::is_valid(&line));
        assert!(line.contains("\"done\":4"));
        assert!(line.contains("\"squashes_true\":3"));
        assert!(line.contains("\"squashes_alias\":1"));
        assert!(line.contains("\"final\":false"));
    }

    #[test]
    fn stderr_line_shows_progress() {
        let line = stderr_line(
            "fig9",
            0,
            metrics::live::LiveSnapshot {
                total: 91,
                done: 42,
                in_flight: 3,
                queue_depth: 46,
                queue_peak: 91,
                panicked: 0,
                squashes_true: 0,
                squashes_alias: 0,
                squashes_overflow: 0,
            },
        );
        assert!(line.starts_with("[metrics] fig9: 42/91 jobs done"));
        assert!(line.contains("queue 46"));
        assert!(line.contains("eta ~"), "{line}");
        assert!(
            !line.contains("squash/s"),
            "no squash rate until squashes happen: {line}"
        );
    }

    #[test]
    fn stderr_line_breaks_squashes_out_by_cause() {
        let line = stderr_line(
            "fig9",
            0,
            metrics::live::LiveSnapshot {
                total: 91,
                done: 42,
                in_flight: 3,
                queue_depth: 46,
                queue_peak: 91,
                panicked: 0,
                squashes_true: 120,
                squashes_alias: 40,
                squashes_overflow: 4,
            },
        );
        assert!(line.contains("squash/s true "), "{line}");
        assert!(line.contains(" alias "), "{line}");
        assert!(line.contains(" ovf "), "{line}");
    }
}
