//! Host-performance benchmark suite: how fast does the *simulator* run?
//!
//! The logic behind `bulksc-perf` and the `prof`/`perf-diff` subcommands
//! of `bulksc-analyze`. A fixed matrix of pinned-seed workload×config
//! scenarios (the paper's 8-core CMP under bulk and baseline models, with
//! tracing, sampling, and the SC oracle toggled) is run N times after a
//! warmup; each rep reports simulated throughput — KIPS (thousand
//! simulated instructions per host second) and KCPS (thousand simulated
//! cycles per host second) — plus the `bulksc-prof` per-phase breakdown
//! of where the host time went. Results land in a schema-stamped
//! `results/perf.json` and append to a repo-root `BENCH_<label>.json`
//! trajectory so throughput history survives across commits.
//!
//! Host timings are *not* deterministic — only the simulated side is.
//! [`perf_diff`] therefore gates on relative KIPS drops with a threshold,
//! never on exact values.

use bulksc::{Model, SimReport, System, SystemConfig};
use bulksc_check::ValueTrace;
use bulksc_prof::{self as prof, Phase, ProfReport};
use bulksc_trace::{Json, JsonlTracer, TraceHandle, SCHEMA_VERSION};
use bulksc_workloads::{SyntheticApp, ThreadProgram};

use crate::SEED;

/// One workload×configuration cell of the perf matrix.
pub struct Scenario {
    /// Stable name carried in `perf.json` (pairing key for `perf-diff`).
    pub name: &'static str,
    /// Human-readable configuration label.
    pub config: String,
    /// Catalog application driving all 8 cores.
    pub app: &'static str,
    /// The consistency model / bulk configuration.
    pub model: Model,
    /// Directory modules (distributed-arbiter cells pair them 1:1).
    pub dirs: u32,
    /// Attach a JSONL tracer for the whole run.
    pub tracing: bool,
    /// Enable interval sampling every 256 cycles.
    pub sampling: bool,
    /// Run the `bulksc-check` SC oracle over the captured value trace
    /// (implies `tracing`).
    pub oracle: bool,
    /// Run the *streaming* windowed oracle over the captured value trace
    /// instead of the batch one (implies `tracing`): measures the
    /// bounded-memory certification path end to end, JSONL consumption
    /// included.
    pub oracle_stream: bool,
    /// Enable the `bulksc-metrics` registry for every measured rep (the
    /// metrics-tax cell; see [`metrics_overhead`]).
    pub metrics: bool,
}

/// The pinned scenario matrix (~9 cells). Every run in every cell uses
/// the workspace-wide [`SEED`], so the simulated side is byte-identical
/// across hosts and reps — only host time varies.
pub fn matrix() -> Vec<Scenario> {
    let cell = |name, model: Model, dirs, tracing, sampling, oracle| Scenario {
        name,
        config: model.name(),
        app: "ocean",
        model,
        dirs,
        tracing,
        sampling,
        oracle,
        oracle_stream: false,
        metrics: false,
    };
    use bulksc::BulkConfig;
    use bulksc_cpu::BaselineModel;
    vec![
        cell(
            "bsc8",
            Model::Bulk(BulkConfig::bsc_dypvt()),
            1,
            false,
            false,
            false,
        ),
        cell(
            "bsc8_arb4",
            Model::Bulk(BulkConfig::bsc_dypvt().with_arbiters(4)),
            4,
            false,
            false,
            false,
        ),
        cell(
            "bsc8_exact",
            Model::Bulk(BulkConfig::bsc_exact()),
            1,
            false,
            false,
            false,
        ),
        cell(
            "sc8",
            Model::Baseline(BaselineModel::Sc),
            1,
            false,
            false,
            false,
        ),
        cell(
            "rc8",
            Model::Baseline(BaselineModel::Rc),
            1,
            false,
            false,
            false,
        ),
        cell(
            "bsc8_trace",
            Model::Bulk(BulkConfig::bsc_dypvt()),
            1,
            true,
            false,
            false,
        ),
        cell(
            "bsc8_sample",
            Model::Bulk(BulkConfig::bsc_dypvt()),
            1,
            false,
            true,
            false,
        ),
        // The xray tax cell: same traced run as bsc8_trace but with
        // conflict attribution on, so bsc8_trace / bsc8_xray isolates
        // the attribution cost from the tracing cost.
        cell(
            "bsc8_xray",
            Model::Bulk(BulkConfig::bsc_dypvt().with_xray()),
            1,
            true,
            false,
            false,
        ),
        cell(
            "bsc8_oracle",
            Model::Bulk(BulkConfig::bsc_dypvt()),
            1,
            true,
            false,
            true,
        ),
        {
            let mut m = cell(
                "bsc8_metrics",
                Model::Bulk(BulkConfig::bsc_dypvt()),
                1,
                false,
                false,
                false,
            );
            m.metrics = true;
            m
        },
        // Same traced run certified through the windowed streaming
        // oracle: bsc8_oracle / bsc8_oracle_stream isolates what bounded
        // memory costs (or saves) against the batch checker. Last on
        // purpose: the ten cells above keep their historical queue order
        // (and thus their contention pairing under a width-2 smoke
        // pool), so the tight overhead gates see the same interleaving
        // they were calibrated against.
        {
            let mut m = cell(
                "bsc8_oracle_stream",
                Model::Bulk(BulkConfig::bsc_dypvt()),
                1,
                true,
                false,
                false,
            );
            m.oracle_stream = true;
            m
        },
    ]
}

/// One measured repetition.
#[derive(Clone, Copy, Debug)]
pub struct Rep {
    /// Host nanoseconds, profiler enable→disable (setup through collect,
    /// and the oracle for oracle cells).
    pub wall_ns: u64,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instrs: u64,
    /// Thousand simulated instructions per host second.
    pub kips: f64,
    /// Thousand simulated cycles per host second.
    pub kcps: f64,
    /// Instrumented share of this rep's wall time, percent.
    pub coverage_pct: f64,
}

/// All reps of one scenario plus the merged profile.
pub struct ScenarioResult {
    /// Scenario name (pairing key).
    pub name: &'static str,
    /// Configuration label.
    pub config: String,
    /// Application name.
    pub app: &'static str,
    /// Measured repetitions, in execution order.
    pub reps: Vec<Rep>,
    /// Per-phase host time summed over all measured reps.
    pub prof: ProfReport,
}

/// Median of `values` (lower middle for even counts — deterministic).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v[(v.len() - 1) / 2]
}

impl ScenarioResult {
    fn kips_list(&self) -> Vec<f64> {
        self.reps.iter().map(|r| r.kips).collect()
    }

    /// Median KIPS over the measured reps (the `perf-diff` gate metric).
    pub fn median_kips(&self) -> f64 {
        median(&self.kips_list())
    }

    /// Slowest rep's KIPS.
    pub fn min_kips(&self) -> f64 {
        self.kips_list()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Fastest rep's KIPS.
    pub fn max_kips(&self) -> f64 {
        self.kips_list().iter().copied().fold(0.0, f64::max)
    }

    /// Median KCPS over the measured reps.
    pub fn median_kcps(&self) -> f64 {
        median(&self.reps.iter().map(|r| r.kcps).collect::<Vec<_>>())
    }

    /// Instrumented share of the summed wall time, percent.
    pub fn coverage_pct(&self) -> f64 {
        self.prof.coverage_pct()
    }
}

/// Build the scenario's system (one `SyntheticApp` thread per core).
fn build_system(s: &Scenario, budget: u64) -> System {
    let app = bulksc_workloads::by_name(s.app).expect("catalog app");
    let mut cfg = SystemConfig::cmp8(s.model.clone());
    cfg.dirs = s.dirs;
    cfg.budget = budget;
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(app, t, cfg.cores, SEED)) as Box<dyn ThreadProgram>)
        .collect();
    System::new(cfg, programs)
}

/// One unmeasured execution (warmup: page in code, warm allocator).
fn run_once(s: &Scenario, budget: u64) {
    let mut sys = build_system(s, budget);
    assert!(sys.run(u64::MAX / 4), "warmup run finishes");
    let _ = SimReport::collect(&sys);
}

/// Run one scenario: `warmup` unmeasured executions, then `reps` measured
/// ones with the profiler attached.
///
/// # Panics
///
/// Panics if a run fails to finish or (for oracle cells) the captured
/// value trace fails SC certification — a perf run must never paper over
/// a correctness bug.
pub fn run_scenario(s: &Scenario, budget: u64, warmup: u32, reps: u32) -> ScenarioResult {
    assert!(reps > 0, "at least one measured rep");
    for _ in 0..warmup {
        run_once(s, budget);
    }
    let mut out = ScenarioResult {
        name: s.name,
        config: s.config.clone(),
        app: s.app,
        reps: Vec::new(),
        prof: ProfReport::default(),
    };
    for _ in 0..reps {
        // Metrics bracket with a nested-enable guard: if the caller (a
        // `--metrics` sweep) already holds this thread's shard, reuse it
        // rather than clobbering it with a disable().
        let outer_metrics = bulksc_metrics::is_enabled();
        if s.metrics && !outer_metrics {
            bulksc_metrics::enable();
        }
        prof::enable();
        let (mut sys, jsonl) = {
            let _setup = prof::scope(Phase::Setup);
            let mut sys = build_system(s, budget);
            let jsonl = if s.tracing {
                let sink = JsonlTracer::shared();
                let mut handle = TraceHandle::off();
                handle.attach(sink.clone());
                sys.set_tracer(handle);
                Some(sink)
            } else {
                None
            };
            if s.sampling {
                sys.enable_sampling(256);
            }
            (sys, jsonl)
        };
        assert!(sys.run(u64::MAX / 4), "measured run finishes");
        let report = SimReport::collect(&sys);
        if s.oracle || s.oracle_stream {
            let _oracle = prof::scope(Phase::Oracle);
            let text = jsonl
                .as_ref()
                .expect("oracle implies tracing")
                .borrow()
                .contents()
                .to_string();
            if s.oracle_stream {
                bulksc_check::check_jsonl_reader(
                    text.as_bytes(),
                    "perf trace",
                    bulksc_check::StreamConfig::windowed(4096),
                )
                .expect("perf run is SC (streaming)");
            } else {
                let trace = ValueTrace::from_jsonl(&text, "perf trace").expect("perf trace parses");
                trace.verify().expect("perf run is SC");
            }
        }
        let pr = prof::disable();
        if s.metrics && !outer_metrics {
            bulksc_metrics::publish(bulksc_metrics::disable());
        }
        let secs = pr.wall_ns as f64 / 1e9;
        out.reps.push(Rep {
            wall_ns: pr.wall_ns,
            cycles: report.cycles,
            instrs: report.retired,
            kips: report.retired as f64 / secs / 1e3,
            kcps: report.cycles as f64 / secs / 1e3,
            coverage_pct: pr.coverage_pct(),
        });
        out.prof.merge(&pr);
    }
    out
}

/// Run a whole scenario matrix on the [`crate::pool`] worker pool: one
/// job per scenario, `jobs` host threads. Warmup and measured reps stay
/// *serial inside each job* so medians are computed over the same rep
/// structure as a serial suite; the profiler is per-thread
/// (`bulksc-prof` keeps thread-local state), so each worker's
/// enable/disable brackets see only its own scenario's phases. Results
/// come back in matrix order regardless of completion order.
///
/// Note: running scenarios concurrently makes them compete for host
/// cores, which can depress absolute KIPS. Simulated results are
/// width-independent; host timings never were deterministic (see module
/// docs). Use `--jobs 1` when an undisturbed absolute measurement
/// matters more than suite wall-clock.
pub fn run_suite(
    cells: &[Scenario],
    budget: u64,
    warmup: u32,
    reps: u32,
    jobs: usize,
) -> Vec<ScenarioResult> {
    crate::pool::run_all(
        jobs,
        cells
            .iter()
            .map(|s| {
                crate::pool::Job::new(format!("perf {}", s.name), move || {
                    let r = run_scenario(s, budget, warmup, reps);
                    eprintln!(
                        "  {} done: median {:.1} KIPS ({:.1}% profiled)",
                        r.name,
                        r.median_kips(),
                        r.coverage_pct()
                    );
                    r
                })
            })
            .collect(),
    )
}

/// The `results/perf.json` document.
pub fn perf_json(
    results: &[ScenarioResult],
    label: &str,
    budget: u64,
    warmup: u32,
    reps: u32,
) -> Json {
    let mut doc = Json::obj([
        ("schema", "bulksc-perf".into()),
        ("version", SCHEMA_VERSION.into()),
        ("label", label.into()),
        ("budget", budget.into()),
        ("seed", SEED.into()),
        ("warmup", Json::U64(warmup as u64)),
        ("reps", Json::U64(reps as u64)),
    ]);
    let mut arr = Vec::new();
    for r in results {
        let mut sj = Json::obj([("name", r.name.into())]);
        sj.push("config", r.config.as_str().into());
        sj.push("app", r.app.into());
        sj.push("median_kips", Json::F64(r.median_kips()));
        sj.push("min_kips", Json::F64(r.min_kips()));
        sj.push("max_kips", Json::F64(r.max_kips()));
        sj.push("median_kcps", Json::F64(r.median_kcps()));
        sj.push("coverage_pct", Json::F64(r.coverage_pct()));
        let mut reps_arr = Vec::new();
        for rep in &r.reps {
            reps_arr.push(Json::obj([
                ("wall_ns", rep.wall_ns.into()),
                ("cycles", rep.cycles.into()),
                ("instrs", rep.instrs.into()),
                ("kips", Json::F64(rep.kips)),
                ("kcps", Json::F64(rep.kcps)),
                ("coverage_pct", Json::F64(rep.coverage_pct)),
            ]));
        }
        sj.push("runs", Json::Arr(reps_arr));
        let wall = r.prof.wall_ns.max(1);
        let mut phases = Vec::new();
        for p in &r.prof.phases {
            phases.push(Json::obj([
                ("phase", p.phase.name().into()),
                ("count", p.count.into()),
                ("total_ns", p.total_ns.into()),
                ("self_ns", p.self_ns.into()),
                (
                    "share_pct",
                    Json::F64(100.0 * p.self_ns as f64 / wall as f64),
                ),
            ]));
        }
        sj.push("phases", Json::Arr(phases));
        arr.push(sj);
    }
    doc.push("scenarios", Json::Arr(arr));
    doc
}

/// One-screen summary table of a finished suite.
pub fn render_summary(results: &[ScenarioResult]) -> String {
    let mut t = bulksc_stats::Table::new(
        [
            "scenario",
            "config",
            "median KIPS",
            "min",
            "max",
            "KCPS",
            "prof cover %",
        ]
        .map(str::to_string)
        .to_vec(),
    );
    for r in results {
        t.row(vec![
            r.name.to_string(),
            r.config.clone(),
            format!("{:.1}", r.median_kips()),
            format!("{:.1}", r.min_kips()),
            format!("{:.1}", r.max_kips()),
            format!("{:.1}", r.median_kcps()),
            format!("{:.1}", r.coverage_pct()),
        ]);
    }
    t.to_string()
}

/// Parse a `perf.json` document, checking the schema stamp. Error
/// messages name the offending file and both versions.
pub fn load_perf(text: &str, origin: &str) -> Result<Json, String> {
    let doc = Json::parse(text).ok_or_else(|| format!("{origin}: artifact is not valid JSON"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "bulksc-perf" {
        return Err(format!(
            "{origin}: not a bulksc-perf artifact (schema {schema:?}, expected \"bulksc-perf\"); \
             regenerate it with `bulksc-perf`"
        ));
    }
    let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
    if !bulksc_trace::schema_supported(version) {
        return Err(format!(
            "{origin}: schema version {version} outside supported range \
             {}..={SCHEMA_VERSION}; regenerate it with a current `bulksc-perf`",
            bulksc_trace::MIN_SCHEMA_VERSION
        ));
    }
    Ok(doc)
}

fn scenario_kips(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for s in doc.get("scenarios").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
        let kips = s.get("median_kips").and_then(Json::as_f64).unwrap_or(0.0);
        out.push((name.to_string(), kips));
    }
    out
}

/// One scenario's throughput change between two perf artifacts.
#[derive(Debug)]
pub struct PerfDelta {
    /// Scenario name.
    pub name: String,
    /// Median KIPS in the old artifact.
    pub old_kips: f64,
    /// Median KIPS in the new artifact.
    pub new_kips: f64,
    /// Relative change in percent (negative = slower).
    pub delta_pct: f64,
}

/// The outcome of comparing two perf artifacts.
#[derive(Debug)]
pub struct PerfDiff {
    /// Every paired scenario, artifact order.
    pub rows: Vec<PerfDelta>,
    /// Paired scenarios slower than the threshold allows.
    pub regressions: Vec<String>,
    /// Scenarios present in only one artifact.
    pub unpaired: Vec<String>,
}

impl PerfDiff {
    /// True if no regression and no pairing drift.
    pub fn clean(&self) -> bool {
        self.regressions.is_empty() && self.unpaired.is_empty()
    }

    /// Human-readable comparison.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut t = bulksc_stats::Table::new(
            ["scenario", "old KIPS", "new KIPS", "delta %"]
                .map(str::to_string)
                .to_vec(),
        );
        for d in &self.rows {
            let flag = if self.regressions.contains(&d.name) {
                "  << REGRESSION"
            } else {
                ""
            };
            t.row(vec![
                d.name.clone(),
                format!("{:.1}", d.old_kips),
                format!("{:.1}", d.new_kips),
                format!("{:+.1}{flag}", d.delta_pct),
            ]);
        }
        let mut out = t.to_string();
        for u in &self.unpaired {
            out.push_str(&format!("  unpaired scenario: {u}\n"));
        }
        out.push_str(&format!(
            "{} scenarios compared, {} regressions beyond {threshold_pct}% , {} unpaired\n",
            self.rows.len(),
            self.regressions.len(),
            self.unpaired.len()
        ));
        out
    }
}

/// Compare two perf artifacts: a paired scenario regresses when its new
/// median KIPS is more than `threshold_pct` percent below its old one.
/// Speedups never fail; pairing drift (scenario added/removed) does.
pub fn perf_diff(
    old_text: &str,
    new_text: &str,
    old_origin: &str,
    new_origin: &str,
    threshold_pct: f64,
) -> Result<PerfDiff, String> {
    let old = load_perf(old_text, old_origin)?;
    let new = load_perf(new_text, new_origin)?;
    let old_k = scenario_kips(&old);
    let new_k = scenario_kips(&new);
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    let mut unpaired = Vec::new();
    for (name, old_kips) in &old_k {
        let Some((_, new_kips)) = new_k.iter().find(|(n, _)| n == name) else {
            unpaired.push(format!("{name} ({old_origin} only)"));
            continue;
        };
        let delta_pct = if *old_kips == 0.0 {
            0.0
        } else {
            100.0 * (new_kips - old_kips) / old_kips
        };
        if delta_pct < -threshold_pct {
            regressions.push(name.clone());
        }
        rows.push(PerfDelta {
            name: name.clone(),
            old_kips: *old_kips,
            new_kips: *new_kips,
            delta_pct,
        });
    }
    for (name, _) in &new_k {
        if !old_k.iter().any(|(n, _)| n == name) {
            unpaired.push(format!("{name} ({new_origin} only)"));
        }
    }
    Ok(PerfDiff {
        rows,
        regressions,
        unpaired,
    })
}

/// Render a perf artifact's per-scenario phase breakdowns as text.
pub fn prof_report_text(text: &str, origin: &str) -> Result<String, String> {
    let doc = load_perf(text, origin)?;
    let label = doc.get("label").and_then(Json::as_str).unwrap_or("?");
    let budget = doc.get("budget").and_then(Json::as_u64).unwrap_or(0);
    let mut out = format!("perf suite {label:?}: budget {budget} instructions/core\n");
    for s in doc.get("scenarios").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
        let kips = s.get("median_kips").and_then(Json::as_f64).unwrap_or(0.0);
        let cover = s.get("coverage_pct").and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "\n== {name}: median {kips:.1} KIPS, {cover:.1}% profiled ==\n"
        ));
        let mut t = bulksc_stats::Table::new(
            ["phase", "scopes", "total ms", "self ms", "share %"]
                .map(str::to_string)
                .to_vec(),
        );
        for p in s.get("phases").and_then(Json::as_arr).unwrap_or(&[]) {
            t.row(vec![
                p.get("phase")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                p.get("count")
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    .to_string(),
                format!(
                    "{:.3}",
                    p.get("total_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6
                ),
                format!(
                    "{:.3}",
                    p.get("self_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6
                ),
                format!(
                    "{:.1}",
                    p.get("share_pct").and_then(Json::as_f64).unwrap_or(0.0)
                ),
            ]);
        }
        out.push_str(&t.to_string());
    }
    Ok(out)
}

/// Render a perf artifact as Chrome trace-event JSON (one lane per
/// scenario, one `"X"` duration event per phase, laid out cumulatively by
/// self time — a flame-chart of where host time went; `ts` is µs).
pub fn prof_chrome(text: &str, origin: &str) -> Result<String, String> {
    let doc = load_perf(text, origin)?;
    let mut events = Vec::new();
    for s in doc.get("scenarios").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
        let mut ts_us = 0u64;
        for p in s.get("phases").and_then(Json::as_arr).unwrap_or(&[]) {
            let phase = p.get("phase").and_then(Json::as_str).unwrap_or("?");
            let self_ns = p.get("self_ns").and_then(Json::as_u64).unwrap_or(0);
            let dur_us = self_ns / 1_000;
            events.push(
                Json::obj([
                    ("name", phase.into()),
                    ("cat", "prof".into()),
                    ("ph", "X".into()),
                    ("ts", ts_us.into()),
                    ("dur", dur_us.into()),
                    ("pid", Json::U64(0)),
                    ("tid", name.into()),
                    (
                        "args",
                        Json::obj([
                            ("self_ns", self_ns.into()),
                            ("count", p.get("count").cloned().unwrap_or(Json::U64(0))),
                        ]),
                    ),
                ])
                .to_string(),
            );
            ts_us += dur_us;
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    Ok(out)
}

/// The tracing tax: `bsc8` median KIPS over `bsc8_trace` median KIPS
/// (>1 means tracing slows the simulator down by that factor).
pub fn trace_overhead(text: &str, origin: &str) -> Result<f64, String> {
    let doc = load_perf(text, origin)?;
    let kips = scenario_kips(&doc);
    let get = |name: &str| -> Result<f64, String> {
        kips.iter()
            .find(|(n, _)| n == name)
            .map(|(_, k)| *k)
            .ok_or_else(|| format!("{origin}: no scenario {name:?} to compute tracing overhead"))
    };
    let base = get("bsc8")?;
    let traced = get("bsc8_trace")?;
    if traced <= 0.0 {
        return Err(format!("{origin}: bsc8_trace has no measured throughput"));
    }
    Ok(base / traced)
}

/// The metrics tax: `bsc8` median KIPS over `bsc8_metrics` median KIPS
/// (>1 means the enabled registry slows the simulator down by that
/// factor; the CI gate holds it under 2%).
pub fn metrics_overhead(text: &str, origin: &str) -> Result<f64, String> {
    let doc = load_perf(text, origin)?;
    let kips = scenario_kips(&doc);
    let get = |name: &str| -> Result<f64, String> {
        kips.iter()
            .find(|(n, _)| n == name)
            .map(|(_, k)| *k)
            .ok_or_else(|| format!("{origin}: no scenario {name:?} to compute metrics overhead"))
    };
    let base = get("bsc8")?;
    let metered = get("bsc8_metrics")?;
    if metered <= 0.0 {
        return Err(format!("{origin}: bsc8_metrics has no measured throughput"));
    }
    Ok(base / metered)
}

/// The xray tax: `bsc8_trace` median KIPS over `bsc8_xray` median KIPS.
/// Both cells trace; only the second computes conflict attribution, so
/// the ratio is the attribution cost alone (the CI gate holds it under
/// 10%).
pub fn xray_overhead(text: &str, origin: &str) -> Result<f64, String> {
    let doc = load_perf(text, origin)?;
    let kips = scenario_kips(&doc);
    let get = |name: &str| -> Result<f64, String> {
        kips.iter()
            .find(|(n, _)| n == name)
            .map(|(_, k)| *k)
            .ok_or_else(|| format!("{origin}: no scenario {name:?} to compute xray overhead"))
    };
    let traced = get("bsc8_trace")?;
    let xrayed = get("bsc8_xray")?;
    if xrayed <= 0.0 {
        return Err(format!("{origin}: bsc8_xray has no measured throughput"));
    }
    Ok(traced / xrayed)
}

/// Append this suite's summary to a `BENCH_<label>.json` trajectory
/// document (`existing` is the current file contents, if the file
/// exists). Each entry keeps just enough to plot throughput over time.
pub fn trajectory_append(
    existing: Option<&str>,
    perf_doc: &Json,
    unix_secs: u64,
) -> Result<String, String> {
    let doc = match existing {
        Some(text) => {
            let doc = Json::parse(text)
                .ok_or_else(|| "existing trajectory is not valid JSON".to_string())?;
            let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
            if schema != "bulksc-bench-trajectory" {
                return Err(format!(
                    "existing trajectory has schema {schema:?}, expected \
                     \"bulksc-bench-trajectory\""
                ));
            }
            doc
        }
        None => Json::obj([
            ("schema", "bulksc-bench-trajectory".into()),
            ("version", SCHEMA_VERSION.into()),
            ("entries", Json::Arr(Vec::new())),
        ]),
    };
    let mut entry = Json::obj([("unix_secs", unix_secs.into())]);
    for key in ["label", "budget", "reps"] {
        if let Some(v) = perf_doc.get(key) {
            entry.push(key, v.clone());
        }
    }
    let mut scen = Vec::new();
    for (name, kips) in scenario_kips(perf_doc) {
        let mut sj = Json::obj([("median_kips", Json::F64(kips))]);
        sj.push("name", name.as_str().into());
        scen.push(sj);
    }
    entry.push("scenarios", Json::Arr(scen));
    let mut entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .to_vec();
    entries.push(entry);
    // Rebuild with the appended entries (Json has no in-place replace).
    let mut out = Json::obj([
        ("schema", "bulksc-bench-trajectory".into()),
        (
            "version",
            doc.get("version").cloned().unwrap_or(SCHEMA_VERSION.into()),
        ),
    ]);
    out.push("entries", Json::Arr(entries));
    Ok(out.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny but real suite run shared by several tests (one scenario).
    fn tiny_result(name: &'static str) -> ScenarioResult {
        let s = matrix().into_iter().find(|s| s.name == name).unwrap();
        run_scenario(&s, 1_000, 0, 2)
    }

    #[test]
    fn matrix_is_stable_and_unique() {
        let m = matrix();
        assert_eq!(m.len(), 11);
        let mut names: Vec<&str> = m.iter().map(|s| s.name).collect();
        assert!(names.contains(&"bsc8") && names.contains(&"bsc8_trace"));
        assert!(names.contains(&"bsc8_metrics"));
        assert!(names.contains(&"bsc8_xray"));
        assert!(names.contains(&"bsc8_oracle_stream"));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "scenario names are the pairing keys");
        for s in &m {
            assert!(
                !(s.oracle || s.oracle_stream) || s.tracing,
                "{}: oracle implies tracing",
                s.name
            );
        }
    }

    #[test]
    fn measured_scenario_reports_throughput_and_coverage() {
        let r = tiny_result("bsc8");
        assert_eq!(r.reps.len(), 2);
        for rep in &r.reps {
            assert!(rep.kips > 0.0 && rep.kcps > 0.0);
            assert!(rep.cycles > 0 && rep.instrs > 0);
            assert!(
                rep.coverage_pct >= 95.0,
                "phase self times must cover ≥95% of the rep wall: {}",
                rep.coverage_pct
            );
        }
        assert!(r.coverage_pct() >= 95.0);
        assert!(r.prof.phase(Phase::Run).is_some(), "step loop profiled");
        assert!(r.prof.phase(Phase::Execute).is_some(), "cores profiled");
        assert!(r.min_kips() <= r.median_kips());
        assert!(r.median_kips() <= r.max_kips());
    }

    #[test]
    fn traced_scenario_profiles_trace_emission() {
        let r = tiny_result("bsc8_trace");
        assert!(
            r.prof.phase(Phase::TraceEmit).is_some(),
            "tracing cell must attribute trace-emission time"
        );
    }

    #[test]
    fn oracle_scenario_profiles_the_oracle() {
        let r = tiny_result("bsc8_oracle");
        let oracle = r.prof.phase(Phase::Oracle).expect("oracle profiled");
        assert!(oracle.self_ns > 0);
    }

    #[test]
    fn streaming_oracle_scenario_certifies_and_profiles() {
        let r = tiny_result("bsc8_oracle_stream");
        let oracle = r.prof.phase(Phase::Oracle).expect("oracle profiled");
        assert!(oracle.self_ns > 0);
    }

    #[test]
    fn perf_json_round_trips_and_loads() {
        let r = tiny_result("bsc8");
        let doc = perf_json(&[r], "test", 1_000, 0, 2);
        let text = doc.to_string();
        let loaded = load_perf(&text, "mem").expect("loads back");
        let kips = scenario_kips(&loaded);
        assert_eq!(kips.len(), 1);
        assert_eq!(kips[0].0, "bsc8");
        assert!(kips[0].1 > 0.0);
        // Shares in the artifact sum to ≥95% of wall per scenario.
        let s = &loaded.get("scenarios").unwrap().as_arr().unwrap()[0];
        let share_sum: f64 = s
            .get("phases")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|p| p.get("share_pct").and_then(Json::as_f64).unwrap_or(0.0))
            .sum();
        assert!(share_sum >= 95.0, "share sum {share_sum}");
        assert!(share_sum <= 101.0, "share sum {share_sum}");
    }

    #[test]
    fn load_perf_errors_name_the_file_and_versions() {
        let e = load_perf("{\"schema\":\"nope\"}", "results/perf.json").unwrap_err();
        assert!(e.contains("results/perf.json"), "{e}");
        assert!(e.contains("bulksc-perf"), "{e}");
        let e = load_perf(
            "{\"schema\":\"bulksc-perf\",\"version\":1}",
            "old/perf.json",
        )
        .unwrap_err();
        assert!(e.contains("old/perf.json"), "{e}");
        assert!(
            e.contains('1') && e.contains(&SCHEMA_VERSION.to_string()),
            "{e}"
        );
    }

    /// A synthetic perf doc with the given (name, median_kips) cells.
    fn synthetic(cells: &[(&str, f64)]) -> String {
        let mut doc = Json::obj([
            ("schema", "bulksc-perf".into()),
            ("version", SCHEMA_VERSION.into()),
            ("label", "synthetic".into()),
            ("budget", Json::U64(1000)),
            ("reps", Json::U64(1)),
        ]);
        let mut arr = Vec::new();
        for (name, kips) in cells {
            let mut sj = Json::obj([("median_kips", Json::F64(*kips))]);
            sj.push("name", (*name).into());
            sj.push(
                "phases",
                Json::Arr(vec![Json::obj([
                    ("phase", "step_loop".into()),
                    ("count", Json::U64(1)),
                    ("total_ns", Json::U64(5_000_000)),
                    ("self_ns", Json::U64(5_000_000)),
                    ("share_pct", Json::F64(100.0)),
                ])]),
            );
            arr.push(sj);
        }
        doc.push("scenarios", Json::Arr(arr));
        doc.to_string()
    }

    #[test]
    fn perf_diff_gates_on_injected_kips_regression() {
        let old = synthetic(&[("bsc8", 100.0), ("sc8", 50.0)]);
        let slow = synthetic(&[("bsc8", 60.0), ("sc8", 50.0)]);
        // 40% drop breaches a 10% threshold ...
        let d = perf_diff(&old, &slow, "old", "new", 10.0).unwrap();
        assert!(!d.clean());
        assert_eq!(d.regressions, vec!["bsc8".to_string()]);
        assert!(d.render(10.0).contains("REGRESSION"));
        // ... is forgiven by a 50% threshold ...
        assert!(perf_diff(&old, &slow, "old", "new", 50.0).unwrap().clean());
        // ... and a self-diff is always clean at 0%.
        assert!(perf_diff(&old, &old, "old", "old", 0.0).unwrap().clean());
        // Speedups never regress.
        let fast = synthetic(&[("bsc8", 500.0), ("sc8", 50.0)]);
        assert!(perf_diff(&old, &fast, "old", "new", 0.0).unwrap().clean());
    }

    #[test]
    fn perf_diff_flags_pairing_drift() {
        let old = synthetic(&[("bsc8", 100.0), ("sc8", 50.0)]);
        let new = synthetic(&[("bsc8", 100.0), ("rc8", 70.0)]);
        let d = perf_diff(&old, &new, "old", "new", 0.0).unwrap();
        assert!(!d.clean());
        assert_eq!(d.unpaired.len(), 2);
    }

    #[test]
    fn trace_overhead_is_the_base_over_traced_ratio() {
        let doc = synthetic(&[("bsc8", 100.0), ("bsc8_trace", 50.0)]);
        let ratio = trace_overhead(&doc, "mem").unwrap();
        assert!((ratio - 2.0).abs() < 1e-9);
        let missing = synthetic(&[("bsc8", 100.0)]);
        assert!(trace_overhead(&missing, "mem")
            .unwrap_err()
            .contains("bsc8_trace"));
    }

    #[test]
    fn xray_overhead_is_the_traced_over_xray_ratio() {
        let doc = synthetic(&[("bsc8_trace", 90.0), ("bsc8_xray", 80.0)]);
        let ratio = xray_overhead(&doc, "mem").unwrap();
        assert!((ratio - 90.0 / 80.0).abs() < 1e-9);
        let missing = synthetic(&[("bsc8_trace", 90.0)]);
        assert!(xray_overhead(&missing, "mem")
            .unwrap_err()
            .contains("bsc8_xray"));
    }

    #[test]
    fn xray_cell_simulates_exactly_what_the_traced_cell_does() {
        // Attribution reads simulation state but never writes it: the
        // xray cell's simulated cycles and instructions match bsc8_trace.
        let traced = tiny_result("bsc8_trace");
        let xrayed = tiny_result("bsc8_xray");
        assert_eq!(traced.reps[0].cycles, xrayed.reps[0].cycles);
        assert_eq!(traced.reps[0].instrs, xrayed.reps[0].instrs);
    }

    #[test]
    fn metrics_overhead_is_the_base_over_metered_ratio() {
        let doc = synthetic(&[("bsc8", 100.0), ("bsc8_metrics", 98.0)]);
        let ratio = metrics_overhead(&doc, "mem").unwrap();
        assert!((ratio - 100.0 / 98.0).abs() < 1e-9);
        let missing = synthetic(&[("bsc8", 100.0)]);
        assert!(metrics_overhead(&missing, "mem")
            .unwrap_err()
            .contains("bsc8_metrics"));
    }

    #[test]
    fn metrics_cell_publishes_counters_without_perturbing_the_sim() {
        bulksc_metrics::reset_global();
        let metered = tiny_result("bsc8_metrics");
        let snap = bulksc_metrics::take_global();
        assert!(
            snap.counter(bulksc_metrics::Counter::ChunksCommitted) > 0,
            "metered reps must publish sim counters"
        );
        // Out-of-band: the metered cell simulates exactly what bsc8 does.
        let base = tiny_result("bsc8");
        assert_eq!(base.reps[0].cycles, metered.reps[0].cycles);
        assert_eq!(base.reps[0].instrs, metered.reps[0].instrs);
    }

    #[test]
    fn trajectory_appends_entries() {
        let doc = Json::parse(&synthetic(&[("bsc8", 100.0)])).unwrap();
        let first = trajectory_append(None, &doc, 1_000).unwrap();
        let parsed = Json::parse(&first).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("bulksc-bench-trajectory")
        );
        assert_eq!(
            parsed.get("entries").and_then(Json::as_arr).unwrap().len(),
            1
        );
        let second = trajectory_append(Some(&first), &doc, 2_000).unwrap();
        let parsed = Json::parse(&second).unwrap();
        let entries = parsed.get("entries").and_then(Json::as_arr).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[1].get("unix_secs").and_then(Json::as_u64),
            Some(2_000)
        );
        // A garbage existing file is refused, not clobbered silently.
        assert!(trajectory_append(Some("not json"), &doc, 3_000).is_err());
    }

    #[test]
    fn prof_outputs_render_from_an_artifact() {
        let r = tiny_result("bsc8");
        let text = perf_json(&[r], "test", 1_000, 0, 2).to_string();
        let report = prof_report_text(&text, "mem").unwrap();
        assert!(
            report.contains("bsc8") && report.contains("step_loop"),
            "{report}"
        );
        let chrome = prof_chrome(&text, "mem").unwrap();
        assert!(bulksc_trace::json::is_valid(&chrome));
    }
}
