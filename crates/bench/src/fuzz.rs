//! Differential SC fuzzer: random workloads × machine configs, every
//! execution certified by the `bulksc-check` oracle.
//!
//! Each case runs one randomized program set (unique store values, plain
//! reorderable loads, a contended address pool — see
//! [`bulksc_workloads::fuzzprog`]) under a sweep of BulkSC configurations
//! plus the SC baseline, with value tracing on, and asserts three things:
//!
//! 1. the oracle certifies the trace (po ∪ rf ∪ co ∪ fr is acyclic);
//! 2. the witness replay's final memory matches the simulator's value
//!    store word-for-word;
//! 3. the witness, projected to a per-core access schedule and replayed
//!    on the atomic reference executor, reproduces the same final memory
//!    — so the claimed interleaving is *reachable*, not just consistent.
//!
//! The sweep deliberately includes configurations that stress the
//! squash/retry machinery: tiny chunks, a small aliasing-prone signature,
//! a tiny L1 (cache-displacement pressure on speculative lines), and the
//! distributed arbiter. RC is intentionally absent — it is not SC and
//! the oracle would (correctly) flag it.

use std::time::{Duration, Instant};

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_check::{CheckError, CollectingTracer, ScCertificate, ValueTrace};
use bulksc_cpu::BaselineModel;
use bulksc_mem::CacheConfig;
use bulksc_sig::{Addr, SignatureConfig};
use bulksc_trace::TraceHandle;
use bulksc_workloads::{fuzz_programs, run_in_order, FuzzSpec};

/// One configuration of the sweep: a model plus the system-level knobs
/// that go with it.
pub struct SweepEntry {
    /// Display name for reports.
    pub name: &'static str,
    /// Consistency machinery under test.
    pub model: Model,
    /// Directory modules (>1 exercises the distributed arbiter).
    pub dirs: u32,
    /// Private L1 geometry.
    pub l1: CacheConfig,
}

/// The default configuration sweep.
pub fn sweep() -> Vec<SweepEntry> {
    let entry = |name, model| SweepEntry {
        name,
        model,
        dirs: 1,
        l1: CacheConfig::l1_default(),
    };
    vec![
        entry("SC", Model::Baseline(BaselineModel::Sc)),
        entry("BSCbase", Model::Bulk(BulkConfig::bsc_base())),
        entry("BSCdypvt", Model::Bulk(BulkConfig::bsc_dypvt())),
        entry("BSCstpvt", Model::Bulk(BulkConfig::bsc_stpvt())),
        entry("BSCexact", Model::Bulk(BulkConfig::bsc_exact())),
        entry(
            "BSCdypvt/chunk64",
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(64)),
        ),
        entry(
            "BSCbase/chunk16",
            Model::Bulk(BulkConfig::bsc_base().with_chunk_size(16)),
        ),
        entry(
            "BSCbase/sig256",
            Model::Bulk(BulkConfig {
                sig: SignatureConfig::with_total_bits(256),
                ..BulkConfig::bsc_base()
            }),
        ),
        entry(
            "BSCdypvt/norsig",
            Model::Bulk(BulkConfig::bsc_dypvt().without_rsig()),
        ),
        SweepEntry {
            name: "BSCdypvt/arb4",
            model: Model::Bulk(BulkConfig::bsc_dypvt().with_arbiters(4)),
            dirs: 4,
            l1: CacheConfig::l1_default(),
        },
        SweepEntry {
            name: "BSCbase/tinyL1",
            model: Model::Bulk(BulkConfig::bsc_base()),
            dirs: 1,
            l1: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
            },
        },
    ]
}

/// Statistics of one certified case.
pub struct CaseStats {
    /// Accesses in the trace.
    pub accesses: usize,
    /// Reads whose rf source was ambiguous (edges skipped).
    pub ambiguous: usize,
    /// Chunk-lifecycle events captured alongside.
    pub lifecycle: usize,
}

/// Run one fuzz case under one sweep entry with value tracing on and
/// return the captured trace plus the live system for cross-checks.
pub fn run_traced(entry: &SweepEntry, spec: FuzzSpec, seed: u64) -> (ValueTrace, System) {
    let mut cfg = SystemConfig::cmp8(entry.model.clone());
    cfg.cores = spec.threads;
    cfg.dirs = entry.dirs;
    cfg.l1 = entry.l1;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, fuzz_programs(spec, seed));
    let tracer = CollectingTracer::shared();
    let mut handle = TraceHandle::off();
    handle.attach(tracer.clone());
    sys.set_tracer(handle);
    assert!(
        sys.run(50_000_000),
        "fuzz seed {seed} under {} did not finish:\n{}",
        entry.name,
        sys.debug_state()
    );
    let trace = tracer.borrow_mut().take();
    (trace, sys)
}

/// Certify one case end-to-end. `Err` carries a human-readable failure
/// report (oracle violation or differential mismatch).
pub fn certify_case(entry: &SweepEntry, spec: FuzzSpec, seed: u64) -> Result<CaseStats, String> {
    let (trace, sys) = run_traced(entry, spec, seed);
    if trace.accesses.is_empty() {
        return Err(format!(
            "{} seed {seed}: value trace is empty — tracing not wired?",
            entry.name
        ));
    }

    // 1. The oracle must certify the trace.
    let cert: ScCertificate = trace.verify().map_err(|e| match e {
        CheckError::Violation(v) => {
            format!("{} seed {seed}: SC violation\n{}", entry.name, v.report)
        }
        CheckError::Malformed(m) => {
            format!("{} seed {seed}: malformed trace: {m}", entry.name)
        }
    })?;

    // 2. Witness-replay memory must equal the simulator's value store.
    for (&addr, &value) in &cert.final_memory {
        let got = sys.values().read(Addr(addr));
        if got != value {
            return Err(format!(
                "{} seed {seed}: witness final memory [{addr:#x}]={value:#x} \
                 but the simulator's value store holds {got:#x}",
                entry.name
            ));
        }
    }

    // 3. The witness must be *reachable*: replay its per-core access
    // schedule on the atomic reference executor.
    let order: Vec<u32> = cert
        .witness
        .iter()
        .map(|&i| trace.accesses[i].core)
        .collect();
    let replay = run_in_order(fuzz_programs(spec, seed), &order, u64::MAX / 2);
    if !replay.finished {
        return Err(format!(
            "{} seed {seed}: reference replay of the witness did not finish",
            entry.name
        ));
    }
    for (&addr, &value) in &cert.final_memory {
        let got = replay.memory.get(&Addr(addr)).copied().unwrap_or(0);
        if got != value {
            return Err(format!(
                "{} seed {seed}: witness final memory [{addr:#x}]={value:#x} \
                 but the reference replay produced {got:#x}",
                entry.name
            ));
        }
    }

    Ok(CaseStats {
        accesses: cert.accesses,
        ambiguous: cert.ambiguous_reads,
        lifecycle: trace.lifecycle.len(),
    })
}

/// Outcome of a sweep.
pub struct FuzzOutcome {
    /// Cases run to completion.
    pub runs: usize,
    /// Total traced accesses certified.
    pub accesses: usize,
    /// Failure reports (empty on a clean sweep).
    pub failures: Vec<String>,
    /// True if the time box expired before the seed list was exhausted.
    pub timed_out: bool,
}

/// Sweep `seeds` × [`sweep()`] with `spec`-shaped programs, stopping
/// early (cleanly, between cases) once `time_box` elapses.
pub fn run_sweep(seeds: &[u64], spec: FuzzSpec, time_box: Option<Duration>) -> FuzzOutcome {
    let start = Instant::now();
    let entries = sweep();
    let mut out = FuzzOutcome {
        runs: 0,
        accesses: 0,
        failures: Vec::new(),
        timed_out: false,
    };
    'outer: for &seed in seeds {
        for entry in &entries {
            if let Some(limit) = time_box {
                if start.elapsed() >= limit {
                    out.timed_out = true;
                    break 'outer;
                }
            }
            match certify_case(entry, spec, seed) {
                Ok(stats) => {
                    out.runs += 1;
                    out.accesses += stats.accesses;
                    println!(
                        "ok   {:<18} seed {:>4}  {:>5} accesses, {} ambiguous, {} lifecycle events",
                        entry.name, seed, stats.accesses, stats.ambiguous, stats.lifecycle
                    );
                }
                Err(report) => {
                    out.runs += 1;
                    println!("FAIL {:<18} seed {:>4}", entry.name, seed);
                    println!("{report}");
                    out.failures.push(report);
                }
            }
        }
    }
    out
}

fn usage() -> i32 {
    eprintln!(
        "usage: bulksc-fuzz [SEED...] [--seeds N] [--time-box SECS] [--ops N] [--threads N]\n\
         \n\
         Runs random programs under every BulkSC configuration and the SC\n\
         baseline, certifying each execution with the bulksc-check oracle\n\
         and cross-checking final memory against a reference replay of the\n\
         SC witness. Default: seeds 0..8.\n\
         \n\
         exit status: 0 all certified, 1 violation found, 2 bad usage"
    );
    2
}

/// CLI entry point (`bulksc-fuzz`). Returns the process exit code.
pub fn main() -> i32 {
    let mut seeds: Vec<u64> = Vec::new();
    let mut spec = FuzzSpec::default();
    let mut time_box: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> Option<u64> {
            args.next().and_then(|v| v.parse().ok())
        };
        match arg.as_str() {
            "--seeds" => match num(&mut args) {
                Some(n) => seeds.extend(0..n),
                None => return usage(),
            },
            "--time-box" => match num(&mut args) {
                Some(secs) => time_box = Some(Duration::from_secs(secs)),
                None => return usage(),
            },
            "--ops" => match num(&mut args) {
                Some(n) => spec.ops_per_thread = n as u32,
                None => return usage(),
            },
            "--threads" => match num(&mut args) {
                Some(n) => spec.threads = n as u32,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return 0;
            }
            s => match s.parse() {
                Ok(seed) => seeds.push(seed),
                Err(_) => return usage(),
            },
        }
    }
    if seeds.is_empty() {
        seeds.extend(0..8);
    }

    let outcome = run_sweep(&seeds, spec, time_box);
    println!(
        "fuzz: {} runs, {} accesses certified, {} failures{}",
        outcome.runs,
        outcome.accesses,
        outcome.failures.len(),
        if outcome.timed_out {
            " (time box hit)"
        } else {
            ""
        }
    );
    if outcome.failures.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quick_case_certifies_under_bulk_and_sc() {
        let spec = FuzzSpec {
            threads: 2,
            ops_per_thread: 40,
            pool_words: 8,
            rmw_permille: 30,
        };
        for entry in sweep() {
            if !matches!(entry.name, "SC" | "BSCbase" | "BSCbase/chunk16") {
                continue;
            }
            let stats = certify_case(&entry, spec, 1).unwrap_or_else(|e| {
                panic!("{e}");
            });
            assert!(stats.accesses > 0);
        }
    }
}
