//! Differential SC fuzzer: random workloads × machine configs, every
//! execution certified by the `bulksc-check` oracle.
//!
//! Each case runs one randomized program set (unique store values, plain
//! reorderable loads, a contended address pool — see
//! [`bulksc_workloads::fuzzprog`]) under a sweep of BulkSC configurations
//! plus the SC baseline, with value tracing on, and asserts three things:
//!
//! 1. the oracle certifies the trace (po ∪ rf ∪ co ∪ fr is acyclic);
//! 2. the witness replay's final memory matches the simulator's value
//!    store word-for-word;
//! 3. the witness, projected to a per-core access schedule and replayed
//!    on the atomic reference executor, reproduces the same final memory
//!    — so the claimed interleaving is *reachable*, not just consistent.
//!
//! The sweep deliberately includes configurations that stress the
//! squash/retry machinery: tiny chunks, a small aliasing-prone signature,
//! a tiny L1 (cache-displacement pressure on speculative lines), and the
//! distributed arbiter. RC is intentionally absent — it is not SC and
//! the oracle would (correctly) flag it.
//!
//! Cases are independent, so the seed×config matrix runs on the
//! [`crate::pool`] worker pool (`--jobs N` / `BULKSC_JOBS`). Each case
//! builds its own `System` and `TraceHandle` inside its job and renders
//! its verdict line there; lines are printed post-join in sweep order, so
//! stdout is byte-identical at any job count (as long as no `--time-box`
//! cuts the sweep short — the time box is checked at job start, and which
//! cases it skips depends on wall-clock timing).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::pool::{self, Job};
use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_check::{CheckError, CollectingTracer, ScCertificate, ValueTrace};
use bulksc_cpu::BaselineModel;
use bulksc_mem::CacheConfig;
use bulksc_sig::{Addr, SignatureConfig};
use bulksc_trace::TraceHandle;
use bulksc_workloads::{fuzz_programs, run_in_order, FuzzSpec};

/// One configuration of the sweep: a model plus the system-level knobs
/// that go with it.
pub struct SweepEntry {
    /// Display name for reports.
    pub name: &'static str,
    /// Consistency machinery under test.
    pub model: Model,
    /// Directory modules (>1 exercises the distributed arbiter).
    pub dirs: u32,
    /// Private L1 geometry.
    pub l1: CacheConfig,
}

/// The default configuration sweep.
pub fn sweep() -> Vec<SweepEntry> {
    let entry = |name, model| SweepEntry {
        name,
        model,
        dirs: 1,
        l1: CacheConfig::l1_default(),
    };
    vec![
        entry("SC", Model::Baseline(BaselineModel::Sc)),
        entry("BSCbase", Model::Bulk(BulkConfig::bsc_base())),
        entry("BSCdypvt", Model::Bulk(BulkConfig::bsc_dypvt())),
        entry("BSCstpvt", Model::Bulk(BulkConfig::bsc_stpvt())),
        entry("BSCexact", Model::Bulk(BulkConfig::bsc_exact())),
        entry(
            "BSCdypvt/chunk64",
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(64)),
        ),
        entry(
            "BSCbase/chunk16",
            Model::Bulk(BulkConfig::bsc_base().with_chunk_size(16)),
        ),
        entry(
            "BSCbase/sig256",
            Model::Bulk(BulkConfig {
                sig: SignatureConfig::with_total_bits(256),
                ..BulkConfig::bsc_base()
            }),
        ),
        entry(
            "BSCdypvt/norsig",
            Model::Bulk(BulkConfig::bsc_dypvt().without_rsig()),
        ),
        SweepEntry {
            name: "BSCdypvt/arb4",
            model: Model::Bulk(BulkConfig::bsc_dypvt().with_arbiters(4)),
            dirs: 4,
            l1: CacheConfig::l1_default(),
        },
        SweepEntry {
            name: "BSCbase/tinyL1",
            model: Model::Bulk(BulkConfig::bsc_base()),
            dirs: 1,
            l1: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
            },
        },
    ]
}

/// Statistics of one certified case.
pub struct CaseStats {
    /// Accesses in the trace.
    pub accesses: usize,
    /// Reads whose rf source was ambiguous (edges skipped).
    pub ambiguous: usize,
    /// Chunk-lifecycle events captured alongside.
    pub lifecycle: usize,
}

/// Run one fuzz case under one sweep entry with value tracing on and
/// return the captured trace plus the live system for cross-checks.
pub fn run_traced(entry: &SweepEntry, spec: FuzzSpec, seed: u64) -> (ValueTrace, System) {
    let mut cfg = SystemConfig::cmp8(entry.model.clone());
    cfg.cores = spec.threads;
    cfg.dirs = entry.dirs;
    cfg.l1 = entry.l1;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, fuzz_programs(spec, seed));
    let tracer = CollectingTracer::shared();
    let mut handle = TraceHandle::off();
    handle.attach(tracer.clone());
    sys.set_tracer(handle);
    assert!(
        sys.run(50_000_000),
        "fuzz seed {seed} under {} did not finish:\n{}",
        entry.name,
        sys.debug_state()
    );
    let trace = tracer.borrow_mut().take();
    (trace, sys)
}

/// Certify one case end-to-end. `Err` carries a human-readable failure
/// report (oracle violation or differential mismatch). With
/// `stream_check` the case additionally runs the streaming oracle —
/// single-window (must reproduce the batch certificate exactly) and
/// windowed at pool widths 1 and 4 (must agree on the verdict, the final
/// memory, and with each other) — so every sampled trace differentially
/// tests the bounded-memory checker against the batch one.
pub fn certify_case(
    entry: &SweepEntry,
    spec: FuzzSpec,
    seed: u64,
    stream_check: bool,
) -> Result<CaseStats, String> {
    let (trace, sys) = run_traced(entry, spec, seed);
    if trace.accesses.is_empty() {
        return Err(format!(
            "{} seed {seed}: value trace is empty — tracing not wired?",
            entry.name
        ));
    }

    // 1. The oracle must certify the trace.
    let cert: ScCertificate = trace.verify().map_err(|e| match e {
        CheckError::Violation(v) => {
            format!("{} seed {seed}: SC violation\n{}", entry.name, v.report)
        }
        CheckError::Malformed(m) => {
            format!("{} seed {seed}: malformed trace: {m}", entry.name)
        }
    })?;

    // 2. Witness-replay memory must equal the simulator's value store.
    for (&addr, &value) in &cert.final_memory {
        let got = sys.values().read(Addr(addr));
        if got != value {
            return Err(format!(
                "{} seed {seed}: witness final memory [{addr:#x}]={value:#x} \
                 but the simulator's value store holds {got:#x}",
                entry.name
            ));
        }
    }

    // 3. The witness must be *reachable*: replay its per-core access
    // schedule on the atomic reference executor.
    let order: Vec<u32> = cert
        .witness
        .iter()
        .map(|&i| trace.accesses[i].core)
        .collect();
    let replay = run_in_order(fuzz_programs(spec, seed), &order, u64::MAX / 2);
    if !replay.finished {
        return Err(format!(
            "{} seed {seed}: reference replay of the witness did not finish",
            entry.name
        ));
    }
    for (&addr, &value) in &cert.final_memory {
        let got = replay.memory.get(&Addr(addr)).copied().unwrap_or(0);
        if got != value {
            return Err(format!(
                "{} seed {seed}: witness final memory [{addr:#x}]={value:#x} \
                 but the reference replay produced {got:#x}",
                entry.name
            ));
        }
    }

    // 4. Optional streaming differential: the bounded-memory checker
    // must agree with the batch verdict on this same trace.
    if stream_check {
        use bulksc_check::{check_stream, StreamConfig};
        let one = check_stream(&trace.accesses, &trace.lifecycle, StreamConfig::batch()).map_err(
            |e| {
                format!(
                    "{} seed {seed}: single-window streaming check failed where \
                     batch certified:\n{e}",
                    entry.name
                )
            },
        )?;
        if one.witness.as_deref() != Some(cert.witness.as_slice())
            || one.edges != cert.edges
            || one.ambiguous_reads != cert.ambiguous_reads
        {
            return Err(format!(
                "{} seed {seed}: single-window streaming certificate diverges \
                 from batch ({} vs {} edges, {} vs {} ambiguous)",
                entry.name, one.edges, cert.edges, one.ambiguous_reads, cert.ambiguous_reads
            ));
        }
        let mut hashes = Vec::new();
        for jobs in [1usize, 4] {
            let win = check_stream(
                &trace.accesses,
                &trace.lifecycle,
                StreamConfig::windowed(256).with_jobs(jobs),
            )
            .map_err(|e| {
                format!(
                    "{} seed {seed}: windowed streaming check (jobs {jobs}) failed \
                     where batch certified:\n{e}",
                    entry.name
                )
            })?;
            if win.final_memory != cert.final_memory || win.accesses != cert.accesses {
                return Err(format!(
                    "{} seed {seed}: windowed streaming final memory diverges from \
                     batch (jobs {jobs})",
                    entry.name
                ));
            }
            hashes.push(win.witness_hash);
        }
        if hashes[0] != hashes[1] {
            return Err(format!(
                "{} seed {seed}: pool width changed the windowed witness hash \
                 ({:016x} vs {:016x})",
                entry.name, hashes[0], hashes[1]
            ));
        }
    }

    Ok(CaseStats {
        accesses: cert.accesses,
        ambiguous: cert.ambiguous_reads,
        lifecycle: trace.lifecycle.len(),
    })
}

/// Outcome of a sweep.
pub struct FuzzOutcome {
    /// Cases run to completion.
    pub runs: usize,
    /// Total traced accesses certified.
    pub accesses: usize,
    /// Failure reports (empty on a clean sweep).
    pub failures: Vec<String>,
    /// True if the time box expired before the seed list was exhausted.
    pub timed_out: bool,
    /// Per-case verdict lines (ok/FAIL), in sweep order — exactly what a
    /// serial sweep would have printed as it went.
    pub lines: Vec<String>,
}

impl FuzzOutcome {
    /// The one-line sweep summary.
    pub fn summary(&self) -> String {
        format!(
            "fuzz: {} runs, {} accesses certified, {} failures{}",
            self.runs,
            self.accesses,
            self.failures.len(),
            if self.timed_out {
                " (time box hit)"
            } else {
                ""
            }
        )
    }

    /// The full sweep stdout: every verdict line plus the summary. This
    /// is the byte-determinism surface `tests/pool_determinism.rs` pins.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }
}

/// One case's result, as computed inside a pool job.
enum CaseResult {
    Ok {
        line: String,
        accesses: usize,
    },
    Fail {
        line: String,
        report: String,
    },
    /// Skipped: the time box had expired when the job started.
    TimedOut,
}

/// Sweep `seeds` × `entries` with `spec`-shaped programs on `jobs` worker
/// threads. The `time_box` is checked as each case *starts*: cases that
/// begin after it expires are skipped and the outcome marked timed-out.
pub fn run_sweep_on(
    entries: &[SweepEntry],
    seeds: &[u64],
    spec: FuzzSpec,
    time_box: Option<Duration>,
    jobs: usize,
    stream_check: bool,
) -> FuzzOutcome {
    let start = Instant::now();
    let expired = AtomicBool::new(false);
    let cases: Vec<(u64, &SweepEntry)> = seeds
        .iter()
        .flat_map(|&seed| entries.iter().map(move |e| (seed, e)))
        .collect();

    let results: Vec<CaseResult> = pool::run_all(
        jobs,
        cases
            .iter()
            .map(|&(seed, entry)| {
                let expired = &expired;
                Job::new(format!("{} seed {seed}", entry.name), move || {
                    if let Some(limit) = time_box {
                        if expired.load(Ordering::SeqCst) || start.elapsed() >= limit {
                            expired.store(true, Ordering::SeqCst);
                            return CaseResult::TimedOut;
                        }
                    }
                    match certify_case(entry, spec, seed, stream_check) {
                        Ok(stats) => CaseResult::Ok {
                            line: format!(
                                "ok   {:<18} seed {:>4}  {:>5} accesses, {} ambiguous, \
                                 {} lifecycle events",
                                entry.name, seed, stats.accesses, stats.ambiguous, stats.lifecycle
                            ),
                            accesses: stats.accesses,
                        },
                        Err(report) => CaseResult::Fail {
                            line: format!("FAIL {:<18} seed {:>4}\n{report}", entry.name, seed),
                            report,
                        },
                    }
                })
            })
            .collect(),
    );

    let mut out = FuzzOutcome {
        runs: 0,
        accesses: 0,
        failures: Vec::new(),
        timed_out: false,
        lines: Vec::new(),
    };
    for result in results {
        match result {
            CaseResult::Ok { line, accesses } => {
                out.runs += 1;
                out.accesses += accesses;
                out.lines.push(line);
            }
            CaseResult::Fail { line, report } => {
                out.runs += 1;
                out.lines.push(line);
                out.failures.push(report);
            }
            CaseResult::TimedOut => out.timed_out = true,
        }
    }
    out
}

/// Sweep `seeds` × [`sweep()`] — the CLI's sweep.
pub fn run_sweep(
    seeds: &[u64],
    spec: FuzzSpec,
    time_box: Option<Duration>,
    jobs: usize,
    stream_check: bool,
) -> FuzzOutcome {
    run_sweep_on(&sweep(), seeds, spec, time_box, jobs, stream_check)
}

/// Parsed `bulksc-fuzz` command line.
pub struct FuzzArgs {
    /// Seeds to sweep (defaults to 0..8 when none given).
    pub seeds: Vec<u64>,
    /// Program shape.
    pub spec: FuzzSpec,
    /// Wall-clock budget for the whole sweep.
    pub time_box: Option<Duration>,
    /// Host worker threads (`--jobs`); `None` = pool default.
    pub jobs: Option<usize>,
    /// Heartbeat interval in milliseconds (`--metrics[=MS]`); `None` =
    /// metrics off.
    pub metrics: Option<u64>,
    /// Differentially run the streaming oracle against the batch one on
    /// every sampled trace (`--stream-check`).
    pub stream_check: bool,
}

/// What the argument list asked for.
pub enum FuzzCli {
    /// Run the sweep with these settings.
    Run(FuzzArgs),
    /// `--help`: print usage, exit 0.
    Help,
}

/// Parse `bulksc-fuzz` arguments (everything after the program name).
///
/// The guest-core count is `--cores N`. The pre-PR-5 `--threads` alias
/// was removed after its deprecation window; it now errors with a pointer
/// to `--cores`. `Err` carries a usage message.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<FuzzCli, String> {
    let mut seeds: Vec<u64> = Vec::new();
    let mut spec = FuzzSpec::default();
    let mut time_box: Option<Duration> = None;
    let mut jobs: Option<usize> = None;
    let mut metrics: Option<u64> = None;
    let mut stream_check = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            args.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} needs an integer value"))
        };
        match arg.as_str() {
            "--seeds" => seeds.extend(0..num("--seeds")?),
            "--time-box" => time_box = Some(Duration::from_secs(num("--time-box")?)),
            "--ops" => spec.ops_per_thread = num("--ops")? as u32,
            "--cores" => spec.threads = num("--cores")? as u32,
            "--threads" => {
                return Err("--threads was removed: it set *guest* cores, use --cores; \
                     host-side parallelism is --jobs"
                    .to_string())
            }
            "--jobs" => match num("--jobs")? {
                n if n >= 1 => jobs = Some(n as usize),
                _ => return Err("--jobs wants a positive integer".to_string()),
            },
            s if s == "--metrics" || s.starts_with("--metrics=") => {
                metrics = crate::heartbeat::parse_metrics_flag(std::iter::once(s.to_string()))?;
            }
            "--stream-check" => stream_check = true,
            "--help" | "-h" => return Ok(FuzzCli::Help),
            s => match s.parse() {
                Ok(seed) => seeds.push(seed),
                Err(_) => return Err(format!("unrecognized argument {s:?}")),
            },
        }
    }
    if seeds.is_empty() {
        seeds.extend(0..8);
    }
    Ok(FuzzCli::Run(FuzzArgs {
        seeds,
        spec,
        time_box,
        jobs,
        metrics,
        stream_check,
    }))
}

fn usage() {
    eprintln!(
        "usage: bulksc-fuzz [SEED...] [--seeds N] [--time-box SECS] [--ops N] [--cores N] \
         [--jobs N] [--metrics[=MS]] [--stream-check]\n\
         \n\
         Runs random programs under every BulkSC configuration and the SC\n\
         baseline, certifying each execution with the bulksc-check oracle\n\
         and cross-checking final memory against a reference replay of the\n\
         SC witness. Default: seeds 0..8.\n\
         \n\
         --cores N      guest cores running the fuzz program (default 4)\n\
         --jobs N       host worker threads for the sweep (default:\n\
         \x20              BULKSC_JOBS or the available parallelism)\n\
         --metrics[=MS] heartbeat progress on stderr every MS milliseconds\n\
         \x20              (default 1000) + results/fuzz.metrics.{{jsonl,prom}}\n\
         --stream-check also run the streaming (windowed, pool-parallel)\n\
         \x20              oracle on every trace and fail on any divergence\n\
         \x20              from the batch verdict\n\
         \n\
         exit status: 0 all certified, 1 violation found, 2 bad usage"
    );
}

/// CLI entry point (`bulksc-fuzz`). Returns the process exit code.
pub fn main() -> i32 {
    let parsed = match parse_args(std::env::args().skip(1)) {
        Ok(FuzzCli::Help) => {
            usage();
            return 0;
        }
        Ok(FuzzCli::Run(a)) => a,
        Err(msg) => {
            eprintln!("bulksc-fuzz: {msg}");
            usage();
            return 2;
        }
    };
    let jobs = parsed.jobs.unwrap_or_else(pool::default_width);

    let heartbeat = parsed
        .metrics
        .map(|ms| crate::heartbeat::Heartbeat::start("fuzz", ms));
    let outcome = run_sweep(
        &parsed.seeds,
        parsed.spec,
        parsed.time_box,
        jobs,
        parsed.stream_check,
    );
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    print!("{}", outcome.render());
    if outcome.failures.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn run_of(cli: Result<FuzzCli, String>) -> FuzzArgs {
        match cli {
            Ok(FuzzCli::Run(a)) => a,
            Ok(FuzzCli::Help) => panic!("expected a run, got help"),
            Err(e) => panic!("expected a run, got error: {e}"),
        }
    }

    #[test]
    fn a_quick_case_certifies_under_bulk_and_sc() {
        let spec = FuzzSpec {
            threads: 2,
            ops_per_thread: 40,
            pool_words: 8,
            rmw_permille: 30,
        };
        for entry in sweep() {
            if !matches!(entry.name, "SC" | "BSCbase" | "BSCbase/chunk16") {
                continue;
            }
            let stats = certify_case(&entry, spec, 1, true).unwrap_or_else(|e| {
                panic!("{e}");
            });
            assert!(stats.accesses > 0);
        }
    }

    #[test]
    fn cores_flag_sets_guest_cores() {
        let a = run_of(parse_args(args(&["--cores", "2", "--ops", "50", "3"])));
        assert_eq!(a.spec.threads, 2);
        assert_eq!(a.spec.ops_per_thread, 50);
        assert_eq!(a.seeds, vec![3]);
        assert!(a.jobs.is_none());
        assert!(a.metrics.is_none());
    }

    #[test]
    fn threads_flag_is_gone_and_the_error_names_cores() {
        let err = match parse_args(args(&["--threads", "6"])) {
            Err(e) => e,
            Ok(_) => panic!("--threads must be rejected"),
        };
        assert!(err.contains("--threads was removed"), "{err}");
        assert!(
            err.contains("--cores"),
            "error must point at --cores: {err}"
        );
    }

    #[test]
    fn metrics_flag_parses_and_rejects_garbage() {
        let a = run_of(parse_args(args(&["--metrics", "3"])));
        assert_eq!(a.metrics, Some(crate::heartbeat::DEFAULT_EVERY_MS));
        // Bare `--metrics` must not eat the positional seed.
        assert_eq!(a.seeds, vec![3]);
        let b = run_of(parse_args(args(&["--metrics=250"])));
        assert_eq!(b.metrics, Some(250));
        assert!(parse_args(args(&["--metrics=junk"])).is_err());
    }

    #[test]
    fn jobs_flag_is_host_side_and_separate_from_cores() {
        let a = run_of(parse_args(args(&["--jobs", "4", "--cores", "2"])));
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.spec.threads, 2);
        assert!(parse_args(args(&["--jobs", "0"])).is_err());
    }

    #[test]
    fn stream_check_flag_parses_and_defaults_off() {
        let a = run_of(parse_args(args(&["--stream-check", "5"])));
        assert!(a.stream_check);
        assert_eq!(a.seeds, vec![5], "flag must not eat the positional seed");
        let b = run_of(parse_args(args(&[])));
        assert!(!b.stream_check);
    }

    #[test]
    fn default_seeds_and_bad_args() {
        let a = run_of(parse_args(args(&[])));
        assert_eq!(a.seeds, (0..8).collect::<Vec<u64>>());
        assert!(matches!(parse_args(args(&["--help"])), Ok(FuzzCli::Help)));
        assert!(parse_args(args(&["--cores"])).is_err());
        assert!(parse_args(args(&["--bogus"])).is_err());
        assert!(parse_args(args(&["--seeds", "x"])).is_err());
    }

    #[test]
    fn sweep_lines_render_in_order() {
        let spec = FuzzSpec {
            threads: 2,
            ops_per_thread: 30,
            pool_words: 8,
            rmw_permille: 30,
        };
        let entries = sweep();
        let two = &entries[..2]; // SC, BSCbase
        let out = run_sweep_on(two, &[1, 2], spec, None, 2, false);
        assert_eq!(out.runs, 4);
        assert!(out.failures.is_empty());
        assert_eq!(out.lines.len(), 4);
        // Sweep order: seed-major, entry-minor.
        assert!(out.lines[0].contains("SC") && out.lines[0].contains("seed    1"));
        assert!(out.lines[1].contains("BSCbase"));
        assert!(out.lines[2].contains("seed    2"));
        assert!(out.render().ends_with("0 failures\n"));
    }
}
