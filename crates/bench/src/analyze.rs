//! Post-processing for run artifacts: the logic behind `bulksc-analyze`.
//!
//! Three operations, all pure text-in/text-out so they unit-test without
//! touching the filesystem (the `bulksc-analyze` binary is a thin argv
//! wrapper):
//!
//! * [`report`] — summarize a `results/*.json` RunLog: per-phase commit
//!   latency percentiles, per-core cycle-loss attribution (validated to
//!   sum to the run's cycle count), and the signature false-positive rate;
//! * [`timeline`] — reconstruct per-chunk spans from a JSONL event stream,
//!   emit a Chrome trace of them, and flag every `chunk_start` that never
//!   reached a commit, squash, or abandon;
//! * [`diff`] — compare two RunLog artifacts metric-by-metric with a
//!   relative-delta threshold, for regression gating in CI;
//! * [`xray`] — conflict forensics over an attributed (`--xray`) event
//!   stream: per-site squash/deny counts, the core-pair conflict matrix,
//!   hot conflict lines with the alias / true-sharing split, cascade
//!   depths, and a Graphviz causality graph.
//!
//! Every entry point first checks the artifact's `schema`/`version` pair
//! against [`bulksc_trace::SCHEMA_VERSION`] and refuses anything it does
//! not understand, so stale artifacts fail loudly instead of mis-parsing.
//! Entry points take an `origin` string (the file path, or `<stdin>`)
//! purely for error messages: a schema mismatch names the offending file
//! and both versions, so the fix is obvious from the message alone.

use std::collections::BTreeMap;

use bulksc_stats::{Histogram, Table};
use bulksc_trace::{BlockMeta, Event, Json, SCHEMA_VERSION};

/// The latency phases a run artifact carries, in lifecycle order.
const PHASES: [&str; 5] = [
    "execute",
    "arbitration",
    "dir_update",
    "commit_visible",
    "l1_miss",
];

/// Parse an artifact document and check its schema stamp. `origin` is the
/// file the text came from; every error names it.
fn load_runlog(text: &str, origin: &str) -> Result<Json, String> {
    let doc = Json::parse(text).ok_or_else(|| format!("{origin}: artifact is not valid JSON"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "bulksc-runlog" {
        return Err(format!(
            "{origin}: not a bulksc-runlog artifact (schema {schema:?}, expected \
             \"bulksc-runlog\"); regenerate it with a current binary"
        ));
    }
    let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
    if !bulksc_trace::schema_supported(version) {
        return Err(format!(
            "{origin}: artifact schema version {version} outside supported range \
             {}..={SCHEMA_VERSION}; regenerate it with a current binary",
            bulksc_trace::MIN_SCHEMA_VERSION
        ));
    }
    Ok(doc)
}

/// Rebuild a [`Histogram`] from the sparse JSON form `SimReport` emits.
fn hist_from_json(j: &Json) -> Option<Histogram> {
    let count = j.get("count")?.as_u64()?;
    let sum = j.get("sum")?.as_u64()?;
    let min = j.get("min")?.as_u64()?;
    let max = j.get("max")?.as_u64()?;
    let mut pairs = Vec::new();
    for pair in j.get("buckets")?.as_arr()? {
        let p = pair.as_arr()?;
        pairs.push((p.first()?.as_u64()? as usize, p.get(1)?.as_u64()?));
    }
    Histogram::from_parts(&pairs, count, sum, min, max)
}

/// Summarize one RunLog artifact (the text of a `results/*.json` file).
///
/// For every recorded run: a per-phase latency table (count, p50, p90,
/// p99, max, mean), the per-core cycle-loss attribution with its
/// sums-to-cycles invariant checked, and the squash false-positive rate.
pub fn report(text: &str, origin: &str) -> Result<String, String> {
    let doc = load_runlog(text, origin)?;
    let experiment = doc.get("experiment").and_then(Json::as_str).unwrap_or("?");
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "artifact has no runs array".to_string())?;
    let mut out = format!("experiment {experiment}: {} runs\n", runs.len());
    for run in runs {
        let app = run.get("app").and_then(Json::as_str).unwrap_or("?");
        let config = run.get("config").and_then(Json::as_str).unwrap_or("?");
        let rep = run
            .get("report")
            .ok_or_else(|| format!("run {app}/{config} has no report"))?;
        out.push_str(&format!("\n== {app} / {config} ==\n"));
        out.push_str(&run_report(app, config, rep)?);
    }
    Ok(out)
}

/// The report body for a single run.
fn run_report(app: &str, config: &str, rep: &Json) -> Result<String, String> {
    let cycles = rep
        .get("cycles")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("run {app}/{config}: no cycles field"))?;
    let mut out = String::new();

    // Phase latency percentiles (bulk configs only: baselines have no
    // chunk lifecycle, their phase histograms are empty).
    let latency = rep.get("latency");
    let mut t = Table::new(
        ["phase latency", "count", "p50", "p90", "p99", "max", "mean"]
            .map(str::to_string)
            .to_vec(),
    );
    let mut any = false;
    for phase in PHASES {
        let Some(h) = latency.and_then(|l| l.get(phase)).and_then(hist_from_json) else {
            continue;
        };
        if h.is_empty() {
            continue;
        }
        any = true;
        t.row(vec![
            phase.to_string(),
            h.count().to_string(),
            h.percentile(50.0).to_string(),
            h.percentile(90.0).to_string(),
            h.percentile(99.0).to_string(),
            h.max().to_string(),
            format!("{:.1}", h.mean()),
        ]);
    }
    if any {
        out.push_str(&t.to_string());
    } else {
        out.push_str("no phase latency samples (baseline model)\n");
    }

    // Cycle-loss attribution: one column per core, totals checked.
    if let Some(losses) = rep.get("cycle_loss").and_then(Json::as_arr) {
        if !losses.is_empty() {
            out.push_str(&cycle_loss_table(app, config, cycles, losses)?);
        }
    }

    // Squash-cause attribution and the signature false-positive rate
    // (aliasing squashes over all conflict squashes, Table 3's contrast).
    let alias = rep
        .get("alias_squashes")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let true_sharing = rep
        .get("true_squashes")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let conflicts = alias + true_sharing;
    if conflicts > 0.0 {
        out.push_str(&format!(
            "squashes/1k-instr: alias {alias:.3}, true-sharing {true_sharing:.3} \
             (signature false-positive rate {:.1}%)\n",
            100.0 * alias / conflicts
        ));
    }
    Ok(out)
}

/// Render the per-core cycle-loss table, validating each core's total.
fn cycle_loss_table(
    app: &str,
    config: &str,
    cycles: u64,
    losses: &[Json],
) -> Result<String, String> {
    // Collect the label set across cores, preserving core-0 order.
    let mut labels: Vec<String> = Vec::new();
    for loss in losses {
        for (k, _) in loss.as_obj().unwrap_or(&[]) {
            if k != "total" && !labels.contains(k) {
                labels.push(k.clone());
            }
        }
    }
    let mut header = vec!["cycle loss".to_string()];
    header.extend((0..losses.len()).map(|c| format!("core{c}")));
    let mut t = Table::new(header);
    for label in &labels {
        let mut row = vec![label.clone()];
        for loss in losses {
            row.push(
                loss.get(label)
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    .to_string(),
            );
        }
        t.row(row);
    }
    let mut total_row = vec!["total".to_string()];
    for (core, loss) in losses.iter().enumerate() {
        let total = loss.get("total").and_then(Json::as_u64).unwrap_or(0);
        if total != cycles {
            return Err(format!(
                "run {app}/{config}: core {core} cycle-loss total {total} != run cycles {cycles}"
            ));
        }
        total_row.push(total.to_string());
    }
    t.row(total_row);
    Ok(t.to_string())
}

/// The outcome of reconstructing chunk spans from a JSONL event stream.
#[derive(Debug)]
pub struct Timeline {
    /// Chrome trace (duration events, one per completed chunk span).
    pub chrome_trace: String,
    /// Spans ending in a commit.
    pub commits: u64,
    /// Spans ending in a squash.
    pub squashes: u64,
    /// Spans ending in an end-of-program abandon.
    pub abandons: u64,
    /// Commits/abandons whose `chunk_start` predates the trace (chunks
    /// already open when the tracer attached — e.g. each core's first
    /// chunk, opened at construction time). No span is emitted for them.
    pub orphan_ends: u64,
    /// `chunk_start`s that never terminated (should be empty for a
    /// complete trace of a finished run).
    pub unmatched: Vec<String>,
    /// Event lines parsed after the header. A header-only stream is valid
    /// (a run with tracing attached but nothing emitted) — callers that
    /// expected events should warn when this is zero, not fail.
    pub events: u64,
}

impl Timeline {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} spans ({} commits, {} squashes, {} abandons), {} pre-trace ends, {} unmatched",
            self.commits + self.squashes + self.abandons,
            self.commits,
            self.squashes,
            self.abandons,
            self.orphan_ends,
            self.unmatched.len()
        )
    }
}

/// Reconstruct per-chunk spans from a JSONL event stream.
///
/// A span opens at `chunk_start` and closes at the matching
/// `chunk_commit` or `chunk_abandon`; a `squash` at `(core, seq)` closes
/// every open span on that core with sequence ≥ `seq` (the core discards
/// its whole speculative suffix). Spans become Chrome-trace duration
/// events (`"ph":"X"`) laned per core; unmatched starts are collected for
/// the caller to fail on.
pub fn timeline(jsonl: &str, origin: &str) -> Result<Timeline, String> {
    let mut lines = jsonl.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| format!("{origin}: empty trace (not even a schema header)"))?;
    let h =
        Json::parse(header).ok_or_else(|| format!("{origin}: trace header is not valid JSON"))?;
    let schema = h.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "bulksc-trace" {
        return Err(format!(
            "{origin}: not a bulksc-trace stream (schema {schema:?}, expected \
             \"bulksc-trace\")"
        ));
    }
    let version = h.get("version").and_then(Json::as_u64).unwrap_or(0);
    if !bulksc_trace::schema_supported(version) {
        return Err(format!(
            "{origin}: trace schema version {version} outside supported range {}..={SCHEMA_VERSION}",
            bulksc_trace::MIN_SCHEMA_VERSION
        ));
    }

    // (core, seq) -> start cycle; BTreeMap for deterministic iteration.
    let mut open: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut spans: Vec<String> = Vec::new();
    let (mut commits, mut squashes, mut abandons) = (0u64, 0u64, 0u64);
    let mut orphan_ends = 0u64;
    let mut span = |core: u64, seq: u64, start: u64, end: u64, reason: &str| {
        let entry = Json::obj([
            ("name", format!("chunk {seq} ({reason})").into()),
            ("cat", "chunk".into()),
            ("ph", "X".into()),
            ("ts", start.into()),
            ("dur", (end - start).into()),
            ("pid", Json::U64(0)),
            ("tid", format!("core{core}").into()),
            (
                "args",
                Json::obj([("seq", seq.into()), ("end", reason.into())]),
            ),
        ]);
        spans.push(entry.to_string());
    };

    let mut events = 0u64;
    for (lineno, line) in lines {
        let ev = Json::parse(line)
            .ok_or_else(|| format!("{origin}: line {}: not valid JSON: {line}", lineno + 1))?;
        events += 1;
        let name = ev.get("ev").and_then(Json::as_str).unwrap_or("");
        let t = ev
            .get("t")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{origin}: line {}: event without cycle stamp", lineno + 1))?;
        let core_seq = || -> Option<(u64, u64)> {
            Some((
                ev.get("core").and_then(Json::as_u64)?,
                ev.get("seq").and_then(Json::as_u64)?,
            ))
        };
        match name {
            "chunk_start" => {
                let (core, seq) = core_seq().ok_or_else(|| {
                    format!(
                        "{origin}: line {}: chunk_start missing core/seq",
                        lineno + 1
                    )
                })?;
                if open.insert((core, seq), t).is_some() {
                    return Err(format!(
                        "{origin}: line {}: chunk core{core}#{seq} started twice \
                         without terminating",
                        lineno + 1
                    ));
                }
            }
            "chunk_commit" | "chunk_abandon" => {
                let (core, seq) = core_seq().ok_or_else(|| {
                    format!("{origin}: line {}: {name} missing core/seq", lineno + 1)
                })?;
                if let Some(start) = open.remove(&(core, seq)) {
                    let reason = if name == "chunk_commit" {
                        commits += 1;
                        "commit"
                    } else {
                        abandons += 1;
                        "abandon"
                    };
                    span(core, seq, start, t, reason);
                } else {
                    // The chunk was already open when tracing attached
                    // (every core's first chunk): terminated, but no span.
                    orphan_ends += 1;
                }
            }
            "squash" => {
                let (core, seq) = core_seq().ok_or_else(|| {
                    format!("{origin}: line {}: squash missing core/seq", lineno + 1)
                })?;
                // The squash discards the chunk and every younger one on
                // the same core.
                let doomed: Vec<(u64, u64)> = open
                    .range((core, seq)..(core, u64::MAX))
                    .map(|(&k, _)| k)
                    .collect();
                for key in doomed {
                    let start = open.remove(&key).expect("listed above");
                    squashes += 1;
                    span(key.0, key.1, start, t, "squash");
                }
            }
            _ => {} // other events carry no span boundaries
        }
    }

    let unmatched: Vec<String> = open
        .iter()
        .map(|(&(core, seq), &start)| format!("core{core}#{seq} started at cycle {start}"))
        .collect();

    let mut chrome = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            chrome.push(',');
        }
        chrome.push('\n');
        chrome.push_str(s);
    }
    chrome.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");

    Ok(Timeline {
        chrome_trace: chrome,
        commits,
        squashes,
        abandons,
        orphan_ends,
        unmatched,
        events,
    })
}

/// One metric delta between two artifacts.
#[derive(Debug)]
pub struct Delta {
    /// `app/config · dotted.metric.path`.
    pub path: String,
    /// Value in the first artifact.
    pub a: f64,
    /// Value in the second artifact.
    pub b: f64,
    /// Relative delta in percent (100 when appearing/disappearing).
    pub rel_pct: f64,
}

/// The outcome of comparing two RunLog artifacts.
#[derive(Debug)]
pub struct Diff {
    /// Numeric leaves compared.
    pub compared: u64,
    /// Deltas whose relative change exceeds the threshold, largest first.
    pub breaches: Vec<Delta>,
    /// Runs present in one artifact but not the other.
    pub unpaired: Vec<String>,
}

impl Diff {
    /// True if the two artifacts agree within the threshold everywhere.
    pub fn clean(&self) -> bool {
        self.breaches.is_empty() && self.unpaired.is_empty()
    }

    /// Human-readable comparison report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} metrics compared, {} over threshold, {} unpaired runs\n",
            self.compared,
            self.breaches.len(),
            self.unpaired.len()
        );
        for u in &self.unpaired {
            out.push_str(&format!("  unpaired: {u}\n"));
        }
        if !self.breaches.is_empty() {
            let mut t = Table::new(["metric", "a", "b", "delta%"].map(str::to_string).to_vec());
            for d in self.breaches.iter().take(25) {
                t.row(vec![
                    d.path.clone(),
                    format!("{:.4}", d.a),
                    format!("{:.4}", d.b),
                    format!("{:+.2}", d.rel_pct),
                ]);
            }
            out.push_str(&t.to_string());
            if self.breaches.len() > 25 {
                out.push_str(&format!("  ... and {} more\n", self.breaches.len() - 25));
            }
        }
        out
    }
}

/// Compare two RunLog artifacts; report every numeric leaf whose relative
/// delta exceeds `threshold_pct`.
///
/// Runs are matched by `(app, config)`. Histogram bucket arrays are
/// skipped (summary fields and percentiles cover them at far less noise);
/// every other numeric leaf of each run's report participates.
pub fn diff(
    a_text: &str,
    b_text: &str,
    a_origin: &str,
    b_origin: &str,
    threshold_pct: f64,
) -> Result<Diff, String> {
    let a = load_runlog(a_text, a_origin)?;
    let b = load_runlog(b_text, b_origin)?;
    let index = |doc: &Json| -> Result<BTreeMap<(String, String), Json>, String> {
        let mut map = BTreeMap::new();
        for run in doc.get("runs").and_then(Json::as_arr).unwrap_or(&[]) {
            let app = run.get("app").and_then(Json::as_str).unwrap_or("?");
            let config = run.get("config").and_then(Json::as_str).unwrap_or("?");
            let rep = run
                .get("report")
                .ok_or_else(|| format!("run {app}/{config} has no report"))?;
            map.insert((app.to_string(), config.to_string()), rep.clone());
        }
        Ok(map)
    };
    let runs_a = index(&a)?;
    let runs_b = index(&b)?;

    let mut compared = 0u64;
    let mut breaches: Vec<Delta> = Vec::new();
    let mut unpaired: Vec<String> = Vec::new();
    for key in runs_b.keys() {
        if !runs_a.contains_key(key) {
            unpaired.push(format!("{}/{} (second only)", key.0, key.1));
        }
    }
    for ((app, config), rep_a) in &runs_a {
        let Some(rep_b) = runs_b.get(&(app.clone(), config.clone())) else {
            unpaired.push(format!("{app}/{config} (first only)"));
            continue;
        };
        let mut leaves_a = Vec::new();
        let mut leaves_b = Vec::new();
        numeric_leaves(rep_a, String::new(), &mut leaves_a);
        numeric_leaves(rep_b, String::new(), &mut leaves_b);
        let map_b: BTreeMap<&str, f64> = leaves_b.iter().map(|(p, v)| (p.as_str(), *v)).collect();
        for (path, va) in &leaves_a {
            let Some(&vb) = map_b.get(path.as_str()) else {
                continue; // structural difference: covered by count below
            };
            compared += 1;
            let rel = relative_delta_pct(*va, vb);
            if rel > threshold_pct {
                breaches.push(Delta {
                    path: format!("{app}/{config} · {path}"),
                    a: *va,
                    b: vb,
                    rel_pct: if vb >= *va { rel } else { -rel },
                });
            }
        }
    }
    breaches.sort_by(|x, y| {
        y.rel_pct
            .abs()
            .partial_cmp(&x.rel_pct.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.path.cmp(&y.path))
    });
    Ok(Diff {
        compared,
        breaches,
        unpaired,
    })
}

/// Relative delta in percent, symmetric-safe for zeros.
fn relative_delta_pct(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else if a == 0.0 || b == 0.0 {
        100.0
    } else {
        100.0 * (b - a).abs() / a.abs()
    }
}

/// Collect every numeric leaf of `j` as `(dotted.path, value)`. Histogram
/// bucket arrays are skipped: their summary fields already participate.
fn numeric_leaves(j: &Json, path: String, out: &mut Vec<(String, f64)>) {
    let join = |path: &str, key: &str| {
        if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        }
    };
    match j {
        Json::U64(_) | Json::I64(_) | Json::F64(_) => {
            if let Some(v) = j.as_f64() {
                out.push((path, v));
            }
        }
        Json::Obj(fields) => {
            for (k, v) in fields {
                if k == "buckets" {
                    continue;
                }
                numeric_leaves(v, join(&path, k), out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                numeric_leaves(v, join(&path, &i.to_string()), out);
            }
        }
        _ => {}
    }
}

/// One parsed snapshot row of a `*.metrics.jsonl` heartbeat stream.
struct MetricsSnapRow {
    wall_ns: u64,
    done: u64,
    total: u64,
    in_flight: u64,
    queue_depth: u64,
    queue_peak: u64,
    panicked: u64,
    eta_s: f64,
    is_final: bool,
}

/// Summarize a `results/<name>.metrics.jsonl` heartbeat stream: one table
/// row per snapshot plus the per-interval completion rate (jobs/s between
/// consecutive snapshots, from the monotonic `wall_ns` stamps).
pub fn metrics_report(text: &str, origin: &str) -> Result<String, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| format!("{origin}: empty metrics stream"))?;
    let h =
        Json::parse(header).ok_or_else(|| format!("{origin}: metrics header is not valid JSON"))?;
    let schema = h.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "bulksc-metrics" {
        return Err(format!(
            "{origin}: not a bulksc-metrics stream (schema {schema:?}, expected \
             \"bulksc-metrics\"); record one with --metrics"
        ));
    }
    let version = h.get("version").and_then(Json::as_u64).unwrap_or(0);
    if !bulksc_trace::schema_supported(version) {
        return Err(format!(
            "{origin}: metrics schema version {version} outside supported range \
             {}..={SCHEMA_VERSION}",
            bulksc_trace::MIN_SCHEMA_VERSION
        ));
    }
    let name = h.get("name").and_then(Json::as_str).unwrap_or("?");
    let every_ms = h.get("every_ms").and_then(Json::as_u64).unwrap_or(0);

    let mut snaps: Vec<MetricsSnapRow> = Vec::new();
    for (lineno, line) in lines {
        let j = Json::parse(line)
            .ok_or_else(|| format!("{origin}:{}: snapshot is not valid JSON", lineno + 1))?;
        let u = |key: &str| j.get(key).and_then(Json::as_u64).unwrap_or(0);
        snaps.push(MetricsSnapRow {
            wall_ns: u("wall_ns"),
            done: u("done"),
            total: u("total"),
            in_flight: u("in_flight"),
            queue_depth: u("queue_depth"),
            queue_peak: u("queue_peak"),
            panicked: u("panicked"),
            eta_s: j.get("eta_s").and_then(Json::as_f64).unwrap_or(0.0),
            is_final: j.get("final").and_then(Json::as_bool).unwrap_or(false),
        });
    }

    let mut out = format!(
        "metrics stream {name:?} ({origin}): {} snapshots, every {every_ms} ms\n",
        snaps.len()
    );
    if snaps.is_empty() {
        out.push_str("  (no snapshots — the sweep finished inside the first interval)\n");
        return Ok(out);
    }
    let mut t = Table::new(
        [
            "t +s",
            "done",
            "total",
            "in flight",
            "queue",
            "peak",
            "panicked",
            "eta s",
            "jobs/s",
        ]
        .map(str::to_string)
        .to_vec(),
    );
    let t0 = snaps[0].wall_ns;
    let mut prev: Option<&MetricsSnapRow> = None;
    for s in &snaps {
        // Per-interval completion rate against the previous snapshot.
        let rate = match prev {
            Some(p) if s.wall_ns > p.wall_ns => {
                let dt = (s.wall_ns - p.wall_ns) as f64 / 1e9;
                format!("{:.1}", s.done.saturating_sub(p.done) as f64 / dt)
            }
            _ => "-".to_string(),
        };
        t.row(vec![
            format!(
                "{:.2}{}",
                s.wall_ns.saturating_sub(t0) as f64 / 1e9,
                if s.is_final { " (final)" } else { "" }
            ),
            s.done.to_string(),
            s.total.to_string(),
            s.in_flight.to_string(),
            s.queue_depth.to_string(),
            s.queue_peak.to_string(),
            s.panicked.to_string(),
            format!("{:.1}", s.eta_s),
            rate,
        ]);
        prev = Some(s);
    }
    out.push_str(&t.to_string());
    let last = snaps.last().unwrap();
    out.push_str(&format!(
        "{}/{} jobs done, peak queue {}, {} panicked\n",
        last.done, last.total, last.queue_peak, last.panicked
    ));
    Ok(out)
}

/// Tabulate a `BENCH_<label>.json` trajectory: per-scenario median KIPS
/// across every recorded entry, with the relative delta between the last
/// two entries — throughput history at a glance.
pub fn trend_report(text: &str, origin: &str) -> Result<String, String> {
    let doc = Json::parse(text).ok_or_else(|| format!("{origin}: artifact is not valid JSON"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "bulksc-bench-trajectory" {
        return Err(format!(
            "{origin}: not a bulksc-bench-trajectory artifact (schema {schema:?}); \
             `bulksc-perf` appends one as BENCH_<label>.json"
        ));
    }
    let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
    if !bulksc_trace::schema_supported(version) {
        return Err(format!(
            "{origin}: trajectory schema version {version} outside supported range \
             {}..={SCHEMA_VERSION}",
            bulksc_trace::MIN_SCHEMA_VERSION
        ));
    }
    let entries = doc.get("entries").and_then(Json::as_arr).unwrap_or(&[]);
    let mut out = format!("trajectory {origin}: {} entries\n", entries.len());
    if entries.is_empty() {
        return Ok(out);
    }

    // Entry legend, then one column per entry in the table.
    let mut per_entry: Vec<BTreeMap<String, f64>> = Vec::new();
    let mut scenario_order: Vec<String> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let label = e.get("label").and_then(Json::as_str).unwrap_or("?");
        let budget = e.get("budget").and_then(Json::as_u64).unwrap_or(0);
        let reps = e.get("reps").and_then(Json::as_u64).unwrap_or(0);
        let unix = e.get("unix_secs").and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "  e{i}: label {label:?}, budget {budget}, reps {reps}, unix_secs {unix}\n"
        ));
        let mut kips = BTreeMap::new();
        for s in e.get("scenarios").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            if !scenario_order.contains(&name) {
                scenario_order.push(name.clone());
            }
            kips.insert(
                name,
                s.get("median_kips").and_then(Json::as_f64).unwrap_or(0.0),
            );
        }
        per_entry.push(kips);
    }

    let mut headers: Vec<String> = vec!["scenario".to_string()];
    headers.extend((0..entries.len()).map(|i| format!("e{i} KIPS")));
    headers.push("last Δ%".to_string());
    let mut t = Table::new(headers);
    for name in &scenario_order {
        let mut row = vec![name.clone()];
        for kips in &per_entry {
            row.push(match kips.get(name) {
                Some(k) => format!("{k:.1}"),
                None => "-".to_string(),
            });
        }
        // Delta between the last two entries that actually carry this
        // scenario (a freshly-added cell has no history yet).
        let present: Vec<f64> = per_entry
            .iter()
            .filter_map(|k| k.get(name))
            .copied()
            .collect();
        row.push(match present.as_slice() {
            [.., prev, last] if *prev != 0.0 => {
                format!("{:+.1}", 100.0 * (last - prev) / prev)
            }
            _ => "-".to_string(),
        });
        t.row(row);
    }
    out.push_str(&t.to_string());
    Ok(out)
}

/// The outcome of a conflict-forensics pass over an attributed (`--xray`)
/// event stream.
#[derive(Debug)]
pub struct Xray {
    /// Human-readable forensics report.
    pub text: String,
    /// Graphviz causality graph: aggressor core → victim core, edge
    /// weight = attributed conflicts.
    pub dot: String,
    /// Squash events seen.
    pub squashes: u64,
    /// Commit-deny events seen.
    pub denies: u64,
    /// Events carrying attribution fields (0 means the run was captured
    /// without `--xray`).
    pub attributed: u64,
}

/// Summarize an attributed JSONL event stream: per-site squash/deny
/// counts, the core-pair conflict matrix, the top-`top_n` hot lines with
/// the alias / true-sharing split, the squash-cascade depth histogram,
/// and the per-core aggressor/victim balance.
///
/// Cascade depth is derived from victim→aggressor chains: a squash whose
/// aggressor core was itself squashed since its last commit extends that
/// core's chain by one; a commit resets the core's chain. Depth 1 is an
/// isolated squash, depth ≥2 is a cascade.
///
/// All output is deterministic (BTreeMap ordering throughout), so the
/// report is byte-identical for byte-identical streams.
pub fn xray(jsonl: &str, origin: &str, top_n: usize) -> Result<Xray, String> {
    let mut lines = jsonl.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| format!("{origin}: empty trace (not even a schema header)"))?;
    let h =
        Json::parse(header).ok_or_else(|| format!("{origin}: trace header is not valid JSON"))?;
    let schema = h.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "bulksc-trace" {
        return Err(format!(
            "{origin}: not a bulksc-trace stream (schema {schema:?}, expected \"bulksc-trace\")"
        ));
    }
    let version = h.get("version").and_then(Json::as_u64).unwrap_or(0);
    if !bulksc_trace::schema_supported(version) {
        return Err(format!(
            "{origin}: trace schema version {version} outside supported range {}..={SCHEMA_VERSION}",
            bulksc_trace::MIN_SCHEMA_VERSION
        ));
    }

    let (mut squashes, mut denies, mut attributed) = (0u64, 0u64, 0u64);
    // Squash counts by cause label.
    let mut by_cause: BTreeMap<String, u64> = BTreeMap::new();
    // site -> (squashes, denies).
    let mut sites: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    // (victim core, aggressor core) -> attributed conflicts.
    let mut matrix: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    // line -> (true-sharing, alias, deny) witness counts.
    let mut hot: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    // core -> (times victim of a squash, times denied, times aggressor).
    let mut balance: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    // Cascade chains: core -> depth of its last squash since its last
    // commit; depth -> squash count histogram.
    let mut chain: BTreeMap<u64, u64> = BTreeMap::new();
    let mut cascade: BTreeMap<u64, u64> = BTreeMap::new();

    for (lineno, line) in lines {
        let ev = Json::parse(line)
            .ok_or_else(|| format!("{origin}: line {}: not valid JSON: {line}", lineno + 1))?;
        let name = ev.get("ev").and_then(Json::as_str).unwrap_or("");
        let core = ev.get("core").and_then(Json::as_u64);
        let agg = ev.get("agg_core").and_then(Json::as_u64);
        let site = ev.get("site").and_then(Json::as_str);
        let witnesses: Vec<u64> = ev
            .get("witness")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_u64).collect())
            .unwrap_or_default();
        match name {
            "chunk_commit" => {
                if let Some(c) = core {
                    chain.insert(c, 0);
                }
            }
            "squash" => {
                squashes += 1;
                let victim = core
                    .ok_or_else(|| format!("{origin}: line {}: squash without core", lineno + 1))?;
                let cause = ev.get("cause").and_then(Json::as_str).unwrap_or("?");
                *by_cause.entry(cause.to_string()).or_default() += 1;
                balance.entry(victim).or_default().0 += 1;
                if let Some(site) = site {
                    attributed += 1;
                    sites.entry(site.to_string()).or_default().0 += 1;
                    for &l in &witnesses {
                        let slot = hot.entry(l).or_default();
                        match cause {
                            "true-sharing" => slot.0 += 1,
                            _ => slot.1 += 1,
                        }
                    }
                    if let Some(a) = agg {
                        *matrix.entry((victim, a)).or_default() += 1;
                        balance.entry(a).or_default().2 += 1;
                    }
                    let depth = 1 + agg.and_then(|a| chain.get(&a)).copied().unwrap_or(0);
                    chain.insert(victim, depth);
                    *cascade.entry(depth).or_default() += 1;
                }
            }
            "commit_deny" => {
                denies += 1;
                let victim = core.ok_or_else(|| {
                    format!("{origin}: line {}: commit_deny without core", lineno + 1)
                })?;
                balance.entry(victim).or_default().1 += 1;
                if let Some(site) = site {
                    attributed += 1;
                    sites.entry(site.to_string()).or_default().1 += 1;
                    for &l in &witnesses {
                        hot.entry(l).or_default().2 += 1;
                    }
                    if let Some(a) = agg {
                        *matrix.entry((victim, a)).or_default() += 1;
                        balance.entry(a).or_default().2 += 1;
                    }
                }
            }
            _ => {}
        }
    }

    let cause_of = |label: &str| by_cause.get(label).copied().unwrap_or(0);
    let mut text = format!(
        "xray {origin}: {squashes} squashes ({} true-sharing, {} alias, {} overflow), \
         {denies} denies, {attributed} attributed events\n",
        cause_of("true-sharing"),
        cause_of("alias"),
        cause_of("overflow"),
    );
    if attributed == 0 {
        text.push_str(
            "no attribution fields in this stream — capture it with --xray to get \
             aggressor, witness, and site forensics\n",
        );
    }

    if !sites.is_empty() {
        let mut t = Table::new(
            ["conflict site", "squashes", "denies"]
                .map(str::to_string)
                .to_vec(),
        );
        for (site, (s, d)) in &sites {
            t.row(vec![site.clone(), s.to_string(), d.to_string()]);
        }
        text.push_str(&t.to_string());
    }

    if !matrix.is_empty() {
        let mut cores: Vec<u64> = matrix
            .keys()
            .flat_map(|&(v, a)| [v, a])
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        cores.sort_unstable();
        let mut header = vec!["victim \\ aggressor".to_string()];
        header.extend(cores.iter().map(|c| format!("c{c}")));
        let mut t = Table::new(header);
        for &v in &cores {
            let mut row = vec![format!("c{v}")];
            for &a in &cores {
                row.push(match matrix.get(&(v, a)) {
                    Some(n) => n.to_string(),
                    None => "-".to_string(),
                });
            }
            t.row(row);
        }
        text.push_str(&t.to_string());
    }

    if !hot.is_empty() {
        // Hottest lines first; ties broken by address for determinism.
        let mut lines: Vec<(u64, (u64, u64, u64))> = hot.into_iter().collect();
        lines.sort_by_key(|&(l, (t, a, d))| (std::cmp::Reverse(t + a + d), l));
        let mut t = Table::new(
            ["hot line", "conflicts", "true", "alias", "deny"]
                .map(str::to_string)
                .to_vec(),
        );
        for &(l, (tr, al, de)) in lines.iter().take(top_n) {
            t.row(vec![
                format!("{l:#x}"),
                (tr + al + de).to_string(),
                tr.to_string(),
                al.to_string(),
                de.to_string(),
            ]);
        }
        text.push_str(&t.to_string());
        if lines.len() > top_n {
            text.push_str(&format!("  ... and {} more lines\n", lines.len() - top_n));
        }
    }

    if !cascade.is_empty() {
        let mut t = Table::new(["cascade depth", "squashes"].map(str::to_string).to_vec());
        for (depth, n) in &cascade {
            t.row(vec![depth.to_string(), n.to_string()]);
        }
        text.push_str(&t.to_string());
    }

    if !balance.is_empty() {
        let mut t = Table::new(
            ["core", "squashed", "denied", "aggressor"]
                .map(str::to_string)
                .to_vec(),
        );
        for (core, (sq, de, ag)) in &balance {
            t.row(vec![
                format!("c{core}"),
                sq.to_string(),
                de.to_string(),
                ag.to_string(),
            ]);
        }
        text.push_str(&t.to_string());
    }

    // Causality graph: aggressor → victim, weighted by conflict count.
    let mut dot = String::from("digraph xray {\n  rankdir=LR;\n");
    for (&(v, a), &n) in &matrix {
        dot.push_str(&format!("  c{a} -> c{v} [label=\"{n}\"];\n"));
    }
    dot.push_str("}\n");

    Ok(Xray {
        text,
        dot,
        squashes,
        denies,
        attributed,
    })
}

/// A `bulksc-analyze query` predicate. Every populated dimension must
/// match; an empty filter matches everything.
#[derive(Clone, Debug, Default)]
pub struct QueryFilter {
    /// Only events issued by this core ([`Event::core_id`]).
    pub core: Option<u32>,
    /// Only these event kinds ([`Event::kind_id`]); empty = all kinds.
    pub kinds: Vec<u8>,
    /// Only events with `lo <= t <= hi`.
    pub cycles: Option<(u64, u64)>,
    /// Only events touching this line/word address ([`Event::line_addr`]).
    pub line: Option<u64>,
}

impl QueryFilter {
    /// Could a block with this index row contain a match? Conservative:
    /// never a false negative, so skipping on `false` is sound.
    pub fn block_may_match(&self, m: &BlockMeta) -> bool {
        if let Some(core) = self.core {
            if !m.may_contain_core(core) {
                return false;
            }
        }
        if !self.kinds.is_empty() && !self.kinds.iter().any(|&k| m.may_contain_kind(k)) {
            return false;
        }
        if let Some((lo, hi)) = self.cycles {
            if !m.overlaps_cycles(lo, hi) {
                return false;
            }
        }
        if let Some(addr) = self.line {
            if !m.may_contain_addr(addr) {
                return false;
            }
        }
        true
    }

    /// Does this concrete event match?
    pub fn event_matches(&self, cycle: u64, ev: &Event) -> bool {
        if let Some(core) = self.core {
            if ev.core_id() != Some(core) {
                return false;
            }
        }
        if !self.kinds.is_empty() && !self.kinds.contains(&ev.kind_id()) {
            return false;
        }
        if let Some((lo, hi)) = self.cycles {
            if cycle < lo || cycle > hi {
                return false;
            }
        }
        if let Some(addr) = self.line {
            if ev.line_addr() != Some(addr) {
                return false;
            }
        }
        true
    }

    /// Human rendering of the populated dimensions, for the report header.
    fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(c) = self.core {
            parts.push(format!("core={c}"));
        }
        if !self.kinds.is_empty() {
            let names: Vec<&str> = self
                .kinds
                .iter()
                .map(|&k| Event::KIND_NAMES[k as usize])
                .collect();
            parts.push(format!("kind={}", names.join(",")));
        }
        if let Some((lo, hi)) = self.cycles {
            parts.push(format!("cycles={lo}..{hi}"));
        }
        if let Some(a) = self.line {
            parts.push(format!("line=0x{a:x}"));
        }
        if parts.is_empty() {
            "(match all)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// The aggregation axis of `query --count-by`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountBy {
    /// Event kind name.
    Kind,
    /// Issuing core (`core=N`; events without one under `(none)`).
    Core,
    /// Squash cause label (non-squash matches under `(none)`).
    Cause,
    /// Xray conflict site (unattributed matches under `(none)`).
    Site,
}

impl CountBy {
    /// Parse the `--count-by` argument.
    pub fn parse(s: &str) -> Option<CountBy> {
        Some(match s {
            "kind" => CountBy::Kind,
            "core" => CountBy::Core,
            "cause" => CountBy::Cause,
            "site" => CountBy::Site,
            _ => return None,
        })
    }

    fn key(self, ev: &Event) -> String {
        let none = || "(none)".to_string();
        match self {
            CountBy::Kind => ev.name().to_string(),
            CountBy::Core => ev.core_id().map_or_else(none, |c| format!("core={c}")),
            CountBy::Cause => ev
                .squash_cause()
                .map_or_else(none, |c| c.label().to_string()),
            CountBy::Site => ev.xray_site().map_or_else(none, str::to_string),
        }
    }

    fn label(self) -> &'static str {
        match self {
            CountBy::Kind => "kind",
            CountBy::Core => "core",
            CountBy::Cause => "cause",
            CountBy::Site => "site",
        }
    }
}

/// The result of one query: matched lines (JSONL-rendered, capped at the
/// limit), the aggregation, and — for indexed input — proof of how much
/// work the index saved.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// How the filter rendered (for the report header).
    pub filter: String,
    /// Matching events re-rendered as JSONL, up to the caller's limit.
    pub lines: Vec<String>,
    /// Total matching events (may exceed `lines.len()`).
    pub matched: u64,
    /// Events actually decoded and tested.
    pub scanned: u64,
    /// Blocks in the artifact (0 for JSONL full scans).
    pub blocks_total: usize,
    /// Blocks the index let the query decode.
    pub blocks_decoded: usize,
    /// Blocks skipped without decoding.
    pub blocks_skipped: usize,
    /// `--count-by` table, sorted by descending count then key.
    pub agg: Option<(CountBy, Vec<(String, u64)>)>,
}

impl QueryReport {
    /// Render the report. `stats` adds the block-skip line (the proof the
    /// index worked); omit it for format-agnostic output.
    pub fn render(&self, origin: &str, stats: bool) -> String {
        let mut out = format!("# query {origin}\nfilter: {}\n", self.filter);
        if stats {
            out.push_str(&format!(
                "blocks: {} total, {} decoded, {} skipped by index\n",
                self.blocks_total, self.blocks_decoded, self.blocks_skipped
            ));
        }
        out.push_str(&format!(
            "matched {} of {} scanned events\n",
            self.matched, self.scanned
        ));
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        let shown = self.lines.len() as u64;
        if self.matched > shown {
            out.push_str(&format!(
                "... ({} more; raise --limit to see them)\n",
                self.matched - shown
            ));
        }
        if let Some((by, rows)) = &self.agg {
            out.push_str(&format!("count by {}:\n", by.label()));
            let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (key, n) in rows {
                out.push_str(&format!("  {key:<width$}  {n}\n"));
            }
        }
        out
    }
}

/// Shared tail of both query paths: test events, collect lines + agg.
struct QueryAccum<'f> {
    filter: &'f QueryFilter,
    limit: usize,
    lines: Vec<String>,
    matched: u64,
    scanned: u64,
    counts: BTreeMap<String, u64>,
    count_by: Option<CountBy>,
}

impl<'f> QueryAccum<'f> {
    fn new(filter: &'f QueryFilter, count_by: Option<CountBy>, limit: usize) -> QueryAccum<'f> {
        QueryAccum {
            filter,
            limit,
            lines: Vec::new(),
            matched: 0,
            scanned: 0,
            counts: BTreeMap::new(),
            count_by,
        }
    }

    fn feed(&mut self, cycle: u64, ev: &Event) {
        self.scanned += 1;
        if !self.filter.event_matches(cycle, ev) {
            return;
        }
        self.matched += 1;
        if self.limit == 0 || self.lines.len() < self.limit {
            self.lines.push(ev.jsonl(cycle));
        }
        if let Some(by) = self.count_by {
            *self.counts.entry(by.key(ev)).or_insert(0) += 1;
        }
    }

    fn into_report(self, filter_desc: String, blocks: (usize, usize, usize)) -> QueryReport {
        let agg = self.count_by.map(|by| {
            let mut rows: Vec<(String, u64)> = self.counts.into_iter().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            (by, rows)
        });
        QueryReport {
            filter: filter_desc,
            lines: self.lines,
            matched: self.matched,
            scanned: self.scanned,
            blocks_total: blocks.0,
            blocks_decoded: blocks.1,
            blocks_skipped: blocks.2,
            agg,
        }
    }
}

/// Query an indexed BTF artifact. Blocks whose index row cannot match the
/// filter are **never decoded** — `blocks_skipped` counts them, and the
/// skip-proof test pins that behaviour. `limit` caps rendered lines
/// (0 = unlimited); counting is never capped.
pub fn query_btf<R: std::io::Read + std::io::Seek>(
    btf: &mut bulksc_trace::IndexedBtf<R>,
    origin: &str,
    filter: &QueryFilter,
    count_by: Option<CountBy>,
    limit: usize,
) -> Result<QueryReport, String> {
    let metas: Vec<BlockMeta> = btf.index().to_vec();
    let mut acc = QueryAccum::new(filter, count_by, limit);
    let mut decoded = 0usize;
    for (i, meta) in metas.iter().enumerate() {
        if !filter.block_may_match(meta) {
            continue;
        }
        decoded += 1;
        for (cycle, ev) in btf
            .read_block(i)
            .map_err(|e| format!("{origin}: block {i}: {e}"))?
        {
            acc.feed(cycle, &ev);
        }
    }
    let total = metas.len();
    Ok(acc.into_report(filter.describe(), (total, decoded, total - decoded)))
}

/// Query a JSONL trace by full scan — the fallback for text input, and
/// the reference the index-skipping path is tested against.
pub fn query_jsonl(
    jsonl: &str,
    origin: &str,
    filter: &QueryFilter,
    count_by: Option<CountBy>,
    limit: usize,
) -> Result<QueryReport, String> {
    let mut lines = jsonl.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| format!("{origin}: empty trace (not even a schema header)"))?;
    bulksc_trace::btf::parse_jsonl_header(header).map_err(|e| format!("{origin}: {e}"))?;
    let mut acc = QueryAccum::new(filter, count_by, limit);
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let obj =
            Json::parse(line).ok_or_else(|| format!("{origin}: line {}: not valid JSON", i + 1))?;
        let (cycle, ev) = bulksc_trace::btf::event_from_json(&obj)
            .map_err(|e| format!("{origin}: line {}: {e}", i + 1))?;
        acc.feed(cycle, &ev);
    }
    Ok(acc.into_report(filter.describe(), (0, 0, 0)))
}

/// Render a BTF artifact's observability footprint: format, size, and
/// block/index statistics. This is what `report` prints for a `.btf`
/// companion.
pub fn btf_stats<R: std::io::Read + std::io::Seek>(
    btf: &bulksc_trace::IndexedBtf<R>,
    origin: &str,
) -> String {
    let metas = btf.index();
    let events: u64 = metas.iter().map(|m| m.count as u64).sum();
    let payload: u64 = metas.iter().map(|m| m.len as u64).sum();
    let mut kind_mask = 0u32;
    let mut core_mask = 0u64;
    let (mut min_cycle, mut max_cycle) = (u64::MAX, 0u64);
    for m in metas {
        kind_mask |= m.kind_mask;
        core_mask |= m.core_mask;
        if m.count > 0 {
            min_cycle = min_cycle.min(m.min_cycle);
            max_cycle = max_cycle.max(m.max_cycle);
        }
    }
    let kinds: Vec<&str> = Event::KIND_NAMES
        .iter()
        .enumerate()
        .filter(|(i, _)| kind_mask & (1 << i) != 0)
        .map(|(_, &n)| n)
        .collect();
    let mut out = format!(
        "# trace {origin}\nformat: btf (schema v{}), {} bytes\n",
        btf.version(),
        btf.file_len()
    );
    out.push_str(&format!(
        "blocks: {} ({} payload bytes, {} index bytes)\n",
        metas.len(),
        payload,
        metas.len() * 64 + 4
    ));
    if events == 0 {
        out.push_str("events: 0\n");
        return out;
    }
    out.push_str(&format!(
        "events: {events} ({:.1} bytes/event), cycles {min_cycle}..{max_cycle}\n",
        btf.file_len() as f64 / events as f64,
    ));
    out.push_str(&format!(
        "kinds: {}\ncores (bitmap): {}\n",
        kinds.join(","),
        core_mask.count_ones()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::RunLog;
    use crate::run_app;
    use bulksc::{BulkConfig, Model};

    #[test]
    fn xray_report_attributes_conflicts() {
        let header = bulksc_trace::jsonl_header();
        let trace = format!(
            "{header}\n\
             {{\"t\":1,\"ev\":\"commit_deny\",\"core\":1,\"seq\":4,\"agg_core\":0,\"agg_seq\":2,\"site\":\"arb\",\"witness\":[16]}}\n\
             {{\"t\":5,\"ev\":\"squash\",\"core\":1,\"seq\":4,\"cause\":\"true-sharing\",\"squashed_instrs\":100,\"agg_core\":0,\"agg_seq\":2,\"site\":\"wsig\",\"witness\":[16,17]}}\n\
             {{\"t\":9,\"ev\":\"squash\",\"core\":2,\"seq\":7,\"cause\":\"alias\",\"squashed_instrs\":50,\"agg_core\":1,\"agg_seq\":4,\"site\":\"wsig\",\"witness\":[]}}\n\
             {{\"t\":12,\"ev\":\"chunk_commit\",\"core\":1,\"seq\":5,\"read_lines\":1,\"write_lines\":1,\"priv_lines\":0}}\n\
             {{\"t\":15,\"ev\":\"squash\",\"core\":3,\"seq\":1,\"cause\":\"overflow\",\"squashed_instrs\":10,\"site\":\"overflow\",\"witness\":[]}}\n"
        );
        let x = xray(&trace, "mem", 10).unwrap();
        assert_eq!(x.squashes, 3);
        assert_eq!(x.denies, 1);
        assert_eq!(x.attributed, 4);
        assert!(
            x.text.contains("1 true-sharing, 1 alias, 1 overflow"),
            "{}",
            x.text
        );
        // Hot line 0x10 appears as both a deny and a true-sharing witness.
        assert!(x.text.contains("0x10"), "{}", x.text);
        assert!(x.text.contains("0x11"), "{}", x.text);
        // Core 2's squash was aggressed by core 1, whose own squash is
        // still live: a depth-2 cascade.
        assert!(x.text.contains("cascade depth"), "{}", x.text);
        let cascade_rows: Vec<&str> = x
            .text
            .lines()
            .skip_while(|l| !l.contains("cascade depth"))
            .take(4)
            .collect();
        assert!(
            cascade_rows.iter().any(|l| l.trim_start().starts_with('2')),
            "depth-2 row present: {cascade_rows:?}"
        );
        // Causality edges run aggressor → victim.
        assert!(x.dot.contains("c0 -> c1"), "{}", x.dot);
        assert!(x.dot.contains("c1 -> c2"), "{}", x.dot);
        // Deterministic: same stream, same bytes.
        let again = xray(&trace, "mem", 10).unwrap();
        assert_eq!(x.text, again.text);
        assert_eq!(x.dot, again.dot);
    }

    #[test]
    fn xray_flags_unattributed_streams_and_bad_headers() {
        let header = bulksc_trace::jsonl_header();
        let trace = format!(
            "{header}\n{{\"t\":5,\"ev\":\"squash\",\"core\":1,\"seq\":4,\
             \"cause\":\"alias\",\"squashed_instrs\":7}}\n"
        );
        let x = xray(&trace, "mem", 10).unwrap();
        assert_eq!(x.squashes, 1);
        assert_eq!(x.attributed, 0);
        assert!(x.text.contains("--xray"), "{}", x.text);
        assert!(xray("", "mem", 10).is_err());
        assert!(xray("{\"schema\":\"other\"}\n", "mem", 10).is_err());
        assert!(xray("{\"schema\":\"bulksc-trace\",\"version\":999}\n", "mem", 10).is_err());
    }

    #[test]
    fn xray_capture_round_trips_through_the_analyzer() {
        let stream = crate::xray::capture_stream(2_000);
        let x = xray(&stream, "mem", 10).unwrap();
        assert!(
            x.attributed > 0,
            "pinned capture must contain attributed events"
        );
        assert!(x.text.contains("conflict site"), "{}", x.text);
        // And the capture itself is deterministic.
        assert_eq!(stream, crate::xray::capture_stream(2_000));
    }

    #[test]
    fn metrics_report_renders_snapshots_and_rates() {
        let stream = "\
{\"schema\":\"bulksc-metrics\",\"version\":4,\"name\":\"fig9\",\"every_ms\":100}
{\"wall_ns\":1000000000,\"done\":2,\"total\":13,\"in_flight\":2,\"queue_depth\":9,\"queue_peak\":13,\"panicked\":0,\"eta_s\":5.5,\"final\":false}
{\"wall_ns\":2000000000,\"done\":6,\"total\":13,\"in_flight\":2,\"queue_depth\":5,\"queue_peak\":13,\"panicked\":0,\"eta_s\":2.3,\"final\":false}
{\"wall_ns\":3000000000,\"done\":13,\"total\":13,\"in_flight\":0,\"queue_depth\":0,\"queue_peak\":13,\"panicked\":0,\"eta_s\":0.0,\"final\":true}
";
        let out = metrics_report(stream, "results/fig9.metrics.jsonl").unwrap();
        assert!(out.contains("\"fig9\""), "{out}");
        assert!(out.contains("3 snapshots"), "{out}");
        // Interval rates: (6-2)/1s = 4.0 and (13-6)/1s = 7.0 jobs/s.
        assert!(out.contains("4.0"), "{out}");
        assert!(out.contains("7.0"), "{out}");
        assert!(out.contains("(final)"), "{out}");
        assert!(out.contains("13/13 jobs done, peak queue 13"), "{out}");

        // Header-only stream (sweep beat the first interval) still renders.
        let empty =
            "{\"schema\":\"bulksc-metrics\",\"version\":4,\"name\":\"t\",\"every_ms\":100}\n";
        let out = metrics_report(empty, "x").unwrap();
        assert!(out.contains("0 snapshots"), "{out}");

        // Wrong schema / unsupported version are refused with names.
        let e = metrics_report("{\"schema\":\"nope\"}", "bad.jsonl").unwrap_err();
        assert!(
            e.contains("bad.jsonl") && e.contains("bulksc-metrics"),
            "{e}"
        );
        let e = metrics_report("{\"schema\":\"bulksc-metrics\",\"version\":1}", "old.jsonl")
            .unwrap_err();
        assert!(e.contains("version 1"), "{e}");
    }

    #[test]
    fn trend_report_tabulates_trajectory_deltas() {
        let doc = crate::perf::trajectory_append(
            None,
            &Json::parse(
                "{\"schema\":\"bulksc-perf\",\"version\":4,\"label\":\"seed\",\"budget\":1000,\
                 \"reps\":2,\"scenarios\":[{\"name\":\"bsc8\",\"median_kips\":100.0},\
                 {\"name\":\"sc8\",\"median_kips\":50.0}]}",
            )
            .unwrap(),
            1_000,
        )
        .unwrap();
        let doc = crate::perf::trajectory_append(
            Some(&doc),
            &Json::parse(
                "{\"schema\":\"bulksc-perf\",\"version\":4,\"label\":\"seed\",\"budget\":1000,\
                 \"reps\":2,\"scenarios\":[{\"name\":\"bsc8\",\"median_kips\":110.0},\
                 {\"name\":\"sc8\",\"median_kips\":45.0}]}",
            )
            .unwrap(),
            2_000,
        )
        .unwrap();
        let out = trend_report(&doc, "BENCH_seed.json").unwrap();
        assert!(out.contains("2 entries"), "{out}");
        assert!(out.contains("e0") && out.contains("e1"), "{out}");
        assert!(out.contains("bsc8") && out.contains("sc8"), "{out}");
        assert!(out.contains("+10.0"), "bsc8 sped up 10%: {out}");
        assert!(out.contains("-10.0"), "sc8 slowed 10%: {out}");

        let e = trend_report("{\"schema\":\"nope\"}", "BENCH_x.json").unwrap_err();
        assert!(e.contains("BENCH_x.json"), "{e}");
    }

    #[test]
    fn trend_report_handles_empty_and_single_entry_trajectories() {
        // Empty trajectory: a sane one-liner, never a panic.
        let empty = format!(
            "{{\"schema\":\"bulksc-bench-trajectory\",\"version\":{SCHEMA_VERSION},\"entries\":[]}}"
        );
        let out = trend_report(&empty, "BENCH_empty.json").unwrap();
        assert!(out.contains("0 entries"), "{out}");

        // Single entry: the table renders and the last-delta column shows
        // "-" (no history to delta against).
        let doc = crate::perf::trajectory_append(
            None,
            &Json::parse(
                "{\"schema\":\"bulksc-perf\",\"version\":4,\"label\":\"seed\",\"budget\":1000,\
                 \"reps\":2,\"scenarios\":[{\"name\":\"bsc8\",\"median_kips\":100.0}]}",
            )
            .unwrap(),
            1_000,
        )
        .unwrap();
        let out = trend_report(&doc, "BENCH_one.json").unwrap();
        assert!(out.contains("1 entries"), "{out}");
        let row = out
            .lines()
            .find(|l| l.contains("bsc8"))
            .expect("scenario row");
        assert_eq!(
            row.split_whitespace().last(),
            Some("-"),
            "single entry has no delta: {row}"
        );
    }

    #[test]
    fn metrics_report_tolerates_older_snapshots_and_empty_streams() {
        // A v3-era snapshot row without wall_ns: the rate column degrades
        // to a computed value against stamp 0, no panic, and the v3
        // header is still accepted (additive schema history).
        let stream = "\
{\"schema\":\"bulksc-metrics\",\"version\":3,\"name\":\"old\",\"every_ms\":100}
{\"done\":2,\"total\":4,\"in_flight\":1,\"queue_depth\":1,\"queue_peak\":4,\"panicked\":0,\"eta_s\":1.0,\"final\":false}
{\"wall_ns\":2000000000,\"done\":4,\"total\":4,\"in_flight\":0,\"queue_depth\":0,\"queue_peak\":4,\"panicked\":0,\"eta_s\":0.0,\"final\":true}
";
        let out = metrics_report(stream, "old.metrics.jsonl").unwrap();
        assert!(out.contains("2 snapshots"), "{out}");
        assert!(out.contains("4/4 jobs done"), "{out}");

        // A fully empty file is a named error, not a panic.
        let e = metrics_report("", "empty.metrics.jsonl").unwrap_err();
        assert!(e.contains("empty.metrics.jsonl"), "{e}");
    }

    fn sample_runlog() -> String {
        let app = bulksc_workloads::by_name("lu").unwrap();
        let r = run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, 1_500);
        let mut log = RunLog::new("analyze-test", 1_500);
        log.record("lu", "BSCdypvt", &r);
        let mut text = log.to_json().to_string();
        text.push('\n');
        text
    }

    #[test]
    fn report_summarizes_a_runlog() {
        let text = sample_runlog();
        let out = report(&text, "results/analyze-test.json").expect("report succeeds");
        assert!(out.contains("analyze-test"));
        assert!(out.contains("lu / BSCdypvt"));
        assert!(out.contains("arbitration"), "phase table present: {out}");
        assert!(out.contains("committed"), "cycle-loss table present");
        assert!(out.contains("total"));
    }

    #[test]
    fn report_rejects_wrong_schema() {
        assert!(report("{\"schema\":\"nope\"}", "x.json").is_err());
        assert!(report("{\"schema\":\"bulksc-runlog\",\"version\":1}", "x.json").is_err());
        assert!(report("not json", "x.json").is_err());
    }

    #[test]
    fn schema_errors_name_the_file_and_both_versions() {
        // Wrong schema string: the message carries the path and what was
        // found vs expected.
        let e = report("{\"schema\":\"nope\"}", "results/old.json").unwrap_err();
        assert!(e.contains("results/old.json"), "{e}");
        assert!(e.contains("nope") && e.contains("bulksc-runlog"), "{e}");
        // Stale version: the message carries both version numbers.
        let e = report(
            "{\"schema\":\"bulksc-runlog\",\"version\":1}",
            "results/stale.json",
        )
        .unwrap_err();
        assert!(e.contains("results/stale.json"), "{e}");
        assert!(
            e.contains("version 1") && e.contains(&SCHEMA_VERSION.to_string()),
            "{e}"
        );
        // Invalid JSON: still names the file.
        let e = report("not json", "results/garbage.json").unwrap_err();
        assert!(e.contains("results/garbage.json"), "{e}");
        // Trace loader: same contract.
        let e = timeline(
            "{\"schema\":\"bulksc-trace\",\"version\":999}\n",
            "run.trace.jsonl",
        )
        .unwrap_err();
        assert!(e.contains("run.trace.jsonl"), "{e}");
        assert!(
            e.contains("999") && e.contains(&SCHEMA_VERSION.to_string()),
            "{e}"
        );
        // Diff names whichever side is broken.
        let good = sample_runlog();
        let e = diff(&good, "not json", "a.json", "b.json", 0.0).unwrap_err();
        assert!(e.contains("b.json") && !e.contains("a.json"), "{e}");
    }

    #[test]
    fn diff_of_identical_artifacts_is_clean() {
        let text = sample_runlog();
        let d = diff(&text, &text, "a.json", "b.json", 0.0).expect("diff succeeds");
        assert!(d.clean(), "self-diff must be clean: {}", d.render());
        assert!(d.compared > 30, "compares many metrics: {}", d.compared);
    }

    #[test]
    fn diff_detects_arbiter_config_change_at_one_percent() {
        // The acceptance gate: two runs that differ only in the arbiter
        // organization (1 range arbiter vs 4 + G-arbiter) disagree on
        // commit-latency and denial metrics well past a 1% threshold.
        use bulksc::{SimReport, System, SystemConfig};
        use bulksc_workloads::{SyntheticApp, ThreadProgram};
        let app = bulksc_workloads::by_name("ocean").unwrap();
        let artifact = |config: BulkConfig, dirs: u32| {
            let mut cfg = SystemConfig::cmp8(Model::Bulk(config));
            cfg.dirs = dirs;
            cfg.budget = 1_500;
            let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
                .map(|t| {
                    Box::new(SyntheticApp::new(app, t, cfg.cores, crate::SEED))
                        as Box<dyn ThreadProgram>
                })
                .collect();
            let mut sys = System::new(cfg, programs);
            assert!(sys.run(u64::MAX / 4));
            let r = SimReport::collect(&sys);
            let mut log = RunLog::new("arb-compare", 1_500);
            // Same config label on both sides so the runs pair up.
            log.record("ocean", "arb", &r);
            let mut text = log.to_json().to_string();
            text.push('\n');
            text
        };
        let one = artifact(BulkConfig::bsc_base(), 1);
        let four = artifact(BulkConfig::bsc_base().with_arbiters(4), 4);
        let d = diff(&one, &four, "one.json", "four.json", 1.0).expect("diff succeeds");
        assert!(
            !d.clean(),
            "different arbiter configs must breach a 1% threshold"
        );
        // And the same artifact against itself stays clean at 0%.
        assert!(diff(&one, &one, "one.json", "one.json", 0.0)
            .unwrap()
            .clean());
    }

    #[test]
    fn diff_flags_changed_metrics() {
        let text = sample_runlog();
        let bumped = text.replace("\"cycles\":", "\"cycles\":9");
        let d = diff(&text, &bumped, "a.json", "b.json", 1.0).expect("diff succeeds");
        assert!(!d.clean());
        assert!(d.breaches.iter().any(|b| b.path.contains("cycles")));
        let rendered = d.render();
        assert!(rendered.contains("cycles"));
    }

    #[test]
    fn timeline_matches_every_chunk_start() {
        let header = bulksc_trace::jsonl_header();
        let trace = format!(
            "{header}\n\
             {{\"t\":0,\"ev\":\"chunk_start\",\"core\":0,\"seq\":0}}\n\
             {{\"t\":5,\"ev\":\"chunk_start\",\"core\":0,\"seq\":1}}\n\
             {{\"t\":9,\"ev\":\"chunk_commit\",\"core\":0,\"seq\":0,\"read_lines\":1,\"write_lines\":1,\"priv_lines\":0}}\n\
             {{\"t\":12,\"ev\":\"chunk_start\",\"core\":0,\"seq\":2}}\n\
             {{\"t\":15,\"ev\":\"squash\",\"core\":0,\"seq\":1,\"cause\":\"alias\",\"squashed_instrs\":4}}\n\
             {{\"t\":20,\"ev\":\"chunk_start\",\"core\":0,\"seq\":1}}\n\
             {{\"t\":25,\"ev\":\"chunk_abandon\",\"core\":0,\"seq\":1}}\n"
        );
        let tl = timeline(&trace, "mem").expect("timeline succeeds");
        assert_eq!(tl.commits, 1);
        assert_eq!(tl.squashes, 2, "squash closes seq 1 and the younger 2");
        assert_eq!(tl.abandons, 1);
        assert!(tl.unmatched.is_empty(), "unmatched: {:?}", tl.unmatched);
        assert_eq!(tl.orphan_ends, 0);
        assert!(bulksc_trace::json::is_valid(&tl.chrome_trace));
        assert!(tl.summary().contains("4 spans"));
    }

    #[test]
    fn timeline_reports_unterminated_chunks() {
        let header = bulksc_trace::jsonl_header();
        let trace = format!("{header}\n{{\"t\":0,\"ev\":\"chunk_start\",\"core\":2,\"seq\":7}}\n");
        let tl = timeline(&trace, "mem").expect("parse succeeds");
        assert_eq!(tl.unmatched, vec!["core2#7 started at cycle 0"]);
    }

    #[test]
    fn timeline_rejects_bad_headers() {
        assert!(timeline("", "mem").is_err());
        assert!(timeline("{\"schema\":\"bulksc-trace\",\"version\":999}\n", "mem").is_err());
        assert!(timeline("{\"schema\":\"other\"}\n", "mem").is_err());
    }

    #[test]
    fn timeline_accepts_header_only_trace() {
        // A valid stream with zero events (tracer attached, nothing
        // emitted) is not an error: zero spans, zero events, and a chrome
        // trace that still parses.
        let header = bulksc_trace::jsonl_header();
        for text in [header.clone(), format!("{header}\n")] {
            let tl = timeline(&text, "empty.trace.jsonl").expect("header-only trace is valid");
            assert_eq!(tl.events, 0);
            assert_eq!(tl.commits + tl.squashes + tl.abandons, 0);
            assert!(tl.unmatched.is_empty());
            assert!(bulksc_trace::json::is_valid(&tl.chrome_trace));
        }
    }

    /// Satellite check for every Chrome trace we emit: parses with the
    /// in-repo reader, has a traceEvents array, and each lane's `ts`
    /// values are monotonically non-decreasing with sane `dur`.
    fn assert_chrome_sane(text: &str) {
        let doc = Json::parse(text).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let mut last_ts: BTreeMap<String, u64> = BTreeMap::new();
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            let ts = ev.get("ts").and_then(Json::as_u64).expect("ts is u64");
            let _dur = ev.get("dur").and_then(Json::as_u64).expect("dur is u64");
            let tid = ev
                .get("tid")
                .and_then(Json::as_str)
                .expect("tid labels the lane")
                .to_string();
            if let Some(prev) = last_ts.get(&tid) {
                assert!(ts >= *prev, "lane {tid}: ts {ts} < previous {prev}");
            }
            last_ts.insert(tid, ts);
        }
    }

    #[test]
    fn chrome_traces_are_valid_and_monotonic() {
        // Timeline chrome trace from a real traced run.
        use bulksc::{BulkConfig, Model, System, SystemConfig};
        use bulksc_trace::{JsonlTracer, TraceHandle};
        use bulksc_workloads::{SyntheticApp, ThreadProgram};
        let app = bulksc_workloads::by_name("lu").unwrap();
        let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
        cfg.budget = 1_000;
        let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
            .map(|t| {
                Box::new(SyntheticApp::new(app, t, cfg.cores, crate::SEED))
                    as Box<dyn ThreadProgram>
            })
            .collect();
        let mut sys = System::new(cfg, programs);
        let sink = JsonlTracer::shared();
        let mut handle = TraceHandle::off();
        handle.attach(sink.clone());
        sys.set_tracer(handle);
        assert!(sys.run(u64::MAX / 4));
        let jsonl = sink.borrow().contents().to_string();
        let tl = timeline(&jsonl, "mem").expect("timeline succeeds");
        assert!(tl.events > 0, "traced run emits events");
        assert_chrome_sane(&tl.chrome_trace);

        // Profiler chrome trace from a real perf scenario.
        let cell = crate::perf::matrix()
            .into_iter()
            .find(|s| s.name == "bsc8")
            .unwrap();
        let r = crate::perf::run_scenario(&cell, 800, 0, 1);
        let doc = crate::perf::perf_json(&[r], "chrome-test", 800, 0, 1).to_string();
        let chrome = crate::perf::prof_chrome(&doc, "mem").expect("prof chrome renders");
        assert_chrome_sane(&chrome);
    }
}
