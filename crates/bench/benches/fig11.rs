//! Traffic-accounting overhead with and without the RSig optimization.
//! The full figure comes from the `fig11` binary. Hand-rolled harness —
//! runs offline.

use bulksc::{BulkConfig, Model};
use bulksc_bench::run_app;
use bulksc_bench::timing::bench;
use bulksc_workloads::by_name;

fn main() {
    let app = by_name("ocean").expect("catalog app");
    bench("fig11/ocean_dypvt_rsig_3k", 10, || {
        run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, 3_000)
    });
    bench("fig11/ocean_dypvt_norsig_3k", 10, || {
        run_app(
            Model::Bulk(BulkConfig::bsc_dypvt().without_rsig()),
            &app,
            3_000,
        )
    });
}
