//! Criterion wrapper around the Figure 11 experiment: traffic-accounting
//! overhead with and without the RSig optimization. The full figure comes
//! from the `fig11` binary.

use bulksc::{BulkConfig, Model};
use bulksc_bench::run_app;
use bulksc_workloads::by_name;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig11(c: &mut Criterion) {
    let app = by_name("ocean").expect("catalog app");
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("ocean_dypvt_rsig_3k", |b| {
        b.iter(|| run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, 3_000))
    });
    g.bench_function("ocean_dypvt_norsig_3k", |b| {
        b.iter(|| run_app(Model::Bulk(BulkConfig::bsc_dypvt().without_rsig()), &app, 3_000))
    });
    g.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
