//! Criterion wrapper around the Figure 9 experiment: wall-clock of
//! simulating one representative app under RC and BSCdypvt. Tracks
//! simulator performance regressions; the full figure comes from the
//! `fig9` binary.

use bulksc::{BulkConfig, Model};
use bulksc_bench::run_app;
use bulksc_cpu::BaselineModel;
use bulksc_workloads::by_name;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig9(c: &mut Criterion) {
    let app = by_name("lu").expect("catalog app");
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("lu_rc_3k", |b| {
        b.iter(|| run_app(Model::Baseline(BaselineModel::Rc), &app, 3_000))
    });
    g.bench_function("lu_bscdypvt_3k", |b| {
        b.iter(|| run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, 3_000))
    });
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
