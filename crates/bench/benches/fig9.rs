//! Wall-clock of simulating one representative app under RC and
//! BSCdypvt. Tracks simulator performance regressions; the full figure
//! comes from the `fig9` binary. Hand-rolled harness — runs offline.

use bulksc::{BulkConfig, Model};
use bulksc_bench::run_app;
use bulksc_bench::timing::bench;
use bulksc_cpu::BaselineModel;
use bulksc_workloads::by_name;

fn main() {
    let app = by_name("lu").expect("catalog app");
    bench("fig9/lu_rc_3k", 10, || {
        run_app(Model::Baseline(BaselineModel::Rc), &app, 3_000)
    });
    bench("fig9/lu_bscdypvt_3k", 10, || {
        run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, 3_000)
    });
}
