//! Cost of the Table 3/4 characterization counters: verifies the
//! instrumentation is cheap. The full tables come from the `table3` and
//! `table4` binaries. Hand-rolled harness — runs offline.

use bulksc::{BulkConfig, Model};
use bulksc_bench::run_app;
use bulksc_bench::timing::bench;
use bulksc_workloads::by_name;

fn main() {
    for name in ["barnes", "radix"] {
        let app = by_name(name).expect("catalog app");
        bench(&format!("tables/{name}_characterization_3k"), 10, || {
            let r = run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, 3_000);
            assert!(r.chunks_committed > 0);
            r
        });
    }
}
