//! Criterion wrapper around the Table 3/4 instrumentation: verifies the
//! characterization counters cost little. The full tables come from the
//! `table3` and `table4` binaries.

use bulksc::{BulkConfig, Model};
use bulksc_bench::run_app;
use bulksc_workloads::by_name;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    for name in ["barnes", "radix"] {
        let app = by_name(name).expect("catalog app");
        g.bench_function(format!("{name}_characterization_3k"), |b| {
            b.iter(|| {
                let r = run_app(Model::Bulk(BulkConfig::bsc_dypvt()), &app, 3_000);
                assert!(r.chunks_committed > 0);
                r
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
