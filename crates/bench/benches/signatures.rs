//! Microbenchmarks of the Bulk signature primitives (Figure 2
//! operations): the hardware-hot path of the whole design. Hand-rolled
//! harness (`bulksc_bench::timing`) — runs offline with no external
//! dependencies.

use bulksc_bench::timing::bench;
use bulksc_sig::{ExactSet, LineAddr, Signature, SignatureConfig};
use std::hint::black_box;

fn main() {
    let cfg = SignatureConfig::default();
    let lines: Vec<LineAddr> = (0..64u64).map(|i| LineAddr(i * 977)).collect();
    let a = Signature::from_lines(&cfg, lines.iter().copied());
    let b = Signature::from_lines(&cfg, (0..64u64).map(|i| LineAddr(1_000_000 + i * 1009)));

    bench("sig_insert_64", 10_000, || {
        let mut s = Signature::new(&cfg);
        for &l in &lines {
            s.insert(black_box(l));
        }
        s
    });
    bench("sig_intersects", 100_000, || {
        black_box(&a).intersects(black_box(&b))
    });
    bench("sig_membership", 100_000, || {
        black_box(&a).contains(black_box(LineAddr(12345)))
    });
    bench("sig_decode_sets_256", 1_000, || {
        black_box(&a).decode_sets(256)
    });
    let ea: ExactSet = lines.iter().copied().collect();
    let eb: ExactSet = (0..64u64).map(|i| LineAddr(i * 31)).collect();
    bench("exact_intersects_64", 100_000, || {
        black_box(&ea).intersects(black_box(&eb))
    });
}
