//! Criterion microbenchmarks of the Bulk signature primitives (Figure 2
//! operations): the hardware-hot path of the whole design.

use bulksc_sig::{ExactSet, LineAddr, Signature, SignatureConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_signatures(c: &mut Criterion) {
    let cfg = SignatureConfig::default();
    let lines: Vec<LineAddr> = (0..64u64).map(|i| LineAddr(i * 977)).collect();
    let a = Signature::from_lines(&cfg, lines.iter().copied());
    let b = Signature::from_lines(&cfg, (0..64u64).map(|i| LineAddr(1_000_000 + i * 1009)));

    c.bench_function("sig_insert_64", |bch| {
        bch.iter(|| {
            let mut s = Signature::new(&cfg);
            for &l in &lines {
                s.insert(black_box(l));
            }
            s
        })
    });
    c.bench_function("sig_intersects", |bch| {
        bch.iter(|| black_box(&a).intersects(black_box(&b)))
    });
    c.bench_function("sig_membership", |bch| {
        bch.iter(|| black_box(&a).contains(black_box(LineAddr(12345))))
    });
    c.bench_function("sig_decode_sets_256", |bch| {
        bch.iter(|| black_box(&a).decode_sets(256))
    });
    c.bench_function("exact_intersects_64", |bch| {
        let ea: ExactSet = lines.iter().copied().collect();
        let eb: ExactSet = (0..64u64).map(|i| LineAddr(i * 31)).collect();
        bch.iter(|| black_box(&ea).intersects(black_box(&eb)))
    });
}

criterion_group!(benches, bench_signatures);
criterion_main!(benches);
