//! Criterion wrapper around the Figure 10 experiment: chunk-size scaling
//! cost of the simulator. The full figure comes from the `fig10` binary.

use bulksc::{BulkConfig, Model};
use bulksc_bench::run_app;
use bulksc_workloads::by_name;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let app = by_name("fft").expect("catalog app");
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for size in [1000u64, 4000] {
        g.bench_function(format!("fft_chunk{size}_3k"), |b| {
            b.iter(|| {
                run_app(
                    Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(size)),
                    &app,
                    3_000,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
