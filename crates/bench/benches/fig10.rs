//! Chunk-size scaling cost of the simulator. The full figure comes from
//! the `fig10` binary. Hand-rolled harness — runs offline.

use bulksc::{BulkConfig, Model};
use bulksc_bench::run_app;
use bulksc_bench::timing::bench;
use bulksc_workloads::by_name;

fn main() {
    let app = by_name("fft").expect("catalog app");
    for size in [1000u64, 4000] {
        bench(&format!("fig10/fft_chunk{size}_3k"), 10, || {
            run_app(
                Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(size)),
                &app,
                3_000,
            )
        });
    }
}
