//! Per-category interconnect traffic accounting.
//!
//! Figure 11 of the paper breaks network traffic into five categories:
//! reads and writes (`Rd/Wr`), R-signature transfers (`RdSig`), W-signature
//! transfers (`WrSig`), invalidations (`Inv`), and everything else
//! (`Other`). [`TrafficStats`] accumulates bytes per category; a single
//! message may contribute to several categories (a commit request's header
//! is `Other` while the W signature it carries is `WrSig`).

use std::fmt;

/// Figure 11's traffic categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Demand reads/writes: requests, data responses, writebacks.
    ReadWrite,
    /// R-signature bytes (commit arbitration).
    RdSig,
    /// W-signature bytes (commit arbitration and forwarding).
    WrSig,
    /// Invalidations and their acknowledgements.
    Inv,
    /// Arbitration control, nacks, displacement traffic, and other messages.
    Other,
}

impl TrafficClass {
    /// All categories, in Figure 11's legend order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::ReadWrite,
        TrafficClass::RdSig,
        TrafficClass::WrSig,
        TrafficClass::Inv,
        TrafficClass::Other,
    ];

    /// The label the paper uses for this category.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::ReadWrite => "Rd/Wr",
            TrafficClass::RdSig => "RdSig",
            TrafficClass::WrSig => "WrSig",
            TrafficClass::Inv => "Inv",
            TrafficClass::Other => "Other",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Bytes moved on the interconnect, by category.
///
/// # Example
///
/// ```
/// use bulksc_net::{TrafficClass, TrafficStats};
/// let mut t = TrafficStats::new();
/// t.add(TrafficClass::Inv, 8);
/// t.add(TrafficClass::Inv, 8);
/// assert_eq!(t.bytes(TrafficClass::Inv), 16);
/// assert_eq!(t.total(), 16);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    read_write: u64,
    rd_sig: u64,
    wr_sig: u64,
    inv: u64,
    other: u64,
    messages: u64,
}

impl TrafficStats {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account `bytes` to `class`.
    pub fn add(&mut self, class: TrafficClass, bytes: u64) {
        *self.slot(class) += bytes;
    }

    /// Count one message (independent of its byte accounting).
    pub fn count_message(&mut self) {
        self.messages += 1;
    }

    fn slot(&mut self, class: TrafficClass) -> &mut u64 {
        match class {
            TrafficClass::ReadWrite => &mut self.read_write,
            TrafficClass::RdSig => &mut self.rd_sig,
            TrafficClass::WrSig => &mut self.wr_sig,
            TrafficClass::Inv => &mut self.inv,
            TrafficClass::Other => &mut self.other,
        }
    }

    /// Bytes accounted to `class` so far.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        match class {
            TrafficClass::ReadWrite => self.read_write,
            TrafficClass::RdSig => self.rd_sig,
            TrafficClass::WrSig => self.wr_sig,
            TrafficClass::Inv => self.inv,
            TrafficClass::Other => self.other,
        }
    }

    /// Total bytes across all categories.
    pub fn total(&self) -> u64 {
        TrafficClass::ALL.iter().map(|&c| self.bytes(c)).sum()
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_per_class() {
        let mut t = TrafficStats::new();
        for (i, &c) in TrafficClass::ALL.iter().enumerate() {
            t.add(c, (i as u64 + 1) * 10);
        }
        assert_eq!(t.bytes(TrafficClass::ReadWrite), 10);
        assert_eq!(t.bytes(TrafficClass::Other), 50);
        assert_eq!(t.total(), 150);
    }

    #[test]
    fn message_count_independent_of_bytes() {
        let mut t = TrafficStats::new();
        t.count_message();
        t.count_message();
        assert_eq!(t.messages(), 2);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(TrafficClass::ReadWrite.label(), "Rd/Wr");
        assert_eq!(TrafficClass::RdSig.to_string(), "RdSig");
    }

    #[test]
    fn new_is_all_zero() {
        let t = TrafficStats::new();
        for &c in &TrafficClass::ALL {
            assert_eq!(t.bytes(c), 0, "{c}");
        }
        assert_eq!(t.total(), 0);
        assert_eq!(t.messages(), 0);
        assert_eq!(t, TrafficStats::default());
    }

    #[test]
    fn zero_byte_add_counts_nothing() {
        // A header-only message is accounted with count_message + a
        // zero-byte add; neither must disturb the byte totals.
        let mut t = TrafficStats::new();
        t.add(TrafficClass::Other, 0);
        t.count_message();
        assert_eq!(t.bytes(TrafficClass::Other), 0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.messages(), 1);
    }

    #[test]
    fn one_message_can_feed_several_classes() {
        // A commit request: control header is Other, the carried W
        // signature is WrSig — one message, two categories.
        let mut t = TrafficStats::new();
        t.count_message();
        t.add(TrafficClass::Other, 8);
        t.add(TrafficClass::WrSig, 44);
        assert_eq!(t.messages(), 1);
        assert_eq!(t.bytes(TrafficClass::Other), 8);
        assert_eq!(t.bytes(TrafficClass::WrSig), 44);
        assert_eq!(t.total(), 52);
    }

    #[test]
    fn all_covers_every_class_once() {
        // total() iterates ALL; if a variant were missing (or repeated)
        // there, per-class sums would disagree with total().
        let mut t = TrafficStats::new();
        let mut sum = 0u64;
        for (i, &c) in TrafficClass::ALL.iter().enumerate() {
            let bytes = 1u64 << (8 * i as u32 % 32);
            t.add(c, bytes);
            sum += bytes;
        }
        assert_eq!(t.total(), sum);
        let mut labels: Vec<&str> = TrafficClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5, "labels must be distinct");
    }

    #[test]
    fn accumulation_is_additive_per_class() {
        let mut t = TrafficStats::new();
        t.add(TrafficClass::RdSig, 44);
        t.add(TrafficClass::RdSig, 44);
        t.add(TrafficClass::Inv, 8);
        assert_eq!(t.bytes(TrafficClass::RdSig), 88);
        assert_eq!(t.bytes(TrafficClass::Inv), 8);
        assert_eq!(t.bytes(TrafficClass::ReadWrite), 0);
        assert_eq!(t.total(), 96);
    }
}
