//! The interconnect fabric: deterministic latency-modelled delivery.
//!
//! Messages are enqueued with [`Fabric::send`] (fixed per-hop latency) or
//! [`Fabric::send_delayed`] (extra latency for, e.g., the memory access a
//! directory performs before responding). Delivery is strictly ordered by
//! (delivery cycle, send order), so simulations are bit-reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bulksc_metrics as metrics;
use bulksc_trace::{Event, TraceHandle};

use crate::msg::{Message, NodeId};
use crate::traffic::TrafficStats;
use crate::Cycle;

/// Fabric timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FabricConfig {
    /// Cycles from send to delivery for every message (unloaded network,
    /// as in Table 2 of the paper).
    pub hop_latency: Cycle,
}

impl Default for FabricConfig {
    fn default() -> Self {
        // One hop of the on-chip network. The L2 round trip of 13 cycles in
        // Table 2 ≈ 2 hops + directory occupancy.
        FabricConfig { hop_latency: 5 }
    }
}

/// A message in flight or delivered: source, destination, payload.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// The payload.
    pub msg: Message,
}

#[derive(Debug)]
struct InFlight {
    at: Cycle,
    seq: u64,
    env: Envelope,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The interconnection network of Figure 5.
///
/// # Example
///
/// ```
/// use bulksc_net::{Envelope, Fabric, FabricConfig, Message, NodeId};
/// use bulksc_sig::LineAddr;
///
/// let mut fab = Fabric::new(FabricConfig { hop_latency: 3 });
/// fab.send(0, NodeId::Core(0), NodeId::Dir(0), Message::ReadShared { line: LineAddr(4) });
/// assert!(fab.deliver_due(2).is_empty());
/// let due = fab.deliver_due(3);
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].dst, NodeId::Dir(0));
/// ```
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    queue: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    traffic: TrafficStats,
    trace: TraceHandle,
}

impl Fabric {
    /// An empty fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        Fabric {
            cfg,
            queue: BinaryHeap::new(),
            seq: 0,
            traffic: TrafficStats::new(),
            trace: TraceHandle::off(),
        }
    }

    /// Route subsequent sends' `net_send` events to `trace`'s sinks.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The configured per-hop latency.
    pub fn hop_latency(&self) -> Cycle {
        self.cfg.hop_latency
    }

    /// Send `msg` from `src` to `dst` at time `now`; it is delivered after
    /// the hop latency. Traffic is accounted at send time.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, msg: Message) {
        self.send_delayed(now, 0, src, dst, msg);
    }

    /// Send with `extra` cycles of latency on top of the hop latency
    /// (models serialized resource occupancy at the sender, e.g. the memory
    /// access behind a directory response).
    pub fn send_delayed(
        &mut self,
        now: Cycle,
        extra: Cycle,
        src: NodeId,
        dst: NodeId,
        msg: Message,
    ) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Fabric);
        metrics::inc(metrics::Counter::FabricMessages);
        metrics::add(metrics::Counter::FabricBytes, msg.wire_bytes());
        metrics::gauge_peak(metrics::Gauge::FabricDepthPeak, self.queue.len() as u64 + 1);
        msg.account(&mut self.traffic);
        self.trace.emit(now, || Event::NetSend {
            src: src.into(),
            dst: dst.into(),
            kind: msg.kind(),
            bytes: msg.wire_bytes(),
        });
        let at = now + self.cfg.hop_latency + extra;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            at,
            seq,
            env: Envelope { src, dst, msg },
        }));
    }

    /// Pop every message whose delivery time is `<= now`, in deterministic
    /// (time, send-order) order.
    pub fn deliver_due(&mut self, now: Cycle) -> Vec<Envelope> {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Fabric);
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > now {
                break;
            }
            out.push(self.queue.pop().expect("peeked").0.env);
        }
        out
    }

    /// The delivery time of the earliest in-flight message, if any. Lets
    /// the simulator skip idle cycles.
    pub fn next_delivery(&self) -> Option<Cycle> {
        self.queue.peek().map(|Reverse(m)| m.at)
    }

    /// True if no messages are in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of messages currently in flight (the interval sampler's
    /// queue-depth metric).
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Accumulated traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficClass;
    use bulksc_sig::LineAddr;

    fn read(line: u64) -> Message {
        Message::ReadShared {
            line: LineAddr(line),
        }
    }

    #[test]
    fn delivery_respects_latency() {
        let mut f = Fabric::new(FabricConfig { hop_latency: 10 });
        f.send(5, NodeId::Core(0), NodeId::Dir(0), read(1));
        assert!(f.deliver_due(14).is_empty());
        assert_eq!(f.deliver_due(15).len(), 1);
        assert!(f.is_idle());
    }

    #[test]
    fn extra_delay_is_added() {
        let mut f = Fabric::new(FabricConfig { hop_latency: 10 });
        f.send_delayed(0, 100, NodeId::Dir(0), NodeId::Core(0), read(1));
        assert_eq!(f.next_delivery(), Some(110));
    }

    #[test]
    fn same_cycle_messages_deliver_in_send_order() {
        let mut f = Fabric::new(FabricConfig { hop_latency: 1 });
        for i in 0..5 {
            f.send(0, NodeId::Core(i), NodeId::Dir(0), read(i as u64));
        }
        let due = f.deliver_due(1);
        let srcs: Vec<NodeId> = due.iter().map(|e| e.src).collect();
        assert_eq!(
            srcs,
            (0..5).map(NodeId::Core).collect::<Vec<_>>(),
            "FIFO order among equal timestamps"
        );
    }

    #[test]
    fn earlier_messages_deliver_first() {
        let mut f = Fabric::new(FabricConfig { hop_latency: 1 });
        f.send_delayed(0, 5, NodeId::Core(0), NodeId::Dir(0), read(0));
        f.send(0, NodeId::Core(1), NodeId::Dir(0), read(1));
        let due = f.deliver_due(100);
        assert_eq!(due[0].src, NodeId::Core(1));
        assert_eq!(due[1].src, NodeId::Core(0));
    }

    #[test]
    fn traffic_accounted_on_send() {
        let mut f = Fabric::new(FabricConfig::default());
        f.send(0, NodeId::Core(0), NodeId::Dir(0), read(1));
        assert_eq!(f.traffic().bytes(TrafficClass::ReadWrite), 8);
        assert_eq!(f.traffic().messages(), 1);
    }

    #[test]
    fn sends_are_traced() {
        let ring = bulksc_trace::RingTracer::shared(8);
        let mut trace = bulksc_trace::TraceHandle::off();
        trace.attach(ring.clone());
        let mut f = Fabric::new(FabricConfig::default());
        f.set_tracer(trace);
        f.send(7, NodeId::Core(2), NodeId::Dir(0), read(1));
        assert_eq!(ring.borrow().seen(), 1);
        let dump = ring.borrow().dump();
        assert!(
            dump.contains("net_send") && dump.contains("ReadShared"),
            "{dump}"
        );
        assert_eq!(f.in_flight(), 1);
    }

    #[test]
    fn next_delivery_tracks_head() {
        let mut f = Fabric::new(FabricConfig { hop_latency: 2 });
        assert_eq!(f.next_delivery(), None);
        f.send(3, NodeId::Core(0), NodeId::Dir(0), read(1));
        assert_eq!(f.next_delivery(), Some(5));
    }
}
