//! The generic interconnection network of the BulkSC architecture
//! (Figure 5 of the paper).
//!
//! The paper deliberately targets "a distributed directory and a generic
//! network": nothing in BulkSC needs a broadcast medium. This crate provides
//! that generic network for the simulator:
//!
//! * the wire vocabulary — every message any protocol in the workspace puts
//!   on the network ([`Message`]), with a per-message [`TrafficClass`] and
//!   byte size so Figure 11's traffic breakdown (Rd/Wr, RdSig, WrSig, Inv,
//!   Other) falls out of the accounting;
//! * the fabric itself ([`Fabric`]) — deterministic latency-modelled message
//!   delivery between [`NodeId`] endpoints;
//! * traffic statistics ([`TrafficStats`]).
//!
//! The fabric is deliberately simple: an unloaded fixed per-message latency
//! (Table 2 of the paper quotes unloaded round trips) plus deterministic
//! FIFO ordering between identical timestamps. Contention modelling is out
//! of scope, as it is in the paper's latency table.

pub mod fabric;
pub mod msg;
pub mod traffic;

pub use fabric::{Envelope, Fabric, FabricConfig};
pub use msg::{ChunkTag, Message, NodeId};
pub use traffic::{TrafficClass, TrafficStats};

/// Simulation time, in processor clock cycles.
pub type Cycle = u64;
