//! The wire vocabulary: every message the simulated machine puts on the
//! interconnect.
//!
//! Three protocols share the network:
//!
//! 1. **Demand coherence** — a directory-based MESI-flavoured protocol used
//!    by the baselines (SC, RC, SC++). BulkSC uses only its read side: under
//!    BulkSC even write misses are issued as read requests, because the
//!    processor cannot be marked owner of a speculatively-written line
//!    (paper §4.3).
//! 2. **Chunk commit** — the arbiter/directory flows of Figures 7 and 8,
//!    including the RSig bandwidth optimization (§4.2.2), distributed
//!    arbitration through the G-arbiter (§4.2.3), and the
//!    statically-private Wpriv path (§5.1).
//! 3. **Maintenance** — directory-cache displacement disambiguation
//!    (§4.3.3) and pre-arbitration for forward progress (§3.3).
//!
//! Signatures travel as [`TrackedSig`] values: the Bloom half is "what is on
//! the wire" (and determines the byte size), the exact half rides along so
//! receivers can attribute aliasing costs for the paper's tables.

use bulksc_sig::{LineAddr, LineData, TrackedSig};

use crate::traffic::{TrafficClass, TrafficStats};

/// Bytes of a plain control message (requests, acks, grants).
pub const CTRL_BYTES: u64 = 8;

/// Bytes of a data-carrying message: control header plus one 32 B line.
pub const DATA_BYTES: u64 = CTRL_BYTES + bulksc_sig::LINE_BYTES;

/// An endpoint on the interconnect (Figure 5 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// A processor core together with its private L1 and BDM.
    Core(u32),
    /// A directory module (with its DirBDM).
    Dir(u32),
    /// A commit arbiter module.
    Arbiter(u32),
    /// The global arbiter coordinating multi-range commits (§4.2.3).
    GArbiter,
}

/// Identifies a chunk across the machine: the core that built it plus a
/// per-core sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkTag {
    /// The core that executed the chunk.
    pub core: u32,
    /// Monotonic per-core chunk sequence number.
    pub seq: u64,
}

impl std::fmt::Display for ChunkTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}#{}", self.core, self.seq)
    }
}

/// Every message of every protocol in the simulated machine.
#[derive(Clone, Debug)]
pub enum Message {
    // ------------------------------------------------------------------
    // Demand coherence (baselines; BulkSC uses the read side only).
    // ------------------------------------------------------------------
    /// Core → dir: read miss; requester wants a shared copy.
    ReadShared { line: LineAddr },
    /// Core → dir: write miss; requester wants an exclusive copy
    /// (baselines only).
    ReadExcl { line: LineAddr },
    /// Core → dir: upgrade a shared copy to exclusive (baselines only).
    Upgrade { line: LineAddr },
    /// Dir → core: data response; `exclusive` grants M/E rights. `data`
    /// is the value snapshot taken when the directory served the request
    /// (its linearization point for the line).
    Data {
        line: LineAddr,
        exclusive: bool,
        data: LineData,
    },
    /// Dir → core: upgrade acknowledged (no data needed).
    UpgradeAck { line: LineAddr },
    /// Dir → core: invalidate this line (baseline write, or directory-cache
    /// displacement fallback).
    Inv { line: LineAddr },
    /// Core → dir: invalidation done; `dirty` means data was written back
    /// with this ack.
    InvAck { line: LineAddr, dirty: bool },
    /// Dir → owner core: surrender the line (another core wants it);
    /// `for_excl` tells the owner to invalidate rather than downgrade.
    Fetch { line: LineAddr, for_excl: bool },
    /// Owner core → dir: line surrendered; `dirty` carries data bytes.
    /// `had_line=false` models the silent-eviction "false owner" reply of
    /// §4.3.1.
    FetchResp {
        line: LineAddr,
        dirty: bool,
        had_line: bool,
    },
    /// Core → dir: voluntary writeback of a dirty line. `keep_shared` is
    /// true for BulkSC's first-speculative-write-to-a-dirty-line writeback
    /// (§5.2), where the line stays cached in Shared state; false for
    /// evictions.
    Writeback { line: LineAddr, keep_shared: bool },
    /// Dir → core: request bounced (line is being committed, §4.3.2);
    /// retry later.
    Nack { line: LineAddr },

    // ------------------------------------------------------------------
    // Chunk commit (Figures 7 and 8).
    // ------------------------------------------------------------------
    /// Core → arbiter (or G-arbiter): permission-to-commit. With the RSig
    /// optimization the R signature is omitted until requested.
    CommitReq {
        chunk: ChunkTag,
        w: Box<TrackedSig>,
        r: Option<Box<TrackedSig>>,
    },
    /// Arbiter → core: the W list was non-empty, send the R signature.
    RSigReq { chunk: ChunkTag },
    /// Core → arbiter: the requested R signature.
    RSigResp { chunk: ChunkTag, r: Box<TrackedSig> },
    /// Arbiter/G-arbiter → core: permission granted or denied.
    CommitResp { chunk: ChunkTag, ok: bool },
    /// Arbiter → dir: forward the committing chunk's W signature.
    WSigToDir { chunk: ChunkTag, w: Box<TrackedSig> },
    /// Dir → core: W signature of a committing chunk, for bulk
    /// disambiguation and bulk invalidation. `needs_ack` is false for the
    /// statically-private coherence path (§5.1), which does not hold up a
    /// commit.
    WSigInv {
        chunk: ChunkTag,
        w: Box<TrackedSig>,
        needs_ack: bool,
    },
    /// Core → dir: bulk invalidation done ("done" message 4 of Fig. 7(a)).
    WSigInvAck { chunk: ChunkTag },
    /// Dir → arbiter: all invalidation acks collected ("done" message 5).
    DirDone { chunk: ChunkTag },
    /// Arbiter/G-arbiter → core: commit fully complete everywhere. Models
    /// the processor inspecting the arbiter (§4.1.3); carried at zero cost.
    CommitComplete { chunk: ChunkTag },
    /// Core → dir: Wpriv of a committing chunk under the statically-private
    /// scheme, sent directly to the directory to keep private data coherent
    /// (§5.1).
    PrivSigToDir { chunk: ChunkTag, w: Box<TrackedSig> },

    // ------------------------------------------------------------------
    // Distributed arbitration (§4.2.3, Figure 8(b)).
    // ------------------------------------------------------------------
    /// G-arbiter → range arbiter: check (and on success reserve) this
    /// chunk's signatures against your W list.
    ArbCheck {
        chunk: ChunkTag,
        w: Box<TrackedSig>,
        r: Option<Box<TrackedSig>>,
    },
    /// Range arbiter → G-arbiter: outcome of the check.
    ArbCheckResp { chunk: ChunkTag, ok: bool },
    /// G-arbiter → range arbiter: proceed with the reserved commit
    /// (`commit=true`, forward W to your directory) or abandon the
    /// reservation (`commit=false`).
    ArbRelease { chunk: ChunkTag, commit: bool },
    /// Range arbiter → G-arbiter: this arbiter's directories finished.
    ArbDone { chunk: ChunkTag },

    // ------------------------------------------------------------------
    // Maintenance.
    // ------------------------------------------------------------------
    /// Dir → core: a directory-cache entry for `line` was displaced; the
    /// address is delivered as a signature for bulk disambiguation with the
    /// local R and W signatures (§4.3.3).
    DisplaceSig {
        line: LineAddr,
        sig: Box<TrackedSig>,
    },
    /// Core → arbiter: request pre-arbitration — permission to execute with
    /// other commits locked out (§3.3 forward-progress guarantee).
    PreArbReq,
    /// Arbiter → core: pre-arbitration granted; run your chunk and commit.
    PreArbGrant,
}

impl Message {
    /// Account this message's bytes to the Figure 11 categories.
    ///
    /// A message may span categories: a `CommitReq` header is `Other`, its
    /// W signature bytes are `WrSig`, and its optional R signature bytes are
    /// `RdSig`.
    pub fn account(&self, stats: &mut TrafficStats) {
        use Message::*;
        stats.count_message();
        match self {
            ReadShared { .. } | ReadExcl { .. } | Upgrade { .. } | UpgradeAck { .. } => {
                stats.add(TrafficClass::ReadWrite, CTRL_BYTES)
            }
            Data { .. } => stats.add(TrafficClass::ReadWrite, DATA_BYTES),
            Fetch { .. } => stats.add(TrafficClass::ReadWrite, CTRL_BYTES),
            FetchResp { dirty, .. } => stats.add(
                TrafficClass::ReadWrite,
                if *dirty { DATA_BYTES } else { CTRL_BYTES },
            ),
            Writeback { .. } => stats.add(TrafficClass::ReadWrite, DATA_BYTES),
            Inv { .. } => stats.add(TrafficClass::Inv, CTRL_BYTES),
            InvAck { dirty, .. } => stats.add(
                TrafficClass::Inv,
                if *dirty { DATA_BYTES } else { CTRL_BYTES },
            ),
            Nack { .. } => stats.add(TrafficClass::Other, CTRL_BYTES),

            CommitReq { w, r, .. } | ArbCheck { w, r, .. } => {
                stats.add(TrafficClass::Other, CTRL_BYTES);
                stats.add(TrafficClass::WrSig, w.wire_bytes() as u64);
                if let Some(r) = r {
                    stats.add(TrafficClass::RdSig, r.wire_bytes() as u64);
                }
            }
            RSigReq { .. } => stats.add(TrafficClass::Other, CTRL_BYTES),
            RSigResp { r, .. } => {
                stats.add(TrafficClass::Other, CTRL_BYTES);
                stats.add(TrafficClass::RdSig, r.wire_bytes() as u64);
            }
            CommitResp { .. } | ArbCheckResp { .. } | ArbRelease { .. } | ArbDone { .. } => {
                stats.add(TrafficClass::Other, CTRL_BYTES)
            }
            WSigToDir { w, .. } | PrivSigToDir { w, .. } => {
                stats.add(TrafficClass::WrSig, CTRL_BYTES + w.wire_bytes() as u64)
            }
            WSigInv { w, .. } => stats.add(TrafficClass::WrSig, CTRL_BYTES + w.wire_bytes() as u64),
            WSigInvAck { .. } | DirDone { .. } => stats.add(TrafficClass::Inv, CTRL_BYTES),
            // Models the processor inspecting the arbiter; free on the wire.
            CommitComplete { .. } => {}
            DisplaceSig { sig, .. } => {
                stats.add(TrafficClass::Other, CTRL_BYTES + sig.wire_bytes() as u64)
            }
            PreArbReq | PreArbGrant => stats.add(TrafficClass::Other, CTRL_BYTES),
        }
    }

    /// Total bytes of this message on the wire.
    pub fn wire_bytes(&self) -> u64 {
        let mut t = TrafficStats::new();
        self.account(&mut t);
        t.total()
    }

    /// The message kind as a stable string (trace-event vocabulary).
    pub fn kind(&self) -> &'static str {
        use Message::*;
        match self {
            ReadShared { .. } => "ReadShared",
            ReadExcl { .. } => "ReadExcl",
            Upgrade { .. } => "Upgrade",
            Data { .. } => "Data",
            UpgradeAck { .. } => "UpgradeAck",
            Inv { .. } => "Inv",
            InvAck { .. } => "InvAck",
            Fetch { .. } => "Fetch",
            FetchResp { .. } => "FetchResp",
            Writeback { .. } => "Writeback",
            Nack { .. } => "Nack",
            CommitReq { .. } => "CommitReq",
            RSigReq { .. } => "RSigReq",
            RSigResp { .. } => "RSigResp",
            CommitResp { .. } => "CommitResp",
            WSigToDir { .. } => "WSigToDir",
            WSigInv { .. } => "WSigInv",
            WSigInvAck { .. } => "WSigInvAck",
            DirDone { .. } => "DirDone",
            CommitComplete { .. } => "CommitComplete",
            PrivSigToDir { .. } => "PrivSigToDir",
            ArbCheck { .. } => "ArbCheck",
            ArbCheckResp { .. } => "ArbCheckResp",
            ArbRelease { .. } => "ArbRelease",
            ArbDone { .. } => "ArbDone",
            DisplaceSig { .. } => "DisplaceSig",
            PreArbReq => "PreArbReq",
            PreArbGrant => "PreArbGrant",
        }
    }
}

impl From<NodeId> for bulksc_trace::Endpoint {
    fn from(id: NodeId) -> bulksc_trace::Endpoint {
        match id {
            NodeId::Core(i) => bulksc_trace::Endpoint::core(i),
            NodeId::Dir(i) => bulksc_trace::Endpoint::dir(i),
            NodeId::Arbiter(i) => bulksc_trace::Endpoint::arbiter(i),
            NodeId::GArbiter => bulksc_trace::Endpoint::garbiter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulksc_sig::{SigMode, SignatureConfig};

    fn sig(lines: &[u64]) -> Box<TrackedSig> {
        let mut s = TrackedSig::new(&SignatureConfig::default(), SigMode::Bloom);
        for &l in lines {
            s.insert(LineAddr(l));
        }
        Box::new(s)
    }

    #[test]
    fn control_and_data_sizes() {
        assert_eq!(Message::ReadShared { line: LineAddr(1) }.wire_bytes(), 8);
        assert_eq!(
            Message::Data {
                line: LineAddr(1),
                exclusive: false,
                data: [0; 4]
            }
            .wire_bytes(),
            40
        );
        assert_eq!(
            Message::InvAck {
                line: LineAddr(1),
                dirty: true
            }
            .wire_bytes(),
            40
        );
        assert_eq!(
            Message::InvAck {
                line: LineAddr(1),
                dirty: false
            }
            .wire_bytes(),
            8
        );
    }

    #[test]
    fn commit_req_splits_categories() {
        let m = Message::CommitReq {
            chunk: ChunkTag { core: 0, seq: 1 },
            w: sig(&[1, 2, 3]),
            r: Some(sig(&[4, 5, 6, 7])),
        };
        let mut t = TrafficStats::new();
        m.account(&mut t);
        assert!(t.bytes(TrafficClass::WrSig) > 0);
        assert!(t.bytes(TrafficClass::RdSig) > 0);
        assert_eq!(t.bytes(TrafficClass::Other), CTRL_BYTES);
        assert_eq!(t.bytes(TrafficClass::ReadWrite), 0);
    }

    #[test]
    fn rsig_omission_saves_rdsig_bytes() {
        let with = Message::CommitReq {
            chunk: ChunkTag { core: 0, seq: 1 },
            w: sig(&[1]),
            r: Some(sig(&(0..30).collect::<Vec<_>>())),
        };
        let without = Message::CommitReq {
            chunk: ChunkTag { core: 0, seq: 1 },
            w: sig(&[1]),
            r: None,
        };
        assert!(with.wire_bytes() > without.wire_bytes());
    }

    #[test]
    fn commit_complete_is_free() {
        let m = Message::CommitComplete {
            chunk: ChunkTag { core: 3, seq: 9 },
        };
        assert_eq!(m.wire_bytes(), 0);
    }

    #[test]
    fn wsig_messages_are_wrsig_class() {
        let m = Message::WSigInv {
            chunk: ChunkTag { core: 1, seq: 2 },
            w: sig(&[10, 11]),
            needs_ack: true,
        };
        let mut t = TrafficStats::new();
        m.account(&mut t);
        assert_eq!(t.total(), t.bytes(TrafficClass::WrSig));
    }

    #[test]
    fn chunk_tag_display() {
        assert_eq!(ChunkTag { core: 2, seq: 17 }.to_string(), "C2#17");
    }
}
