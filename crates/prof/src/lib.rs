//! Self-profiling for the simulator itself: where does *host* time go?
//!
//! The rest of the workspace observes the simulated machine; this crate
//! observes the simulator. Components wrap their hot regions in scoped
//! RAII timers keyed by a static registry of [`Phase`] IDs (the step
//! loop, core execution, signature ops, the arbiter, the directory, the
//! fabric, trace emission, the SC oracle, ...). When a run finishes, the
//! collected [`ProfReport`] attributes wall-clock host nanoseconds per
//! subsystem — total (inclusive) and self (exclusive of nested scopes) —
//! so `bulksc-perf` can report simulated-throughput (KIPS) together with
//! a per-phase breakdown of where the host cycles went.
//!
//! # Design constraints
//!
//! * **Off by default, and cheap when off.** [`scope`] first reads one
//!   `const`-initialized thread-local flag; disabled, it returns a
//!   disarmed guard without reading the clock or touching any state.
//!   Profiling never feeds back into the simulation: enabling it cannot
//!   change a single simulated cycle, event, or report byte (enforced by
//!   `tests/prof_determinism.rs` at the workspace root).
//! * **Single-threaded, like the simulator.** All state is thread-local;
//!   each test thread profiles independently. That is exactly what the
//!   host-parallel sweep engine (`bulksc_bench::pool`) needs: each worker
//!   thread brackets its own run with [`enable`]/[`disable`], no worker
//!   sees another's scopes, and the per-run [`ProfReport`]s — plain
//!   `Send` data — are combined after the join with [`ProfReport::merge`].
//! * **Nest-aware.** Scopes form a stack. A closing scope charges its
//!   elapsed time to its phase's *total*, its elapsed-minus-children time
//!   to its phase's *self*, and adds itself to its parent's children — so
//!   summing self times over all phases recovers the wall time covered by
//!   the outermost scopes without double counting. Re-entering the phase
//!   currently on top of the stack is a no-op (recursion does not double
//!   count either).
//!
//! # Example
//!
//! ```
//! use bulksc_prof::{enable, disable, scope, Phase};
//!
//! enable();
//! {
//!     let _run = scope(Phase::Run);
//!     {
//!         let _exec = scope(Phase::Execute);
//!         // ... simulate ...
//!     }
//! }
//! let report = disable();
//! assert_eq!(report.phase(Phase::Run).unwrap().count, 1);
//! // Execute's elapsed time is Run's child time, not Run's self time.
//! assert!(report.phase(Phase::Run).unwrap().total_ns
//!     >= report.phase(Phase::Execute).unwrap().total_ns);
//! ```

use std::cell::{Cell, RefCell};

use bulksc_stats::Table;

pub mod clock {
    //! The workspace's one monotonic host clock.
    //!
    //! Everything that measures host time — the profiler's scopes and the
    //! `bulksc_bench::timing` micro-benchmark harness — reads this single
    //! nanosecond counter, anchored at the first call in the process.

    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Monotonic nanoseconds since the first call in this process.
    #[inline]
    pub fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// The static registry of profiled simulator subsystems.
///
/// Fixed IDs so scope entry is an array index, not a hash lookup; the
/// names below are the stable strings `results/perf.json` carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// `System::new`: building cores, directories, arbiters.
    Setup,
    /// `System::run`: the step loop itself (self time = loop overhead,
    /// idle fast-forwarding, and finish checks).
    Run,
    /// Core work: `BulkNode`/`BaselineNode` tick and message handling.
    Execute,
    /// Chunk-granular signature operations: intersect, union, expand.
    SigOps,
    /// Arbiter and G-arbiter message handling.
    Arbiter,
    /// Directory message handling (including DirBDM work).
    Directory,
    /// Interconnect: message enqueue and due-delivery pops.
    Fabric,
    /// Event construction and sink recording in `TraceHandle::emit`.
    TraceEmit,
    /// Interval metric sampling (`System::drive_sampler`).
    Sampler,
    /// The `bulksc-check` SC conformance oracle (parse + verify).
    Oracle,
    /// `SimReport::collect` after a run.
    Collect,
}

/// Number of registered phases.
pub const PHASE_COUNT: usize = 11;

impl Phase {
    /// Every phase, in registry order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Setup,
        Phase::Run,
        Phase::Execute,
        Phase::SigOps,
        Phase::Arbiter,
        Phase::Directory,
        Phase::Fabric,
        Phase::TraceEmit,
        Phase::Sampler,
        Phase::Oracle,
        Phase::Collect,
    ];

    /// The stable name artifacts carry.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Run => "step_loop",
            Phase::Execute => "execute",
            Phase::SigOps => "sig_ops",
            Phase::Arbiter => "arbiter",
            Phase::Directory => "directory",
            Phase::Fabric => "fabric",
            Phase::TraceEmit => "trace_emit",
            Phase::Sampler => "sampler",
            Phase::Oracle => "oracle",
            Phase::Collect => "collect",
        }
    }
}

#[derive(Clone, Copy, Default)]
struct Slot {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

struct OpenScope {
    phase: u8,
    start_ns: u64,
    child_ns: u64,
}

#[derive(Default)]
struct ProfState {
    slots: [Slot; PHASE_COUNT],
    stack: Vec<OpenScope>,
    started_ns: u64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<ProfState> = RefCell::new(ProfState::default());
}

/// Start profiling on this thread, discarding any previous collection.
pub fn enable() {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        *st = ProfState::default();
        st.started_ns = clock::now_ns();
    });
    ENABLED.with(|e| e.set(true));
}

/// True if [`enable`] is active on this thread.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Stop profiling and return what was collected since [`enable`].
///
/// Scopes still open at this point are charged up to now (they will
/// *also* be charged in full when their guards drop if profiling is
/// re-enabled — don't disable mid-scope in normal use).
pub fn disable() -> ProfReport {
    ENABLED.with(|e| e.set(false));
    STATE.with(|s| {
        let st = s.borrow();
        let wall_ns = clock::now_ns().saturating_sub(st.started_ns);
        let mut phases = Vec::new();
        for (i, slot) in st.slots.iter().enumerate() {
            if slot.count > 0 {
                phases.push(PhaseStat {
                    phase: Phase::ALL[i],
                    count: slot.count,
                    total_ns: slot.total_ns,
                    self_ns: slot.self_ns,
                });
            }
        }
        ProfReport { wall_ns, phases }
    })
}

/// An armed scope charges its phase on drop; a disarmed one is free.
///
/// Bind it to a named variable (`let _prof = scope(...)`): `let _ = ...`
/// drops immediately and times nothing.
pub struct Scope {
    armed: bool,
}

impl Drop for Scope {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            close_scope();
        }
    }
}

/// Open a scoped timer for `phase`.
///
/// Disabled (the default), this reads one thread-local flag and returns;
/// no clock read, no allocation. Enabled, it pushes onto the scope stack
/// unless `phase` is already on top (re-entry is free and uncounted).
#[inline]
pub fn scope(phase: Phase) -> Scope {
    if !ENABLED.with(|e| e.get()) {
        return Scope { armed: false };
    }
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if st.stack.last().map(|o| o.phase) == Some(phase as u8) {
            return Scope { armed: false };
        }
        st.stack.push(OpenScope {
            phase: phase as u8,
            start_ns: clock::now_ns(),
            child_ns: 0,
        });
        Scope { armed: true }
    })
}

fn close_scope() {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let Some(open) = st.stack.pop() else { return };
        let elapsed = clock::now_ns().saturating_sub(open.start_ns);
        let slot = &mut st.slots[open.phase as usize];
        slot.count += 1;
        slot.total_ns += elapsed;
        slot.self_ns += elapsed.saturating_sub(open.child_ns);
        if let Some(parent) = st.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    });
}

/// Collected host time for one phase.
#[derive(Clone, Copy, Debug)]
pub struct PhaseStat {
    /// Which subsystem.
    pub phase: Phase,
    /// Completed scopes.
    pub count: u64,
    /// Inclusive nanoseconds (children counted).
    pub total_ns: u64,
    /// Exclusive nanoseconds (children subtracted).
    pub self_ns: u64,
}

/// Everything collected between [`enable`] and [`disable`].
#[derive(Clone, Debug, Default)]
pub struct ProfReport {
    /// Host nanoseconds between enable and disable.
    pub wall_ns: u64,
    /// Per-phase stats, registry order, phases with zero scopes omitted.
    pub phases: Vec<PhaseStat>,
}

impl ProfReport {
    /// The stats for one phase, if any scope of it completed.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Sum of per-phase self times: the instrumented share of the wall.
    pub fn covered_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    /// Instrumented self time as a percentage of the enable→disable wall
    /// (100 when nothing ran, so empty reports don't read as gaps).
    pub fn coverage_pct(&self) -> f64 {
        if self.wall_ns == 0 {
            return 100.0;
        }
        100.0 * self.covered_ns() as f64 / self.wall_ns as f64
    }

    /// Merge another report into this one (summing a scenario's reps).
    pub fn merge(&mut self, other: &ProfReport) {
        self.wall_ns += other.wall_ns;
        for p in &other.phases {
            match self.phases.iter_mut().find(|q| q.phase == p.phase) {
                Some(q) => {
                    q.count += p.count;
                    q.total_ns += p.total_ns;
                    q.self_ns += p.self_ns;
                }
                None => self.phases.push(*p),
            }
        }
        self.phases.sort_by_key(|p| p.phase as u8);
    }

    /// The per-phase breakdown as an aligned text table.
    pub fn table(&self) -> String {
        let mut t = Table::new(
            ["phase", "scopes", "total ms", "self ms", "self %"]
                .map(str::to_string)
                .to_vec(),
        );
        for p in &self.phases {
            t.row(vec![
                p.phase.name().to_string(),
                p.count.to_string(),
                format!("{:.3}", p.total_ns as f64 / 1e6),
                format!("{:.3}", p.self_ns as f64 / 1e6),
                format!(
                    "{:.1}",
                    if self.wall_ns == 0 {
                        0.0
                    } else {
                        100.0 * p.self_ns as f64 / self.wall_ns as f64
                    }
                ),
            ]);
        }
        t.row(vec![
            "(wall)".to_string(),
            String::new(),
            format!("{:.3}", self.wall_ns as f64 / 1e6),
            format!("{:.3}", self.covered_ns() as f64 / 1e6),
            format!("{:.1}", self.coverage_pct()),
        ]);
        t.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let t0 = clock::now_ns();
        while clock::now_ns() - t0 < ns {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_scopes_collect_nothing() {
        assert!(!is_enabled());
        {
            let _g = scope(Phase::Execute);
            spin(1_000);
        }
        enable();
        let r = disable();
        assert!(r.phases.is_empty(), "scope before enable must not count");
    }

    #[test]
    fn nested_scopes_split_self_and_children() {
        enable();
        {
            let _run = scope(Phase::Run);
            spin(200_000);
            {
                let _exec = scope(Phase::Execute);
                spin(400_000);
            }
            spin(200_000);
        }
        let r = disable();
        let run = *r.phase(Phase::Run).expect("run collected");
        let exec = *r.phase(Phase::Execute).expect("execute collected");
        assert_eq!(run.count, 1);
        assert_eq!(exec.count, 1);
        // Run's total includes Execute; Run's self excludes it.
        assert!(run.total_ns >= exec.total_ns + 300_000);
        assert!(run.self_ns >= 300_000);
        assert!(run.self_ns <= run.total_ns - exec.total_ns);
        // Self times sum to ≈ the outermost scope's total.
        let covered = r.covered_ns();
        assert!(covered <= run.total_ns);
        assert!(covered >= run.total_ns - run.total_ns / 10);
    }

    #[test]
    fn same_phase_reentry_is_not_double_counted() {
        enable();
        {
            let _outer = scope(Phase::SigOps);
            spin(100_000);
            {
                let _inner = scope(Phase::SigOps); // disarmed: same phase on top
                spin(100_000);
            }
        }
        let r = disable();
        let sig = r.phase(Phase::SigOps).expect("collected");
        assert_eq!(sig.count, 1, "re-entry must not count a second scope");
        assert_eq!(sig.total_ns, sig.self_ns, "no phantom children");
    }

    #[test]
    fn coverage_tracks_instrumented_share() {
        enable();
        {
            let _g = scope(Phase::Run);
            spin(500_000);
        }
        spin(500_000); // uninstrumented
        let r = disable();
        let pct = r.coverage_pct();
        assert!(pct > 20.0 && pct < 80.0, "roughly half covered: {pct}");
        assert!(r.table().contains("step_loop"));
        assert!(r.table().contains("(wall)"));
    }

    #[test]
    fn merge_sums_reports() {
        enable();
        {
            let _g = scope(Phase::Directory);
            spin(50_000);
        }
        let a = disable();
        enable();
        {
            let _g = scope(Phase::Directory);
            spin(50_000);
        }
        {
            let _g = scope(Phase::Fabric);
            spin(10_000);
        }
        let b = disable();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.phase(Phase::Directory).unwrap().count, 2);
        assert_eq!(m.phase(Phase::Fabric).unwrap().count, 1);
        assert_eq!(m.wall_ns, a.wall_ns + b.wall_ns);
        assert_eq!(
            m.phase(Phase::Directory).unwrap().total_ns,
            a.phase(Phase::Directory).unwrap().total_ns
                + b.phase(Phase::Directory).unwrap().total_ns
        );
    }

    #[test]
    fn phase_registry_is_consistent() {
        assert_eq!(Phase::ALL.len(), PHASE_COUNT);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "registry order matches discriminants");
            assert!(!p.name().is_empty());
        }
        // Names are unique (they key JSON artifacts).
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = clock::now_ns();
        let b = clock::now_ns();
        assert!(b >= a);
    }
}
